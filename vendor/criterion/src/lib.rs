//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface `benches/micro.rs` uses — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! best-of-N-batches wall-clock timer instead of criterion's statistical
//! machinery. Good enough to spot order-of-magnitude regressions; not a
//! replacement for real criterion runs.

use std::time::Instant;

/// Work-per-iteration annotation, echoed as a rate in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Parameterized benchmark name.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{p}"),
        }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    sample_size: usize,
    /// Best per-iteration time over the measured batches, in ns.
    best_ns: f64,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One warmup, then `sample_size` timed batches of one iteration
        // each; report the best (least-noisy floor).
        std::hint::black_box(f());
        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed().as_nanos() as f64;
            if dt < best {
                best = dt;
            }
        }
        self.best_ns = best;
    }
}

fn report(name: &str, best_ns: f64, tp: Option<Throughput>) {
    let rate = match tp {
        Some(Throughput::Bytes(b)) if best_ns > 0.0 => {
            format!(
                "  {:8.2} GiB/s",
                b as f64 / best_ns * 1e9 / (1u64 << 30) as f64
            )
        }
        Some(Throughput::Elements(e)) if best_ns > 0.0 => {
            format!("  {:8.2} Melem/s", e as f64 / best_ns * 1e9 / 1e6)
        }
        _ => String::new(),
    };
    if best_ns >= 1e6 {
        println!("bench {name:<48} {:10.3} ms{rate}", best_ns / 1e6);
    } else {
        println!("bench {name:<48} {:10.1} ns{rate}", best_ns);
    }
}

/// Group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            best_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.best_ns, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            best_ns: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.best_ns,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            best_ns: 0.0,
        };
        f(&mut b);
        report(&name.to_string(), b.best_ns, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $( $target:path ),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $( $target:path ),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $( $target ),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ( $( $group:path ),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
