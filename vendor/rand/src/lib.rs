//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic 64-bit PRNG (splitmix64 seeded, xorshift*
//! stepped) behind the `rand 0.8` API surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool, gen}` over integer and float ranges.

pub mod rngs {
    /// Deterministic PRNG standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            // splitmix64: uniform, passes practical statistical tests,
            // and every seed (including 0) gives a full-period stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> rngs::StdRng {
        rngs::StdRng { state: seed }
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    fn sample_half_open(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
    fn sample_closed(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range");
                let span = (hi as u128) - (lo as u128);
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_closed(rng: &mut rngs::StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut rngs::StdRng, lo: f64, hi: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_closed(rng: &mut rngs::StdRng, lo: f64, hi: f64) -> f64 {
        // The closed/half-open distinction is immaterial at f64 resolution.
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1000)).collect();
        let sc: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1000)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..=20);
            assert!((10..=20).contains(&v));
            let f = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "hits={hits}");
    }
}
