//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the API this workspace uses: a cheaply-clonable
//! immutable byte buffer ([`Bytes`]) backed by a reference-counted vector
//! with a view window, a growable builder ([`BytesMut`]), and the
//! [`Buf`]/[`BufMut`] cursor traits with little-endian accessors.

use std::ops::{Bound, Deref, RangeBounds};
use std::rc::Rc;

/// Cheaply clonable immutable byte buffer (a window into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Rc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Recover the backing `Vec` when this handle is the sole owner —
    /// the hook buffer pools use to recycle a packet payload once the last
    /// reference drops out of the data path. The vector is returned whole
    /// (its capacity is what a pool cares about), regardless of the view
    /// window. When other references remain, `self` is handed back.
    pub fn try_unwrap(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        match Rc::try_unwrap(data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes { data, start, end }),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Rc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Growable byte builder; `freeze` converts to [`Bytes`] without copying.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl (consumed prefix).
    read: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(n),
            read: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Read cursor over a byte container.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.read += n;
    }
}

/// Write cursor over a growable byte container.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xAABBCCDD);
        b.put_u64_le(0x1122334455667788);
        let mut r = b.freeze();
        assert_eq!(r.len(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xAABBCCDD);
        assert_eq!(r.get_u64_le(), 0x1122334455667788);
        assert!(r.is_empty());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
    }

    #[test]
    fn try_unwrap_recovers_unique_buffer() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let window = b.slice(1..3);
        drop(b);
        // Sole remaining owner: the full vec comes back, window or not.
        let v = window.try_unwrap().expect("unique");
        assert_eq!(v, vec![1, 2, 3, 4]);

        let shared = Bytes::from(vec![9u8; 8]);
        let clone = shared.clone();
        let back = shared.try_unwrap().expect_err("still shared");
        assert_eq!(back.as_ref(), clone.as_ref());
    }

    #[test]
    fn truncated_reads_panic_not_ub() {
        let mut b = Bytes::from(vec![1u8]);
        assert_eq!(b.remaining(), 1);
        b.advance(1);
        assert!(!b.has_remaining());
    }
}
