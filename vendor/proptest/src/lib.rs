//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (config + `arg in strategy` bindings), the
//! [`strategy::Strategy`] trait with `prop_map`, [`arbitrary::any`],
//! integer ranges as strategies, [`collection::vec`], and the
//! `prop_assert*` macros. Sampling is purely random (seeded per test
//! name, so runs are deterministic); there is no shrinking.

pub mod test_runner {
    /// Per-test deterministic RNG (splitmix64 over a name hash).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Failure raised by `prop_assert*` inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Run-count configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element-count range for [`vec`]; built from `n`, `a..b`, or `a..=b`.
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_incl - self.size.lo + 1;
            let n = self.size.lo + (rng.next_u64() as usize % span);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The test-definition macro: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal test that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&{ $strat }, &mut __rng);
                    )+
                    let __run = || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        Ok(())
                    };
                    if let Err(e) = __run() {
                        panic!("proptest {} case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( #[test] fn $name ( $( $arg in $strat ),+ ) $body )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{}: {:?} != {:?}", format!($($fmt)+), a, b);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_and_maps_compose(v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }
    }
}
