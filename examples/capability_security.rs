//! Capability security: a client with a forged capability is rejected by
//! the NIC handlers before any byte reaches storage (§IV threat model:
//! untrusted clients, trusted network).
//!
//! Run with: `cargo run --release -p nadfs-examples --bin capability_security`

use nadfs_core::{ClusterSpec, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol};
use nadfs_wire::Status;

fn attempt(forged: bool) {
    let spec = ClusterSpec::new(1, 1, StorageMode::Spin);
    let mut cluster = SimCluster::build_with(spec, |app| {
        app.forge_capabilities = forged;
    });
    let file = cluster
        .control
        .borrow_mut()
        .create_file(0, FilePolicy::Plain);
    cluster.submit(
        0,
        Job::Write {
            file: file.id,
            size: 32 << 10,
            protocol: WriteProtocol::Spin,
            seed: 5,
        },
    );
    cluster.start();
    assert_eq!(cluster.run_until_writes(1, 1_000), 1);
    let r = cluster.results.borrow().writes[0].clone();
    let stored = cluster.storage_mems[0]
        .borrow()
        .read(r.placement.primary.addr, 16);
    let committed = stored.iter().any(|&b| b != 0);
    println!(
        "{} capability -> status {:?}; bytes committed to storage: {}",
        if forged { "forged  " } else { "genuine " },
        r.status,
        committed
    );
    if forged {
        assert_eq!(r.status, Status::AuthFailed);
        assert!(!committed, "forged write must not reach storage");
    } else {
        assert_eq!(r.status, Status::Ok);
        assert!(committed);
    }
}

fn main() {
    println!("NIC-offloaded request authentication (SipHash-2-4-signed capabilities):\n");
    attempt(false);
    attempt(true);
    println!("\nThe forged request was NACKed by the header handler; payload");
    println!("packets were dropped on the NIC, never crossing PCIe.");
}
