//! Erasure-coded archive with failure and recovery: write RS(3,2)-coded
//! data through streaming NIC handlers, lose two storage nodes, and
//! recover the original bytes from the survivors — §VI of the paper plus
//! the offline decode path.
//!
//! Run with: `cargo run --release -p nadfs-examples --bin erasure_coded_archive`

use nadfs_core::{ClusterSpec, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol};
use nadfs_gfec::ReedSolomon;
use nadfs_wire::RsScheme;

fn main() {
    let scheme = RsScheme::new(3, 2);
    let spec = ClusterSpec::new(1, 5, StorageMode::Spin);
    let mut cluster = SimCluster::build(spec);
    let file = cluster
        .control
        .borrow_mut()
        .create_file(0, FilePolicy::ErasureCoded { scheme });

    let size = 192u32 << 10; // 3 chunks of 64 KiB
    cluster.submit(
        0,
        Job::Write {
            file: file.id,
            size,
            protocol: WriteProtocol::SpinTriec { interleave: true },
            seed: 1234,
        },
    );
    cluster.start();
    assert_eq!(cluster.run_until_writes(1, 5_000), 1);
    let r = cluster.results.borrow().writes[0].clone();
    let chunk_len = r.placement.chunk_len as usize;
    println!(
        "wrote {} KiB as RS(3,2): 3 data chunks + 2 parities in {:.1} us",
        size >> 10,
        (r.end - r.start).as_us()
    );

    // Collect all five shards from the storage nodes.
    let read_shard = |coord: &nadfs_wire::ReplicaCoord| {
        let idx = cluster.storage_index(coord.node as usize);
        cluster.storage_mems[idx]
            .borrow()
            .read(coord.addr, chunk_len)
    };
    let mut shards: Vec<Option<Vec<u8>>> = r
        .placement
        .data_chunks
        .iter()
        .chain(&r.placement.parities)
        .map(|c| Some(read_shard(c)))
        .collect();

    // Disaster: lose data chunk 1 and parity 0 (any two shards).
    println!("simulating failure of data node 1 and parity node 0 ...");
    shards[1] = None;
    shards[3] = None;

    let rs = ReedSolomon::new(3, 2).expect("params");
    rs.reconstruct(&mut shards).expect("recovery");
    println!("recovered both shards from the 3 survivors");

    // Verify the recovered data matches what the intact nodes hold.
    let original = read_shard(&r.placement.data_chunks[1]);
    assert_eq!(
        shards[1].as_ref().expect("recovered"),
        &original,
        "recovered chunk differs"
    );
    println!("recovered data chunk 1 is byte-identical to the original — archive intact");
}
