//! Client failure and NIC state cleanup (§VII): a client dies after the
//! first packet of a write; the PsPIN cleanup handler reclaims the
//! dangling descriptor after the inactivity timeout and notifies the host.
//!
//! Run with: `cargo run --release -p nadfs-examples --bin client_failure_cleanup`

use nadfs_core::{ClusterSpec, CostModel, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol};
use nadfs_simnet::Dur;

fn main() {
    let mut cost = CostModel::paper();
    cost.pspin.cleanup_timeout = Dur::from_us(200);
    let spec = ClusterSpec::new(1, 1, StorageMode::Spin).with_cost(cost);
    let mut cluster = SimCluster::build_with(spec, |app| {
        app.abandon_every = Some(1); // every write is abandoned mid-stream
    });
    let file = cluster
        .control
        .borrow_mut()
        .create_file(0, FilePolicy::Plain);
    cluster.submit(
        0,
        Job::Write {
            file: file.id,
            size: 128 << 10,
            protocol: WriteProtocol::Spin,
            seed: 0,
        },
    );
    cluster.start();
    cluster.run_ms(5);

    let tel = cluster.pspin_telemetry[0].as_ref().expect("pspin").borrow();
    let stats = cluster.storage_stats[0].borrow();
    println!("writes completed normally: {}", tel.msgs_completed);
    println!(
        "messages reclaimed by the cleanup handler: {}",
        tel.msgs_cleaned
    );
    println!(
        "host notified of interrupted client writes: {}",
        stats.cleanup_events
    );
    assert_eq!(tel.msgs_completed, 0);
    assert_eq!(tel.msgs_cleaned, 1);
    assert_eq!(stats.cleanup_events, 1);
    println!("\nno descriptor leak: the NIC can keep serving ~82K concurrent writes.");
}
