//! The metadata subsystem end-to-end: build a directory tree, create a
//! striped file, write through the simulated cluster (one RDMA write per
//! stripe extent), then rename and show the typed error a stale write
//! gets.

use nadfs_core::{ClusterSpec, Job, LayoutSpec, MetaOp, SimCluster, StorageMode, WriteProtocol};

fn main() {
    let mut cl = SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Plain));

    // Directory tree + a 4-wide striped file, driven as client jobs.
    cl.submit(
        0,
        Job::Meta {
            op: MetaOp::Mkdir {
                path: "/proj".into(),
            },
            token: 1,
        },
    );
    cl.submit(
        0,
        Job::Meta {
            op: MetaOp::Create {
                path: "/proj/data".into(),
                spec: LayoutSpec::striped(4, 16 << 10),
            },
            token: 2,
        },
    );
    cl.start();
    cl.run_until_metas(2, 1_000);

    let file = cl
        .control
        .borrow_mut()
        .lookup_path("/proj/data")
        .expect("created");
    println!(
        "created /proj/data (ino {}) striped 4 wide x 16 KiB chunks",
        file.ino
    );

    // One 64 KiB write fans out as four 16 KiB extents.
    cl.submit(
        0,
        Job::Write {
            file: file.ino,
            size: 64 << 10,
            protocol: WriteProtocol::Raw,
            seed: 42,
        },
    );
    cl.start();
    cl.run_until_writes(1, 1_000);
    {
        let results = cl.results.borrow();
        let w = &results.writes[0];
        let nodes: Vec<u32> = w.placement.stripes.iter().map(|s| s.coord.node).collect();
        println!(
            "write {} KiB -> {} stripe extents on nodes {:?} in {:.2} us (status {:?})",
            w.size >> 10,
            w.placement.stripes.len(),
            nodes,
            w.end.since(w.start).ps() as f64 / 1e6,
            w.status
        );
    }
    let placed: Vec<u64> = cl
        .storage_stats
        .iter()
        .map(|s| s.borrow().stripe_chunks_placed)
        .collect();
    println!("per-node stripe chunks placed: {placed:?}");

    // Rename the directory, then show a stale write failing typed.
    cl.control
        .borrow_mut()
        .rename("/proj", "/archive", 1)
        .expect("rename");
    let listing = cl.control.borrow_mut().readdir("/archive").expect("ls");
    println!(
        "after rename, /archive contains {:?}",
        listing.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );
    let err = cl
        .control
        .borrow_mut()
        .lookup_path("/proj/data")
        .unwrap_err();
    println!("lookup of the old path now fails typed: {err}");

    cl.control
        .borrow_mut()
        .unlink("/archive/data", 2)
        .expect("unlink");
    cl.submit(
        0,
        Job::Write {
            file: file.ino,
            size: 4096,
            protocol: WriteProtocol::Raw,
            seed: 7,
        },
    );
    cl.start();
    cl.run_until_writes(2, 1_000);
    let results = cl.results.borrow();
    println!(
        "write to the unlinked file completes as a failed job: status {:?}",
        results.writes[1].status
    );
}
