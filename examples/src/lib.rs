//! Example scenarios; see the binaries in this package.
