//! Replicated store: write the same data under four replication
//! strategies and compare latency and replica consistency — the scenario
//! behind Fig 9 of the paper.
//!
//! Run with: `cargo run --release -p nadfs-examples --bin replicated_store`

use nadfs_core::{ClusterSpec, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol};
use nadfs_wire::BcastStrategy;

fn run_one(label: &str, protocol: WriteProtocol, mode: StorageMode) {
    let k = 3u8;
    let spec = ClusterSpec::new(1, k as usize, mode);
    let mut cluster = SimCluster::build(spec);
    let file = cluster.control.borrow_mut().create_file(
        0,
        FilePolicy::Replicated {
            k,
            strategy: BcastStrategy::Ring,
        },
    );
    let size = 512u32 << 10;
    cluster.submit(
        0,
        Job::Write {
            file: file.id,
            size,
            protocol,
            seed: 99,
        },
    );
    cluster.start();
    assert_eq!(cluster.run_until_writes(1, 5_000), 1);
    let r = cluster.results.borrow().writes[0].clone();

    // Verify all replicas are byte-identical.
    let first = cluster.storage_mems[0]
        .borrow()
        .read(r.placement.replicas[0].addr, size as usize);
    for coord in &r.placement.replicas[1..] {
        let idx = cluster.storage_index(coord.node as usize);
        let other = cluster.storage_mems[idx]
            .borrow()
            .read(coord.addr, size as usize);
        assert_eq!(first, other, "replica divergence on node {}", coord.node);
    }
    println!(
        "{label:<16} k={k}  512KiB write: {:7.2} us   (replicas byte-identical)",
        (r.end - r.start).as_us()
    );
}

fn main() {
    println!("three-way replication of a 512 KiB write:\n");
    run_one("RDMA-Flat", WriteProtocol::RdmaFlat, StorageMode::Plain);
    run_one(
        "RDMA-HyperLoop",
        WriteProtocol::HyperLoop { chunk: 64 << 10 },
        StorageMode::Plain,
    );
    run_one(
        "CPU-Ring",
        WriteProtocol::CpuBcast { chunk: 64 << 10 },
        StorageMode::Plain,
    );
    run_one(
        "sPIN-Ring",
        WriteProtocol::SpinReplicated,
        StorageMode::Spin,
    );
    println!("\nsPIN forwards per packet on the NIC: no client fan-out cost,");
    println!("no host-memory round trips — the paper's §V result.");
}
