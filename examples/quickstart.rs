//! Quickstart: build a one-client / one-storage-node cluster, write a file
//! through the sPIN-offloaded path, and read the bytes back.
//!
//! Run with: `cargo run --release -p nadfs-examples --bin quickstart`

use nadfs_core::{ClusterSpec, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol};

fn main() {
    // One client, one storage node whose NIC runs PsPIN with the DFS
    // execution context (authentication offloaded to the NIC).
    let spec = ClusterSpec::new(1, 1, StorageMode::Spin);
    let mut cluster = SimCluster::build(spec);

    // Metadata service: create a plain (non-replicated) file.
    let file = cluster
        .control
        .borrow_mut()
        .create_file(0, FilePolicy::Plain);
    println!("created file id={} on storage node {}", file.id, file.home);

    // Write 256 KiB through the sPIN protocol: a single RDMA write whose
    // packets are validated and committed by NIC handlers.
    cluster.submit(
        0,
        Job::Write {
            file: file.id,
            size: 256 << 10,
            protocol: WriteProtocol::Spin,
            seed: 7,
        },
    );
    cluster.start();
    let done = cluster.run_until_writes(1, 1_000);
    assert_eq!(done, 1);

    let result = cluster.results.borrow().writes[0].clone();
    println!(
        "write greq={} completed in {:.2} us (status {:?})",
        result.greq,
        (result.end - result.start).as_us(),
        result.status
    );

    // Read the bytes straight out of the storage target and verify a few.
    let mem = &cluster.storage_mems[0];
    let stored = mem
        .borrow()
        .read(result.placement.primary.addr, result.size as usize);
    println!(
        "storage node holds {} bytes; first 8: {:?}",
        stored.len(),
        &stored[..8]
    );

    // NIC-side telemetry: the handlers that ran.
    let tel = cluster.pspin_telemetry[0].as_ref().expect("pspin").borrow();
    println!(
        "PsPIN processed {} packets across {} messages (peak descriptor memory: {} B)",
        tel.pkts_processed, tel.msgs_completed, tel.descriptor_peak_bytes
    );
}
