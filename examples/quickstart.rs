//! Quickstart: the file-handle client API. Build a cluster, create a
//! striped file, write real bytes through the sPIN-offloaded path, and
//! read them back — verified end to end by checksum.
//!
//! Run with: `cargo run --release -p nadfs-examples --example quickstart`

use nadfs_core::{ClusterSpec, FsClient, LayoutSpec, SimCluster, StorageMode};

fn main() {
    // One client, three storage nodes whose NICs run PsPIN with the DFS
    // execution context (validation offloaded to the NIC).
    let cluster = SimCluster::build(ClusterSpec::new(1, 3, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);

    // Namespace + layout: a file striped over all three nodes in 64 KiB
    // chunks.
    fs.mkdir_p("/demo").expect("mkdir");
    let file = fs
        .create("/demo/hello.dat", LayoutSpec::striped(3, 64 << 10))
        .expect("create");
    println!(
        "created {} (id {}) — write protocol {:?}, read protocol {:?}",
        file.path(),
        file.id(),
        file.write_protocol,
        file.read_protocol
    );

    // Write 256 KiB of real bytes. The driver stripes the extent over
    // the layout, fans out one NIC-validated write per stripe unit, and
    // the completion carries the payload checksum.
    let data: Vec<u8> = (0..256 << 10).map(|i| (i % 251) as u8).collect();
    let write = fs.append(&file, &data).expect("write");
    println!(
        "write greq={} completed in {:.2} us (status {:?}, checksum {:016x})",
        write.greq,
        (write.end - write.start).as_us(),
        write.status,
        write.checksum
    );

    // The write also populated the client read cache write-through, so
    // read-after-write never touches the wire.
    let local = fs.read_at(&file, 0, 1024).expect("read-after-write");
    assert!(local.from_cache, "writes fill the read cache write-through");
    println!("read-after-write served from client memory (write-through fill)");

    // Drop the cache to demonstrate the real read path: layout
    // resolution, per-stripe one-sided read fan-out with NIC capability
    // validation, client-side reassembly.
    fs.drop_read_cache();
    let read = fs.read_at(&file, 50_000, 100_000).expect("read");
    assert_eq!(read.data.as_ref(), &data[50_000..150_000]);
    println!(
        "read_at(50000, 100000) returned {} bytes in {:.2} us (checksum {:016x})",
        read.len,
        (read.end - read.start).as_us(),
        read.checksum
    );

    // Whole-file read-back equals what was written, checksum and all.
    let full = fs.read_at(&file, 0, data.len() as u32).expect("read");
    assert_eq!(full.data.as_ref(), &data[..]);
    assert_eq!(full.checksum, write.checksum);
    println!("full read-back verified: {} bytes byte-identical", full.len);

    // Repeat the interior read: the client read cache absorbs it — no
    // control-plane resolve, no per-stripe fan-out, byte-identical data.
    // These asserts gate CI (the quickstart runs there), so a hit-rate
    // regression fails deterministically.
    let cached = fs.read_at(&file, 50_000, 100_000).expect("cached read");
    assert!(cached.from_cache, "repeat read must hit the client cache");
    assert_eq!(cached.data.as_ref(), &data[50_000..150_000]);
    let stats = fs.read_cache_stats();
    assert!(stats.hits >= 1, "cache hits must be counted");
    assert!(
        cached.end.since(cached.start) < full.end.since(full.start),
        "a cache hit must be faster than the fan-out it replaced"
    );
    println!(
        "repeat read served from cache in {:.2} us — {} hits / {} misses so far, {} bytes cached",
        (cached.end - cached.start).as_us(),
        stats.hits,
        stats.misses,
        fs.cluster.read_caches[0].borrow().cached_bytes()
    );

    let attr = fs.stat(&file).expect("stat");
    println!("stat: size={} version={}", attr.size, attr.version);
    fs.close(file).expect("close");

    // NIC-side telemetry: the handlers that validated the writes.
    let tel = fs.cluster.pspin_telemetry[0]
        .as_ref()
        .expect("pspin")
        .borrow();
    println!(
        "PsPIN on storage node 0 processed {} packets across {} messages",
        tel.pkts_processed, tel.msgs_completed
    );
}
