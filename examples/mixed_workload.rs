//! Mixed workload: several clients pushing a skewed (log-uniform) write
//! size mix at one sPIN-offloaded storage node, with NIC telemetry and
//! goodput reporting — a taste of using the library beyond the paper's
//! fixed-size sweeps.
//!
//! Run with: `cargo run --release -p nadfs-examples --bin mixed_workload`

use nadfs_core::{
    ClusterSpec, FilePolicy, SimCluster, SizeDist, StorageMode, Workload, WriteProtocol,
};
use nadfs_simnet::achieved_gbit_per_sec;

fn main() {
    let n_clients = 4;
    let spec = ClusterSpec::new(n_clients, 1, StorageMode::Spin).with_window(4);
    let mut cluster = SimCluster::build(spec);
    let file = cluster
        .control
        .borrow_mut()
        .create_file(0, FilePolicy::Plain);

    let wl = Workload::new(
        file.id,
        WriteProtocol::Spin,
        SizeDist::LogUniform {
            min: 1 << 10,
            max: 1 << 20,
        },
    )
    .with_writes(12)
    .with_seed(2024);

    let total_jobs = n_clients * 12;
    for c in 0..n_clients {
        for job in wl.jobs_for_client(c) {
            cluster.submit(c, job);
        }
    }
    println!(
        "{} clients, {} writes, {:.1} MiB total (log-uniform 1KiB..1MiB)",
        n_clients,
        total_jobs,
        wl.total_bytes(n_clients) as f64 / (1 << 20) as f64
    );

    cluster.start();
    let done = cluster.run_until_writes(total_jobs, 60_000);
    assert_eq!(done, total_jobs);

    let results = cluster.results.borrow();
    let start = results.writes.iter().map(|r| r.start).min().expect("some");
    let end = results.writes.iter().map(|r| r.end).max().expect("some");
    let bytes: u64 = results.writes.iter().map(|r| r.size as u64).sum();
    let mut lat: Vec<f64> = results
        .writes
        .iter()
        .map(|r| (r.end - r.start).as_us())
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));

    println!(
        "goodput {:.0} Gbit/s; write latency p50 {:.1} us, p99 {:.1} us",
        achieved_gbit_per_sec(bytes, end - start),
        lat[lat.len() / 2],
        lat[(lat.len() * 99) / 100]
    );
    let tel = cluster.pspin_telemetry[0].as_ref().expect("pspin").borrow();
    println!(
        "NIC: {} packets through handlers, {} requests completed, peak descriptor use {} B",
        tel.pkts_processed, tel.msgs_completed, tel.descriptor_peak_bytes
    );
}
