//! Degraded reads and background repair: lose a storage node, keep
//! serving the bytes, then re-protect them.
//!
//! An RS(3,2) erasure-coded file is written through the per-packet
//! streaming TriEC path (§VI-B), a data node is then marked failed, and
//! `read_at` transparently reconstructs the missing chunk from the k
//! surviving data + parity shards using the cached decode matrices.
//! The same stripe is then read with `ReadProtocol::Offloaded`, which
//! moves the reconstruction onto the storage NIC's firmware EC engine —
//! the metrics delta proves the client decoded nothing. The failure
//! also queues the extent for background repair: draining the queue
//! rebuilds the lost shard onto a spare node, after which reads resolve
//! through the normal path even with the node still dead.
//!
//! Run with: `cargo run --release -p nadfs-examples --example degraded_read`

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, ReadProtocol, SimCluster, StorageMode,
};
use nadfs_wire::RsScheme;

fn main() {
    // k + m = 5 storage nodes for the stripe plus one spare repair
    // domain, PsPIN mode: data chunks stream to k nodes while NIC
    // handlers multiply/aggregate the m parities.
    let scheme = RsScheme::new(3, 2);
    let cluster = SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);

    fs.mkdir_p("/archive").expect("mkdir");
    let file = fs
        .create_with_policy(
            "/archive/block.dat",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    println!(
        "created {} with RS({},{}) — write protocol {:?}",
        file.path(),
        scheme.k,
        scheme.m,
        file.write_protocol
    );

    let data: Vec<u8> = (0..300_000).map(|i| (i * 31 % 253) as u8).collect();
    let write = fs.append(&file, &data).expect("write");
    println!(
        "wrote {} bytes across {} data + {} parity nodes in {:.2} us",
        data.len(),
        write.placement.data_chunks.len(),
        write.placement.parities.len(),
        (write.end - write.start).as_us()
    );

    // Healthy read: direct per-chunk fan-out.
    let healthy = fs.read_at(&file, 0, data.len() as u32).expect("read");
    assert_eq!(healthy.data.as_ref(), &data[..]);
    println!(
        "healthy read: {} bytes, {} degraded stripes, {:.2} us",
        healthy.len,
        healthy.degraded_stripes,
        (healthy.end - healthy.start).as_us()
    );

    // Fail the node holding data chunk 0.
    let failed_node = write.placement.data_chunks[0].node;
    let failed_idx = fs.cluster.storage_index(failed_node as usize);
    fs.fail_storage_node(failed_idx);
    println!("storage node {failed_node} marked FAILED");

    // The healthy read left the bytes in the client read cache, which
    // legally keeps serving them — a node failure changes nothing about
    // committed data. Drop the cache to demonstrate the degraded path.
    let absorbed = fs.read_at(&file, 0, data.len() as u32).expect("read");
    assert!(absorbed.from_cache, "failure does not invalidate the cache");
    println!("client cache still serves the file (no reconstruction needed)");
    fs.drop_read_cache();

    // Same read, uncached and now degraded: the client fetches the k
    // surviving shards, reconstructs the lost chunk through gfec's
    // cached decode matrices, and reassembles the original bytes.
    let degraded = fs
        .read_at(&file, 0, data.len() as u32)
        .expect("degraded read");
    assert_eq!(
        degraded.data.as_ref(),
        &data[..],
        "reconstruction must be exact"
    );
    assert_eq!(degraded.checksum, write.checksum);
    println!(
        "degraded read: {} bytes via {} reconstructed stripe(s), {:.2} us \
         (vs {:.2} us healthy)",
        degraded.len,
        degraded.degraded_stripes,
        (degraded.end - degraded.start).as_us(),
        (healthy.end - healthy.start).as_us()
    );

    // The same degraded stripe can instead reconstruct ON the storage
    // NIC: an offloaded gather read fetches the survivors NIC-to-NIC
    // and rebuilds the lost chunk on the firmware EC engine, streaming
    // the finished stripe back as one validated flow. The client never
    // touches parity math — the counter delta proves it.
    fs.drop_read_cache();
    let before = fs.metrics_snapshot();
    let gather_handle = file.clone().with_read_protocol(ReadProtocol::Offloaded);
    let offloaded = fs
        .read_at(&gather_handle, 0, data.len() as u32)
        .expect("offloaded degraded read");
    assert_eq!(offloaded.data.as_ref(), &data[..]);
    assert_eq!(offloaded.checksum, write.checksum);
    let delta = fs.metrics_snapshot().delta(&before);
    let nic_sum = |suffix: &str| -> u64 {
        (0..6)
            .filter_map(|i| delta.counter(&format!("nic.{i}.gather.{suffix}")))
            .sum()
    };
    assert_eq!(
        delta
            .counter("client.0.read.reconstructed_stripes")
            .unwrap_or(0),
        0,
        "offloaded reads never decode on the client"
    );
    println!(
        "offloaded degraded read: {} bytes in {:.2} us — client reconstructs 0, \
         NIC reconstructs {}, {} survivor fetch(es) NIC-to-NIC, {} KiB streamed",
        offloaded.len,
        (offloaded.end - offloaded.start).as_us(),
        nic_sum("chunks_reconstructed"),
        nic_sum("remote_fetches"),
        nic_sum("bytes_streamed") >> 10
    );

    // The failure queued the extent for re-protection (and the degraded
    // read promoted it to the front). Drain the repair queue: the k
    // surviving shards are fetched over the NIC, the lost chunk is
    // rebuilt, written to a spare node, and the extent map re-homed.
    println!("repair backlog: {} extent(s)", fs.repair_backlog());
    let report = fs.drain_repairs();
    assert!(report.converged());
    println!(
        "repair drained: {} extent(s) re-protected, {} KiB moved over the data path",
        report.repaired,
        report.bytes_moved >> 10
    );

    // The failed node is STILL down, yet reads are direct again — the
    // shard now lives on the spare.
    let repaired = fs
        .read_at(&file, 0, data.len() as u32)
        .expect("post-repair read");
    assert_eq!(repaired.data.as_ref(), &data[..]);
    assert_eq!(repaired.degraded_stripes, 0, "re-homed: no reconstruction");
    println!(
        "post-repair read (node still failed): {} bytes, {} degraded stripes, {:.2} us",
        repaired.len,
        repaired.degraded_stripes,
        (repaired.end - repaired.start).as_us()
    );

    // Recovery of the original node changes nothing for this extent; a
    // later failure of the spare would queue it again.
    fs.recover_storage_node(failed_idx);
    let recovered = fs.read_at(&file, 0, data.len() as u32).expect("read");
    assert_eq!(recovered.degraded_stripes, 0);
    println!("node recovered; extent stays on its re-protected placement");
}
