//! Observability end-to-end: run a mixed write/read/repair workload,
//! then export (a) the Chrome trace-event timeline — load it in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` — and
//! (b) one `nadfs-metrics-v1` snapshot of every component's counters.
//!
//! The example self-validates: it re-parses both JSON documents and
//! asserts the trace carries at least one event on every component
//! track class (client, control, nic, storage), so CI can run it as a
//! smoke test for the export pipeline.
//!
//! Run with: `cargo run --release -p nadfs-examples --example trace_export [out-dir]`

use std::collections::BTreeSet;

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, ReadProtocol, SimCluster, StorageMode,
};
use nadfs_simnet::telemetry::json::{self, Json};
use nadfs_wire::RsScheme;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());

    // RS(3,2) over 6 storage nodes (one spare repair domain), sPIN mode:
    // the same shape degraded_read uses, but instrumented end to end.
    let scheme = RsScheme::new(3, 2);
    let cluster = SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);

    fs.mkdir_p("/obs").expect("mkdir");
    let file = fs
        .create_with_policy(
            "/obs/data.bin",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data: Vec<u8> = (0..240_000).map(|i| (i * 37 % 251) as u8).collect();
    let write = fs.append(&file, &data).expect("write");

    // One cached and one uncached read, then a degraded read + repair so
    // every span phase (cache-hit, degraded, rebuilt, committed) shows up.
    let first = fs.read_at(&file, 0, data.len() as u32).expect("read");
    let again = fs
        .read_at(&file, 0, data.len() as u32)
        .expect("cached read");
    assert!(again.from_cache);

    // One read over the RPC baseline: the storage CPU validates and
    // streams the bytes, putting the storage nodes on their own track.
    let mut rpc_handle = fs.open("/obs/data.bin").expect("open");
    rpc_handle.read_protocol = ReadProtocol::Rpc;
    fs.drop_read_cache();
    let rpc_read = fs
        .read_at(&rpc_handle, 0, data.len() as u32)
        .expect("rpc read");
    assert_eq!(rpc_read.data.as_ref(), &data[..]);
    let failed_node = write.placement.data_chunks[0].node;
    let failed_idx = fs.cluster.storage_index(failed_node as usize);
    fs.fail_storage_node(failed_idx);
    fs.drop_read_cache();
    let degraded = fs.read_at(&file, 0, data.len() as u32).expect("degraded");
    assert!(degraded.degraded_stripes > 0);
    let report = fs.drain_repairs();
    assert!(report.converged());
    assert_eq!(fs.open_spans(), 0, "all op spans closed");
    println!(
        "ran: 1 write, 4 reads (1 cached, 1 RPC, 1 degraded over {} stripes), {} repair(s); \
         healthy read {:.2} us",
        degraded.degraded_stripes,
        report.repaired,
        (first.end - first.start).as_us()
    );

    let trace_doc = fs.export_chrome_trace();
    let snap = fs.metrics_snapshot();
    let snap_doc = format!("{}\n", snap.to_json());

    // Self-validate before writing anything out.
    let parsed = json::parse(&trace_doc).expect("chrome trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let tracks: BTreeSet<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
        .filter_map(|n| n.as_str().map(str::to_owned))
        .collect();
    for class in ["client-", "control", "nic-", "storage-"] {
        assert!(
            tracks.iter().any(|t| t.starts_with(class)),
            "no {class}* track in export; tracks: {tracks:?}"
        );
    }
    let parsed_snap = json::parse(&snap_doc).expect("snapshot JSON parses");
    assert_eq!(
        parsed_snap.get("schema").and_then(Json::as_str),
        Some(nadfs_simnet::SNAPSHOT_SCHEMA)
    );
    assert!(
        snap.hist("op.read.e2e_ns").map(|h| h.count).unwrap_or(0) >= 3,
        "read latency histogram missing samples"
    );

    let trace_path = format!("{out_dir}/trace_export.json");
    let snap_path = format!("{out_dir}/metrics_snapshot.json");
    std::fs::write(&trace_path, &trace_doc).expect("write trace");
    std::fs::write(&snap_path, &snap_doc).expect("write snapshot");
    println!(
        "exported {} events across {} tracks -> {trace_path}",
        events.len(),
        tracks.len()
    );
    println!(
        "exported {} counters, {} gauges, {} histograms -> {snap_path}",
        snap.counters.len(),
        snap.gauges.len(),
        snap.hists.len()
    );
    println!("open the trace at https://ui.perfetto.dev (or chrome://tracing)");
}
