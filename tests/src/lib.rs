//! Shared test support: the deterministic fault-injection harness.
//!
//! A [`FaultPlan`] scripts node kills (and recoveries) at well-defined
//! points of a workload — after the Nth write, after the Nth read, after
//! the Nth repair task — with any "pick a victim" decision drawn from a
//! seeded generator, so a failing interleaving reproduces from its seed
//! alone. The CI matrix runs the fault suite under several fixed seeds
//! (`NADFS_FAULT_SEED`) so scheduling-order regressions reproduce
//! deterministically.
//!
//! The harness deliberately drives the public surfaces only — `FsClient`
//! for I/O, [`RepairDriver`] for queue drains — so the injected faults
//! exercise the exact paths production callers would hit.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use nadfs_core::{
    FileHandle, FsClient, Job, RepairDriver, RepairReport, RepairResult, SimCluster, WriteResult,
    WriteSlot,
};
use nadfs_simnet::Dur;

pub mod churn;

/// The fault-suite seed: `NADFS_FAULT_SEED` when set (the CI matrix), a
/// fixed default otherwise — never wall-clock, never process entropy.
pub fn seed_from_env() -> u64 {
    std::env::var("NADFS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD00D_F00D)
}

/// Tiny deterministic generator (splitmix64) for victim selection.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    pub fn new(seed: u64) -> SplitMix {
        SplitMix {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform pick from `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

/// Where in the workload a scripted fault fires. Counters are cumulative
/// over the plan's lifetime (the 3rd write is `AfterWrites(3)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    AfterWrites(u32),
    AfterReads(u32),
    /// After the Nth completed repair task — faults *during* the drain.
    AfterRepairs(u32),
}

/// What fires at a [`FaultPoint`]. Node identities are storage-node
/// *indexes* (position in `cluster.storage_nodes`).
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Kill a specific storage node.
    FailNode(usize),
    /// Kill a seed-chosen node from the candidate set.
    FailRandomOf(Vec<usize>),
    /// Bring a specific node back.
    RecoverNode(usize),
}

/// A scripted, seeded schedule of node kills. Feed it completion events
/// (`note_write` / `note_read` / `note_repair`) and it fires the armed
/// actions at their scripted points, recording a deterministic log.
pub struct FaultPlan {
    pub seed: u64,
    rng: SplitMix,
    armed: Vec<(FaultPoint, FaultAction)>,
    writes: u32,
    reads: u32,
    repairs: u32,
    /// Human-readable record of every fault fired, in order — assert on
    /// it to prove determinism per seed.
    pub log: Vec<String>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: SplitMix::new(seed),
            armed: Vec::new(),
            writes: 0,
            reads: 0,
            repairs: 0,
            log: Vec::new(),
        }
    }

    /// Arm an action at a point (builder-style).
    pub fn on(mut self, point: FaultPoint, action: FaultAction) -> FaultPlan {
        self.armed.push((point, action));
        self
    }

    pub fn note_write(&mut self, fsc: &mut FsClient) {
        self.writes += 1;
        let p = FaultPoint::AfterWrites(self.writes);
        self.fire(fsc, p);
    }

    pub fn note_read(&mut self, fsc: &mut FsClient) {
        self.reads += 1;
        let p = FaultPoint::AfterReads(self.reads);
        self.fire(fsc, p);
    }

    pub fn note_repair(&mut self, fsc: &mut FsClient) {
        self.repairs += 1;
        let p = FaultPoint::AfterRepairs(self.repairs);
        self.fire(fsc, p);
    }

    fn fire(&mut self, fsc: &mut FsClient, point: FaultPoint) {
        // Collect first: firing mutates the rng/log and the cluster.
        let due: Vec<FaultAction> = self
            .armed
            .iter()
            .filter(|(p, _)| *p == point)
            .map(|(_, a)| a.clone())
            .collect();
        for action in due {
            match action {
                FaultAction::FailNode(idx) => {
                    fsc.fail_storage_node(idx);
                    self.log.push(format!("{point:?}: fail node {idx}"));
                }
                FaultAction::FailRandomOf(cands) => {
                    let idx = *self.rng.pick(&cands);
                    fsc.fail_storage_node(idx);
                    self.log
                        .push(format!("{point:?}: fail node {idx} (of {cands:?})"));
                }
                FaultAction::RecoverNode(idx) => {
                    fsc.recover_storage_node(idx);
                    self.log.push(format!("{point:?}: recover node {idx}"));
                }
            }
        }
    }
}

/// Drain the repair queue one task at a time, feeding each completion to
/// the fault plan so scripted kills fire *during* repair — the
/// "node dies while the pipeline is re-protecting" interleaving.
pub fn drain_repairs_with_faults(fsc: &mut FsClient, plan: &mut FaultPlan) -> RepairReport {
    let mut driver = RepairDriver::new(0);
    let mut report = RepairReport::default();
    while let Some(r) = driver.step(&mut fsc.cluster) {
        match &r.outcome {
            nadfs_core::RepairOutcome::Rebuilt { .. }
            | nadfs_core::RepairOutcome::Cloned { .. } => {
                report.repaired += 1;
                report.bytes_moved += r.bytes_moved;
            }
            nadfs_core::RepairOutcome::AlreadyHealthy => report.already_healthy += 1,
            nadfs_core::RepairOutcome::Unrepairable(_) => report.unrepairable += 1,
            nadfs_core::RepairOutcome::Aborted(_) => {
                report.aborted_attempts += 1;
                // Same gave-up accounting as RepairDriver::drain — without
                // it, `report.converged()` would be vacuously true here.
                if driver.attempts_for(r.task) >= driver.max_attempts {
                    report.gave_up += 1;
                }
            }
        }
        report.outcomes.push(r);
        plan.note_repair(fsc);
    }
    // With NADFS_DUMP_TRACE set the timeline lands on disk before the
    // caller's assertions run, so a failing interleaving leaves its
    // evidence behind.
    let _ = dump_trace_if_requested(fsc, &format!("fault-seed-{:x}", plan.seed));
    report
}

/// The "mid-write kill": submit a write, run the simulation for
/// `after_us` of simulated time (the data is in flight), kill storage
/// node `fail_idx`, then run the write to completion. The commit then
/// references an already-failed node, which must land the extent on the
/// repair queue. Drives client 0.
pub fn write_then_fail_midway(
    fsc: &mut FsClient,
    h: &FileHandle,
    offset: u64,
    data: &[u8],
    fail_idx: usize,
    after_us: u64,
) -> WriteResult {
    let slot: WriteSlot = Rc::new(RefCell::new(None));
    fsc.cluster.submit(
        0,
        Job::WriteAt {
            file: h.id(),
            offset: Some(offset),
            data: Bytes::from(data.to_vec()),
            protocol: h.write_protocol,
            slot: Some(slot.clone()),
        },
    );
    fsc.cluster.start();
    let mid = fsc.cluster.engine.now() + Dur::from_us(after_us);
    fsc.cluster.engine.run_until(mid);
    fsc.fail_storage_node(fail_idx);
    fsc.cluster
        .run_until_slot(&slot, 10_000)
        .expect("mid-write-kill write never completed")
}

/// Convenience: a repair driver whose completions feed nothing (plain
/// drain), returning the per-task results for inspection.
pub fn drain_repairs(fsc: &mut FsClient) -> Vec<RepairResult> {
    fsc.drain_repairs().outcomes
}

/// Dump the run's Chrome trace-event timeline when `NADFS_DUMP_TRACE` is
/// set, returning the path written. Re-run a failing fault seed with
/// `NADFS_DUMP_TRACE=1 NADFS_FAULT_SEED=<seed>` and load the file in
/// Perfetto to see exactly which op stalled in which phase. `tag` keeps
/// dumps from different tests/seeds apart.
pub fn dump_trace_if_requested(fsc: &FsClient, tag: &str) -> Option<std::path::PathBuf> {
    if std::env::var("NADFS_DUMP_TRACE").is_err() {
        return None;
    }
    let safe: String = tag
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = std::env::temp_dir().join(format!("nadfs-trace-{safe}.json"));
    std::fs::write(&path, fsc.export_chrome_trace()).ok()?;
    eprintln!("[nadfs] timeline dumped to {}", path.display());
    Some(path)
}

// ---------------------------------------------------------------------
// Checkpoint invariants: the global health checks every long-horizon
// scenario (and the short suites) assert at quiescent points. Each takes
// the public cluster surface only, so adopting one in a test costs a
// single call.
// ---------------------------------------------------------------------

/// Every byte of `h` is readable *non-degraded* and byte-identical to
/// the shadow `expect`. Call after drains/recoveries have settled — a
/// degraded stripe here means the repair pipeline lied about converging.
pub fn assert_bytes_converged(fsc: &mut FsClient, h: &FileHandle, expect: &[u8], ctx: &str) {
    let r = fsc
        .read_at(h, 0, expect.len() as u32)
        .unwrap_or_else(|e| panic!("[{ctx}] {}: converged read failed: {e}", h.path()));
    assert_eq!(
        r.degraded_stripes,
        0,
        "[{ctx}] {}: read still degraded after convergence",
        h.path()
    );
    assert_eq!(
        r.len as usize,
        expect.len(),
        "[{ctx}] {}: short read",
        h.path()
    );
    assert_eq!(
        &r.data[..],
        expect,
        "[{ctx}] {}: bytes diverged from the shadow model",
        h.path()
    );
}

/// Credit-layer conservation at quiesce: every NIC's posted WRs have
/// completed (credits all returned) and every parked WR was released.
/// An imbalance means a credit leaked — the link wedges at horizon.
pub fn assert_flow_conserved(cluster: &SimCluster, ctx: &str) {
    for (i, h) in cluster.flow_stats.iter().enumerate() {
        let s = *h.borrow();
        for class in nadfs_simnet::WrClass::ALL {
            let k = class.index();
            assert_eq!(
                s.posted[k],
                s.completed[k],
                "[{ctx}] nic {i}: {} WRs posted != completed (credit leak)",
                class.as_str()
            );
        }
        assert_eq!(
            s.queued, s.released,
            "[{ctx}] nic {i}: parked WRs never released (wedged queue)"
        );
    }
}

/// Hosted-capacity conservation: the per-node `chunks_hosted` /
/// `bytes_hosted` gauges sum to exactly what the extent maps currently
/// place. Violated by the pre-reconciliation recovery leak.
pub fn assert_hosted_conserved(cluster: &SimCluster, ctx: &str) {
    let control = cluster.control.borrow();
    let (mut chunks, mut bytes) = (0u64, 0u64);
    for st in &cluster.storage_stats {
        let s = st.borrow();
        chunks += s.chunks_hosted;
        bytes += s.bytes_hosted;
    }
    assert_eq!(
        chunks,
        control.live_extent_shards(),
        "[{ctx}] hosted chunk gauges diverged from the extent maps"
    );
    assert_eq!(
        bytes,
        control.live_extent_bytes(),
        "[{ctx}] hosted byte gauges diverged from the extent maps"
    );
}

/// Buffer-pool hygiene on every NIC: internal counters consistent and
/// retention bounded. (`gets` and `puts` are deliberately unrelated:
/// reassembled payloads leave a pool as `Bytes` and recycle into the
/// *receiver's* pool when the last reference drops, so buffers migrate
/// between pools. Leak detection is retention boundedness.)
pub fn assert_pool_hygiene(cluster: &SimCluster, ctx: &str) {
    for (i, pool) in cluster.buf_pools.iter().enumerate() {
        let p = pool.borrow();
        let s = p.stats();
        assert_eq!(
            s.gets,
            s.hits + s.misses,
            "[{ctx}] pool {i}: gets != hits + misses"
        );
        assert!(
            p.retained_bytes() <= nadfs_simnet::DEFAULT_MAX_RETAINED_BYTES,
            "[{ctx}] pool {i}: retention cap breached ({} bytes)",
            p.retained_bytes()
        );
    }
}

/// Span-book hygiene at quiesce: nothing in flight (an open span here is
/// a leaked op) and nothing silently evicted. Long runs keep `dropped`
/// at zero by draining the closed ring at checkpoints
/// ([`drain_spans`]).
pub fn assert_span_hygiene(cluster: &SimCluster, ctx: &str) {
    let hub = cluster.obs.borrow();
    assert_eq!(
        hub.spans.open_count(),
        0,
        "[{ctx}] op spans still open at quiesce (leaked op)"
    );
    assert_eq!(
        hub.spans.dropped(),
        0,
        "[{ctx}] completed spans were evicted — drain the ring at checkpoints"
    );
}

/// Drain the completed-span ring (keeping `spans.dropped == 0` reachable
/// at arbitrary horizon) and return the window for optional inspection.
pub fn drain_spans(cluster: &SimCluster) -> Vec<nadfs_simnet::telemetry::OpSpan> {
    cluster.obs.borrow_mut().spans.drain_closed()
}
