//! Integration test crate; see tests/ directory.
