//! Deterministic long-horizon churn: the "week in production" scenario
//! engine (ROADMAP item 5).
//!
//! One seeded run composes every subsystem the repo has grown — mixed
//! plain/striped/replicated/erasure-coded files, concurrent
//! sequential/zipfian/uniform readers over cached, RPC, and offloaded
//! read protocols, a rolling failure/recovery schedule with repair
//! storms under the windowed bandwidth cap, rename/unlink storms, and a
//! background tenant keeping QoS pressure on the storage nodes — and
//! checkpoints every K steps against global invariants:
//!
//! * every live byte readable **non-degraded** after recovery + drain
//!   and byte-identical to an in-memory shadow model;
//! * hosted-capacity gauges conserved against the extent maps (the
//!   node-recovery reconciliation invariant);
//! * flow-control credits conserved on every NIC at quiesce;
//! * buffer pools internally consistent and retention-bounded;
//! * zero open spans and zero dropped spans at every checkpoint (the
//!   closed ring is drained windowed, so the invariant holds at
//!   arbitrary horizon).
//!
//! Everything is driven off one `SplitMix` seed ([`ChurnConfig::seed`],
//! fed from `NADFS_FAULT_SEED` in CI): two runs with the same seed
//! produce the same event log and digest, so a failing horizon
//! reproduces from its seed alone.

use std::collections::HashMap;

use nadfs_core::{
    ClusterSpec, FileHandle, FilePolicy, FsClient, LayoutSpec, QosConfig, ReadPattern,
    ReadProtocol, RepairDriver, SimCluster, SizeDist, StorageMode, Workload,
};
use nadfs_simnet::Dur;
use nadfs_wire::{BcastStrategy, RsScheme};

use crate::{
    assert_bytes_converged, assert_flow_conserved, assert_hosted_conserved, assert_pool_hygiene,
    drain_spans, dump_trace_if_requested, SplitMix,
};

/// Knobs of one churn run. Defaults come from [`ChurnConfig::smoke`]
/// (CI-sized) and [`ChurnConfig::long`] (the ≥10k-op acceptance run).
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    pub seed: u64,
    /// Mixed churn steps after the initial population.
    pub ops: usize,
    /// Files created before the churn starts (population phase).
    pub initial_files: usize,
    /// Cap on live files (creates convert to appends at the cap).
    pub max_files: usize,
    /// Per-file byte cap (appends past it convert to overwrites).
    pub max_file_bytes: usize,
    /// Checkpoint the global invariants every K steps.
    pub checkpoint_every: usize,
    /// Rolling failure/recovery waves spread across the horizon.
    pub failure_waves: usize,
    /// Nodes allowed down simultaneously (2 exercises the
    /// too-many-failures paths of RS(2,1) / k=2 replication).
    pub max_concurrent_failures: usize,
    /// Windowed bandwidth cap for mid-outage repair storms.
    pub storm_bandwidth_cap: Option<u64>,
    /// Drain the closed-span ring every K ops (the windowed telemetry
    /// export; must outpace span production or the 4096-cap ring
    /// overflows and the `dropped == 0` invariant fails).
    pub span_drain_every: usize,
    /// Background-tenant ops (writes and reads each) per injection.
    pub background_ops: usize,
    pub n_storage: usize,
}

impl ChurnConfig {
    /// CI-sized horizon: minutes of simulated churn in a debug-build
    /// test, still covering ≥3 waves and several checkpoints.
    pub fn smoke(seed: u64) -> ChurnConfig {
        ChurnConfig {
            seed,
            ops: 1200,
            initial_files: 36,
            max_files: 72,
            max_file_bytes: 32 << 10,
            checkpoint_every: 300,
            failure_waves: 3,
            max_concurrent_failures: 2,
            storm_bandwidth_cap: Some(96 << 10),
            span_drain_every: 150,
            background_ops: 12,
            n_storage: 6,
        }
    }

    /// The acceptance horizon: ≥10k mixed ops over thousands of files
    /// with rolling waves. Run in release (`--ignored` test).
    pub fn long(seed: u64) -> ChurnConfig {
        ChurnConfig {
            seed,
            ops: 10_000,
            initial_files: 1500,
            max_files: 2200,
            max_file_bytes: 32 << 10,
            checkpoint_every: 2000,
            failure_waves: 4,
            max_concurrent_failures: 2,
            storm_bandwidth_cap: Some(256 << 10),
            span_drain_every: 300,
            background_ops: 24,
            n_storage: 6,
        }
    }
}

/// What one churn run did and found — deterministic per seed: two runs
/// with the same config produce identical `log` and `digest`.
#[derive(Clone, Debug, Default)]
pub struct ChurnReport {
    pub seed: u64,
    pub ops: usize,
    pub checkpoints: u64,
    pub creates: u64,
    pub appends: u64,
    pub overwrites: u64,
    pub reads: u64,
    pub renames: u64,
    pub replaces: u64,
    pub unlinks: u64,
    pub failures: u64,
    pub recoveries: u64,
    pub storms: u64,
    /// Reads that failed while a node was down (legal: plain extents
    /// have no redundancy; double failures exceed RS(2,1)).
    pub read_errors_during_outage: u64,
    pub repairs_committed: u64,
    pub repair_gave_up: u64,
    pub stale_chunks_reclaimed: u64,
    pub shards_readopted: u64,
    pub dropped_on_recovery: u64,
    pub spans_drained: u64,
    /// Order-sensitive digest folded over every event — the cheap
    /// determinism witness.
    pub digest: u64,
    /// Wave/checkpoint event log (compact; per-op events fold into the
    /// digest instead).
    pub log: Vec<String>,
}

impl ChurnReport {
    fn fold(&mut self, v: u64) {
        self.digest = self.digest.rotate_left(7) ^ v;
    }
}

struct LiveFile {
    path: String,
    handle: FileHandle,
    shadow: Vec<u8>,
    /// Forward-scan cursor for files assigned the sequential pattern.
    seq_cursor: u64,
}

enum Sched {
    Fail,
    Recover,
    Storm,
}

/// Seeded payload bytes (distinct per (seed, op)).
pub fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix::new(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    v.truncate(len);
    v
}

fn policy_for(i: usize) -> (FilePolicy, LayoutSpec) {
    match i % 4 {
        0 => (FilePolicy::Plain, LayoutSpec::SINGLE),
        1 => (FilePolicy::Plain, LayoutSpec::striped(2, 8192)),
        2 => (
            FilePolicy::Replicated {
                k: 2,
                strategy: BcastStrategy::Ring,
            },
            LayoutSpec::SINGLE,
        ),
        _ => (
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(2, 1),
            },
            LayoutSpec::SINGLE,
        ),
    }
}

/// Drive the engine until its event queue drains (all in-flight traffic,
/// foreground and background, has completed).
fn quiesce(fsc: &mut FsClient) {
    fsc.cluster.start();
    for _ in 0..20_000 {
        let t = fsc.cluster.engine.now() + Dur::from_ms(1);
        if fsc.cluster.engine.run_until(t) {
            return;
        }
    }
    panic!("churn: cluster failed to quiesce");
}

/// Run one seeded churn scenario to completion, panicking on the first
/// violated invariant. See the module docs for what is checked.
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let mut report = ChurnReport {
        seed: cfg.seed,
        ops: cfg.ops,
        ..ChurnReport::default()
    };
    let mut rng = SplitMix::new(cfg.seed);

    let qos = QosConfig {
        enabled: true,
        weights: vec![(1, 3), (2, 1)],
        ..QosConfig::default()
    };
    let spec = ClusterSpec::new(2, cfg.n_storage, StorageMode::Spin)
        .with_window(4)
        .with_qos(qos)
        // Multi-shard metadata plane: churn's rename/unlink mix crosses
        // shards, so the long horizon also soaks the 2PC/op-log paths.
        .with_meta_shards(4);
    let cluster = SimCluster::build(spec);
    cluster.set_client_tenant(0, 1);
    cluster.set_client_tenant(1, 2);
    let mut fsc = FsClient::for_client(cluster, 0);
    fsc.mkdir_p("/churn").expect("churn root");

    // Background tenant: its own replicated file hammered by an async
    // workload on client 1 — QoS pressure that overlaps every phase.
    let bg = fsc
        .create_with_policy(
            "/churn/bg",
            LayoutSpec::SINGLE,
            FilePolicy::Replicated {
                k: 2,
                strategy: BcastStrategy::Ring,
            },
        )
        .expect("bg file");
    let background = Workload::new(
        bg.id(),
        bg.write_protocol,
        SizeDist::Uniform {
            min: 2048,
            max: 8192,
        },
    )
    .with_writes(cfg.background_ops)
    .with_reads(cfg.background_ops, ReadProtocol::Rdma)
    .with_read_pattern(ReadPattern::Zipfian { exponent: 2.0 })
    .with_seed(cfg.seed ^ 0xB6);
    let inject_background = |fsc: &mut FsClient| {
        if fsc.cluster.plans[1].borrow().is_empty() {
            for job in background.jobs_for_client(1) {
                fsc.cluster.submit(1, job);
            }
        }
    };

    // Population: mixed-policy files with small seeded initial contents.
    let mut live: Vec<LiveFile> = Vec::new();
    let mut name_counter = 0usize;
    for i in 0..cfg.initial_files {
        let (policy, layout) = policy_for(i);
        let path = format!("/churn/f{name_counter}");
        name_counter += 1;
        let handle = fsc
            .create_with_policy(&path, layout, policy)
            .expect("populate create");
        let len = 1024 + (rng.next_u64() as usize % 7168);
        let data = payload(cfg.seed ^ (i as u64), len);
        fsc.append(&handle, &data).expect("populate append");
        live.push(LiveFile {
            path,
            handle,
            shadow: data,
            seq_cursor: 0,
        });
    }
    inject_background(&mut fsc);

    // Rolling failure schedule, precomputed so it is part of the seed's
    // identity rather than emergent from op outcomes.
    let mut schedule: HashMap<usize, Vec<Sched>> = HashMap::new();
    let period = (cfg.ops / cfg.failure_waves.max(1)).max(6);
    for w in 0..cfg.failure_waves {
        let base = w * period;
        let mut at = |off: usize, s: Sched| schedule.entry(base + off).or_default().push(s);
        at(period / 6, Sched::Fail);
        if cfg.max_concurrent_failures >= 2 && w % 2 == 1 {
            at(period / 3, Sched::Fail);
        }
        at(period / 2, Sched::Storm);
        at(2 * period / 3, Sched::Recover);
        at(5 * period / 6, Sched::Recover);
    }

    let mut failed_idxs: Vec<usize> = Vec::new();

    for op in 0..cfg.ops {
        // --- scripted wave events -----------------------------------
        for s in schedule.remove(&op).unwrap_or_default() {
            match s {
                Sched::Fail => {
                    if failed_idxs.len() >= cfg.max_concurrent_failures {
                        continue;
                    }
                    let healthy: Vec<usize> = (0..cfg.n_storage)
                        .filter(|i| !failed_idxs.contains(i))
                        .collect();
                    let idx = *rng.pick(&healthy);
                    fsc.fail_storage_node(idx);
                    failed_idxs.push(idx);
                    report.failures += 1;
                    report.fold(0xFA17 ^ idx as u64);
                    report.log.push(format!("op {op}: fail node {idx}"));
                }
                Sched::Recover => {
                    if failed_idxs.is_empty() {
                        continue;
                    }
                    let idx = failed_idxs.remove(0);
                    fsc.recover_storage_node(idx);
                    report.recoveries += 1;
                    report.fold(0x4EC0 ^ idx as u64);
                    report.log.push(format!("op {op}: recover node {idx}"));
                }
                Sched::Storm => {
                    // Mid-outage repair storm under the windowed
                    // bandwidth cap: re-homes what it can (creating
                    // orphans on the dead nodes), gives up on what it
                    // can't (double failures, plain extents). Stepped
                    // rather than drained in one go so the span ring can
                    // be harvested mid-storm — a big backlog otherwise
                    // overflows the 4096-entry ring all by itself.
                    let mut driver = RepairDriver::new(0);
                    driver.bandwidth_cap = cfg.storm_bandwidth_cap;
                    let (mut repaired, mut gave_up, mut steps) = (0u64, 0u64, 0u64);
                    while let Some(r) = driver.step(&mut fsc.cluster) {
                        match &r.outcome {
                            nadfs_core::RepairOutcome::Rebuilt { .. }
                            | nadfs_core::RepairOutcome::Cloned { .. } => repaired += 1,
                            nadfs_core::RepairOutcome::Aborted(_)
                                if driver.attempts_for(r.task) >= driver.max_attempts =>
                            {
                                gave_up += 1;
                            }
                            _ => {}
                        }
                        steps += 1;
                        if steps % 256 == 0 {
                            report.spans_drained += drain_spans(&fsc.cluster).len() as u64;
                        }
                    }
                    report.storms += 1;
                    report.repairs_committed += repaired;
                    report.repair_gave_up += gave_up;
                    report.spans_drained += drain_spans(&fsc.cluster).len() as u64;
                    report.fold(0x5702 ^ (repaired << 16) ^ gave_up);
                    report.log.push(format!(
                        "op {op}: storm repaired={repaired} gave_up={gave_up} throttled_ms={}",
                        driver.throttled_ms()
                    ));
                }
            }
        }

        // --- windowed telemetry export ------------------------------
        // The metrics exporter's cadence: harvest closed spans often
        // enough that the ring never evicts (satellite of ROADMAP 5).
        if op % cfg.span_drain_every == 0 {
            report.spans_drained += drain_spans(&fsc.cluster).len() as u64;
        }

        // --- one mixed churn op -------------------------------------
        let outage = !failed_idxs.is_empty();
        let roll = rng.below(100);
        if live.len() < 4 || (roll < 5 && live.len() < cfg.max_files) {
            // create
            let (policy, layout) = policy_for(name_counter);
            let path = format!("/churn/f{name_counter}");
            name_counter += 1;
            let handle = fsc
                .create_with_policy(&path, layout, policy)
                .expect("churn create");
            let data = payload(cfg.seed ^ (op as u64) << 1, 1024 + rng.below(4096));
            fsc.append(&handle, &data).expect("churn first append");
            live.push(LiveFile {
                path,
                handle,
                shadow: data,
                seq_cursor: 0,
            });
            report.creates += 1;
            report.fold(0xC4EA ^ op as u64);
        } else if roll < 35 {
            // append (or overwrite at the size cap)
            let i = rng.below(live.len());
            let len = 1 + rng.below(16 << 10);
            let data = payload(cfg.seed ^ (op as u64) << 2, len);
            let f = &mut live[i];
            if f.shadow.len() + len <= cfg.max_file_bytes {
                fsc.append(&f.handle, &data).expect("churn append");
                f.shadow.extend_from_slice(&data);
                report.appends += 1;
            } else {
                let off = rng.below(f.shadow.len()) as u64;
                fsc.write_at(&f.handle, off, &data).expect("churn pwrite");
                let end = off as usize + len;
                if end > f.shadow.len() {
                    f.shadow.resize(end, 0);
                }
                f.shadow[off as usize..end].copy_from_slice(&data);
                report.overwrites += 1;
            }
            report.fold(0xA99E ^ (i as u64) << 32 ^ len as u64);
        } else if roll < 50 {
            // overwrite in place
            let i = rng.below(live.len());
            let f = &mut live[i];
            let len = (1 + rng.below(8 << 10)).min(f.shadow.len());
            let off = rng.below(f.shadow.len() - len + 1) as u64;
            let data = payload(cfg.seed ^ (op as u64) << 3, len);
            fsc.write_at(&f.handle, off, &data)
                .expect("churn overwrite");
            f.shadow[off as usize..off as usize + len].copy_from_slice(&data);
            report.overwrites += 1;
            report.fold(0x0E44 ^ (off << 20) ^ len as u64);
        } else if roll < 80 {
            // read: zipfian file popularity, mixed protocols+patterns
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let i = ((u * u) * live.len() as f64) as usize;
            let i = i.min(live.len() - 1);
            let f = &mut live[i];
            let len = (1 + rng.below(8 << 10)).min(f.shadow.len());
            let off = if i.is_multiple_of(3) {
                // sequential stream with wrap
                if f.seq_cursor as usize + len > f.shadow.len() {
                    f.seq_cursor = 0;
                }
                let o = f.seq_cursor;
                f.seq_cursor += len as u64;
                o
            } else {
                rng.below(f.shadow.len() - len + 1) as u64
            };
            let proto = match op % 3 {
                0 => ReadProtocol::Rdma,
                1 => ReadProtocol::Rpc,
                _ => ReadProtocol::Offloaded,
            };
            let h = f.handle.clone().with_read_protocol(proto);
            match fsc.read_at(&h, off, len as u32) {
                Ok(r) => {
                    assert_eq!(r.len as usize, len, "churn read came back short");
                    assert_eq!(
                        &r.data[..],
                        &f.shadow[off as usize..off as usize + len],
                        "op {op}: read of {} diverged from the shadow model (off={off} len={len} proto={proto:?} degraded={})",
                        f.path,
                        r.degraded_stripes,
                    );
                    report.fold(0x4EAD ^ r.checksum);
                }
                Err(e) => {
                    assert!(
                        outage,
                        "op {op}: read of {} failed with all nodes healthy: {e}",
                        f.path
                    );
                    report.read_errors_during_outage += 1;
                    report.fold(0x4EAD ^ 0xE44);
                }
            }
            report.reads += 1;
        } else if roll < 88 {
            // rename: fresh name, or a POSIX replace onto a victim
            let i = rng.below(live.len());
            let now = fsc.cluster.engine.now().as_ns() as u64;
            if rng.below(10) < 3 && live.len() > 4 {
                let mut v = rng.below(live.len());
                if v == i {
                    v = (v + 1) % live.len();
                }
                let from = live[i].path.clone();
                let to = live[v].path.clone();
                fsc.cluster
                    .control
                    .borrow_mut()
                    .rename(&from, &to, now)
                    .expect("churn replace");
                live[i].path = to;
                live.swap_remove(v);
                report.replaces += 1;
                report.fold(0x4E9A ^ op as u64);
            } else {
                let from = live[i].path.clone();
                let to = format!("/churn/f{name_counter}");
                name_counter += 1;
                fsc.cluster
                    .control
                    .borrow_mut()
                    .rename(&from, &to, now)
                    .expect("churn rename");
                live[i].path = to;
                report.renames += 1;
                report.fold(0x4E4E ^ op as u64);
            }
        } else if roll < 93 && live.len() > 4 {
            // unlink
            let i = rng.below(live.len());
            let now = fsc.cluster.engine.now().as_ns() as u64;
            let path = live[i].path.clone();
            fsc.cluster
                .control
                .borrow_mut()
                .unlink(&path, now)
                .expect("churn unlink");
            live.swap_remove(i);
            report.unlinks += 1;
            report.fold(0x0D1E ^ op as u64);
        } else {
            // keep the mix full-width even when guards skip a bucket
            let i = rng.below(live.len());
            let data = payload(cfg.seed ^ (op as u64) << 4, 512);
            let f = &mut live[i];
            let off = rng.below(f.shadow.len().max(1)).min(f.shadow.len()) as u64;
            fsc.write_at(&f.handle, off, &data).expect("churn fill");
            let end = off as usize + data.len();
            if end > f.shadow.len() {
                f.shadow.resize(end, 0);
            }
            f.shadow[off as usize..end].copy_from_slice(&data);
            report.overwrites += 1;
            report.fold(0xF111 ^ op as u64);
        }

        // --- checkpoint ---------------------------------------------
        let last = op + 1 == cfg.ops;
        if (op > 0 && op % cfg.checkpoint_every == 0) || last {
            let ctx = format!("seed {:#x} op {op}", cfg.seed);
            // 1. End the outage: every failed node comes back and the
            //    control plane reconciles (GC + re-adopt + queue purge).
            while let Some(idx) = failed_idxs.pop() {
                fsc.recover_storage_node(idx);
                report.recoveries += 1;
                report
                    .log
                    .push(format!("op {op}: checkpoint recover node {idx}"));
            }
            // With no failed nodes left, reconciliation must have left
            // the repair queue empty — a nonzero backlog here is the
            // recovery leak.
            assert_eq!(
                fsc.repair_backlog(),
                0,
                "[{ctx}] repair backlog survived full recovery"
            );
            // 2. Quiesce: background + in-flight traffic completes.
            quiesce(&mut fsc);
            // 3. Every live byte readable non-degraded and identical to
            //    the shadow model.
            for f in &live {
                let shadow = f.shadow.clone();
                assert_bytes_converged(&mut fsc, &f.handle, &shadow, &ctx);
            }
            quiesce(&mut fsc);
            // 4. Global conservation invariants.
            assert_hosted_conserved(&fsc.cluster, &ctx);
            assert_flow_conserved(&fsc.cluster, &ctx);
            assert_pool_hygiene(&fsc.cluster, &ctx);
            {
                let hub = fsc.cluster.obs.borrow();
                assert_eq!(
                    hub.spans.open_count(),
                    0,
                    "[{ctx}] op spans leaked across checkpoint"
                );
                assert_eq!(
                    hub.spans.dropped(),
                    0,
                    "[{ctx}] span ring overflowed between checkpoints"
                );
            }
            // 5. Windowed span drain: the ring starts empty again, so
            //    `dropped == 0` stays reachable at any horizon.
            report.spans_drained += drain_spans(&fsc.cluster).len() as u64;
            report.checkpoints += 1;
            report.fold(0xC8EC ^ op as u64);
            report
                .log
                .push(format!("op {op}: checkpoint ok ({} files)", live.len()));
            if !last {
                inject_background(&mut fsc);
            }
        }
    }

    // Final accounting from the cluster's own ledgers.
    {
        let stats = fsc.cluster.control.borrow().repair_queue.stats;
        report.dropped_on_recovery = stats.dropped_on_recovery;
        report.shards_readopted = stats.shards_readopted;
        for st in &fsc.cluster.storage_stats {
            report.stale_chunks_reclaimed += st.borrow().stale_chunks_reclaimed;
        }
    }
    let _ = dump_trace_if_requested(&fsc, &format!("churn-seed-{:x}", cfg.seed));
    report
}
