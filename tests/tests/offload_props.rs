//! Property test for the read-side NIC offload's correctness contract:
//! under arbitrary write/read interleavings with a scripted node kill
//! (the [`FaultPlan`] harness), every offloaded gather read — normal,
//! degraded-reconstructed on the NIC, and racing asynchronous readahead
//! fills against overwrites — is byte-identical to the CPU fan-out path
//! and to a shadow model of the file. Generation-keyed fills may lose
//! the race to an overwrite, but must then miss, never serve stale.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, ReadProtocol, SimCluster, StorageMode,
};
use nadfs_tests::{
    assert_bytes_converged, assert_hosted_conserved, drain_repairs_with_faults, seed_from_env,
    FaultAction, FaultPlan, FaultPoint,
};
use nadfs_wire::{BcastStrategy, RsScheme};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Policy {
    Ec,
    Replicated,
}

#[derive(Clone, Debug)]
enum Step {
    /// `pwrite` of a deterministic payload; overlapping ranges overwrite
    /// (and race any in-flight background readahead fill).
    Write { offset: u64, len: usize },
    /// Offloaded gather read, compared byte-for-byte against the model.
    Read { offset: u64, len: u32 },
}

#[derive(Clone, Debug)]
struct Scenario {
    policy: Policy,
    steps: Vec<Step>,
    /// The scripted kill fires after this many completed writes — later
    /// offloaded reads reconstruct on the NIC (may be past the end).
    fail_after: u32,
    /// Drain the repair queue after this step index.
    drain_after: usize,
}

fn step() -> impl Strategy<Value = Step> {
    (0u8..2, 0u64..60_000, 2_000usize..30_000, 1u32..80_000).prop_map(
        |(kind, offset, wlen, rlen)| {
            if kind == 0 {
                Step::Write {
                    offset: offset % 40_000,
                    len: wlen,
                }
            } else {
                Step::Read { offset, len: rlen }
            }
        },
    )
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (0u8..2).prop_map(|k| {
            if k == 0 {
                Policy::Ec
            } else {
                Policy::Replicated
            }
        }),
        proptest::collection::vec(step(), 2..9),
        0u32..4,
        0usize..9,
    )
        .prop_map(|(policy, steps, fail_after, drain_after)| Scenario {
            policy,
            drain_after: drain_after.min(steps.len()),
            steps,
            fail_after,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn offloaded_reads_equal_cpu_fanout_equal_shadow_model(s in scenario()) {
        let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(
            1,
            5,
            StorageMode::Spin,
        )));
        fsc.mkdir_p("/p").expect("mkdir");
        let file_policy = match s.policy {
            Policy::Ec => FilePolicy::ErasureCoded { scheme: RsScheme::new(2, 1) },
            Policy::Replicated => FilePolicy::Replicated { k: 2, strategy: BcastStrategy::Ring },
        };
        let h = fsc
            .create_with_policy("/p/f", LayoutSpec::SINGLE, file_policy)
            .expect("create");
        let off = h.clone().with_read_protocol(ReadProtocol::Offloaded);

        let mut plan = FaultPlan::new(seed_from_env()).on(
            FaultPoint::AfterWrites(s.fail_after.max(1)),
            FaultAction::FailRandomOf(vec![0, 1, 2, 3, 4]),
        );

        // Shadow model of the file's logical bytes. The cache stays on
        // throughout, so offloaded reads race their own background
        // readahead fills against the interleaved overwrites.
        let mut model: Vec<u8> = Vec::new();
        for (i, st) in s.steps.iter().enumerate() {
            if i == s.drain_after {
                let report = drain_repairs_with_faults(&mut fsc, &mut plan);
                prop_assert!(report.converged(), "mid-run drain gave up: {report:?}");
            }
            match *st {
                Step::Write { offset, len } => {
                    let data: Vec<u8> = (0..len)
                        .map(|b| (b as u64 ^ offset ^ ((i as u64) << 3)) as u8)
                        .collect();
                    fsc.write_at(&h, offset, &data).expect("write");
                    let end = offset as usize + len;
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                    plan.note_write(&mut fsc);
                }
                Step::Read { offset, len } => {
                    let r = fsc.read_at(&off, offset, len).expect("offloaded read");
                    let lo = (offset as usize).min(model.len());
                    let hi = (offset as usize).saturating_add(len as usize).min(model.len());
                    prop_assert_eq!(r.len as usize, hi - lo, "short-read clamp at step {}", i);
                    prop_assert_eq!(
                        r.data.as_ref(),
                        &model[lo..hi],
                        "offloaded read ≠ shadow model at step {} (from_cache={}, degraded={})",
                        i,
                        r.from_cache,
                        r.degraded_stripes
                    );
                    plan.note_read(&mut fsc);
                }
            }
        }

        // Degraded (post-kill, pre-repair) equivalence on the wire: the
        // whole file through NIC-side gather reconstruction vs the
        // client-side CPU fan-out, both cold.
        if !model.is_empty() {
            fsc.drop_read_cache();
            let gathered = fsc.read_at(&off, 0, model.len() as u32).expect("gather");
            prop_assert_eq!(gathered.data.as_ref(), &model[..], "gather ≠ model");
            fsc.drop_read_cache();
            let mut cpu = h.clone();
            cpu.read_protocol = ReadProtocol::Rpc;
            let fanout = fsc.read_at(&cpu, 0, model.len() as u32).expect("cpu fan-out");
            prop_assert_eq!(fanout.data.as_ref(), &model[..], "cpu fan-out ≠ model");
            prop_assert_eq!(gathered.checksum, fanout.checksum);
        }

        // Converge and prove the equivalence again on the healthy layout
        // via the shared checkpoint helpers: non-degraded byte-identical
        // reads, with the hosted-capacity gauges conserved.
        let report = fsc.drain_repairs();
        prop_assert!(report.converged(), "final drain gave up: {report:?}");
        if !model.is_empty() {
            fsc.drop_read_cache();
            assert_bytes_converged(&mut fsc, &off, &model, "post-drain offload");
        }
        assert_hosted_conserved(&fsc.cluster, "post-drain offload");
    }
}
