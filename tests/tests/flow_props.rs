//! Property tests for the credit-based flow-control layer: under
//! arbitrary submit/complete/ack interleavings a closed-loop
//! sender/receiver pair never over-draws a credit budget, never drops a
//! work request, and — once the loop drains — every queued WR has
//! completed and every credit has returned to its configured budget.
//!
//! The harness mirrors the NIC's discipline exactly: acquire-or-queue on
//! submit, per-class pending FIFOs, local credit back at completion,
//! remote credit back via grants the receiver accumulates and ships
//! (piggybacked or standalone at the half-budget threshold).

use std::collections::VecDeque;

use nadfs_simnet::{CreditConfig, CreditGrant, FlowController, TenantScheduler, WrClass};
use proptest::prelude::*;

const PEER: usize = 7;

#[derive(Clone, Debug)]
enum Op {
    // Submit one WR of the given class (0..4 → Data/Imm/Read/Write).
    Submit(u8),
    // Complete the oldest in-flight WR (no-op when none is in flight).
    Deliver,
    // Receiver ships its accumulated grant; sender applies it.
    Ack,
}

fn op() -> impl Strategy<Value = Op> {
    // Weighted 3:2:1 submit/deliver/ack mix.
    (0u8..6, 0u8..4).prop_map(|(kind, class)| match kind {
        0..=2 => Op::Submit(class),
        3 | 4 => Op::Deliver,
        _ => Op::Ack,
    })
}

fn class_of(i: u8) -> WrClass {
    WrClass::ALL[i as usize % 4]
}

/// The closed loop: one sender posting WRs to one receiver, with the
/// same queue-or-post discipline the NIC uses.
struct Loop {
    cfg: CreditConfig,
    sender: FlowController,
    receiver: FlowController,
    // WRs that found no credit, FIFO per class (the NIC's pending_wrs).
    pending: [VecDeque<WrClass>; 4],
    // Posted WRs not yet completed, in post order.
    inflight: VecDeque<WrClass>,
    submitted: u64,
    completed: u64,
}

impl Loop {
    fn new(cfg: CreditConfig) -> Loop {
        Loop {
            cfg,
            sender: FlowController::new(cfg),
            receiver: FlowController::new(cfg),
            pending: Default::default(),
            inflight: VecDeque::new(),
            submitted: 0,
            completed: 0,
        }
    }

    fn submit(&mut self, class: WrClass) {
        self.submitted += 1;
        if self.sender.try_acquire(PEER, class) {
            self.inflight.push_back(class);
        } else {
            self.sender.note_queued();
            self.pending[class.index()].push_back(class);
        }
    }

    // Oldest in-flight WR reaches the wire/peer: local credit returns;
    // two-sided classes consume a recv buffer at the receiver, which
    // may force a standalone credit ack at the threshold.
    fn deliver(&mut self) {
        let Some(class) = self.inflight.pop_front() else {
            return;
        };
        self.completed += 1;
        self.sender.on_local_complete(PEER, class);
        if class.consumes_remote() && self.receiver.on_recv(PEER, class) {
            self.ack(true);
        }
        self.release_pending();
    }

    fn ack(&mut self, standalone: bool) {
        let g = self.receiver.take_grant(PEER, standalone);
        self.sender.on_grant(PEER, g);
        self.release_pending();
    }

    fn release_pending(&mut self) {
        for class in WrClass::ALL {
            while !self.pending[class.index()].is_empty() && self.sender.can_post(PEER, class) {
                assert!(
                    self.sender.try_acquire(PEER, class),
                    "can_post implies try_acquire succeeds"
                );
                self.sender.note_released();
                self.pending[class.index()].pop_front();
                self.inflight.push_back(class);
            }
        }
    }

    fn pending_len(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    // Budget conservation at every step: credit on hand plus credit
    // held by in-flight WRs equals the configured budget, per class —
    // the "credits never go negative / never mint" invariant.
    fn check_conservation(&self) {
        let mut inflight_by_class = [0u16; 4];
        for &c in &self.inflight {
            inflight_by_class[c.index()] += 1;
        }
        for class in WrClass::ALL {
            let budget = self.cfg.max_for(class);
            let local = self.sender.local_credit(PEER, class);
            let held = inflight_by_class[class.index()];
            assert!(local <= budget, "{class:?}: local credit above budget");
            assert_eq!(
                local + held,
                budget,
                "{class:?}: local credit + in-flight ≠ budget"
            );
        }
        // Remote (recv) credit: spent credit is either held by an
        // in-flight two-sided WR or pending return at the receiver.
        for (class, gi) in [(WrClass::Data, 0usize), (WrClass::Imm, 1usize)] {
            let budget = self.cfg.max_for(class);
            let remote = self.sender.remote_credit(PEER, class);
            let pend = self.receiver.pending_grant(PEER);
            let pend = if gi == 0 { pend.data } else { pend.imm };
            let held = inflight_by_class[class.index()];
            assert!(remote <= budget, "{class:?}: remote credit above budget");
            assert_eq!(
                remote + held + pend,
                budget,
                "{class:?}: remote + in-flight + pending-grant ≠ budget"
            );
        }
        // Accounting: nothing vanished between the queues and the wire.
        assert_eq!(
            self.submitted,
            self.completed + self.inflight.len() as u64 + self.pending_len() as u64,
            "a WR was dropped"
        );
    }

    // Drain to quiescence: deliver everything, ship grants, release.
    // Bounded iterations prove every queued WR eventually completes.
    fn drain(&mut self) {
        let mut rounds = 0;
        while !self.inflight.is_empty() || self.pending_len() > 0 {
            rounds += 1;
            assert!(
                rounds <= 10_000,
                "drain did not converge: {} in flight, {} pending",
                self.inflight.len(),
                self.pending_len()
            );
            while !self.inflight.is_empty() {
                self.deliver();
            }
            self.ack(true);
        }
        self.ack(true); // flush the last pending grant
    }
}

fn small_cfg() -> impl Strategy<Value = CreditConfig> {
    (1u16..5, 1u16..5, 1u16..5, 1u16..5).prop_map(|(d, i, r, w)| CreditConfig {
        max_send_data: d,
        max_send_imm: i,
        max_send_read: r,
        max_send_write: w,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Under arbitrary interleavings: budgets conserved at every step,
    // no WR dropped, and the final drain completes every submission
    // with all credits restored to their configured budgets.
    #[test]
    fn credit_loop_conserves_budgets_and_drains(
        cfg in small_cfg(),
        ops in proptest::collection::vec(op(), 1..200),
    ) {
        let mut l = Loop::new(cfg);
        for o in &ops {
            match *o {
                Op::Submit(c) => l.submit(class_of(c)),
                Op::Deliver => l.deliver(),
                Op::Ack => l.ack(false),
            }
            l.check_conservation();
        }
        l.drain();
        l.check_conservation();
        prop_assert_eq!(l.completed, l.submitted, "every WR completes");
        for class in WrClass::ALL {
            prop_assert_eq!(l.sender.local_credit(PEER, class), cfg.max_for(class));
            if class.consumes_remote() {
                prop_assert_eq!(
                    l.sender.remote_credit(PEER, class),
                    cfg.max_for(class)
                );
            }
        }
        // Counter coherence: the stats agree with the model.
        let s = *l.sender.stats_handle().borrow();
        prop_assert_eq!(s.posted.iter().sum::<u64>(), l.submitted);
        prop_assert_eq!(s.completed.iter().sum::<u64>(), l.submitted);
        prop_assert_eq!(s.queued, s.released, "every queued WR was released");
    }

    // The DRR scheduler never loses an item, stays FIFO within each
    // tenant, and drains completely regardless of push order and costs.
    #[test]
    fn drr_loses_nothing_and_keeps_tenant_fifo(
        items in proptest::collection::vec((0u16..5, 1u64..200_000), 1..300),
        quantum in 1u64..100_000,
        weights in proptest::collection::vec(1u32..8, 5),
    ) {
        let mut s: TenantScheduler<usize> = TenantScheduler::new(quantum, 1);
        for (t, &w) in weights.iter().enumerate() {
            s.set_weight(t as u16, w);
        }
        for (seq, &(t, cost)) in items.iter().enumerate() {
            s.push(t, cost, seq);
        }
        prop_assert_eq!(s.len(), items.len());
        let mut last_seq = [None::<usize>; 5];
        let mut popped = 0;
        while let Some((t, seq)) = s.pop() {
            popped += 1;
            prop_assert_eq!(items[seq].0, t, "item came back under its tenant");
            if let Some(prev) = last_seq[t as usize] {
                prop_assert!(prev < seq, "FIFO order broken within tenant {}", t);
            }
            last_seq[t as usize] = Some(seq);
        }
        prop_assert_eq!(popped, items.len(), "an item was dropped");
        prop_assert!(s.is_empty());
        for t in 0u16..5 {
            let l = s.ledger(t);
            prop_assert_eq!(l.enqueued, l.dispatched, "tenant {} starved", t);
        }
    }

    // Flooded DRR service converges to the weight ratio: with two
    // backlogged tenants pushing unit-cost items, the service counts in
    // any long-enough prefix track the configured weights.
    #[test]
    fn drr_service_tracks_weight_ratio(w1 in 1u32..8, w2 in 1u32..8) {
        let mut s: TenantScheduler<u32> = TenantScheduler::new(1024, 1);
        s.set_weight(1, w1);
        s.set_weight(2, w2);
        let rounds = 200 * (w1 + w2) as usize;
        for i in 0..rounds {
            s.push(1, 1024, i as u32);
            s.push(2, 1024, i as u32);
        }
        let take = 50 * (w1 + w2) as usize;
        let mut got = [0f64; 2];
        for _ in 0..take {
            let (t, _) = s.pop().expect("backlogged");
            got[t as usize - 1] += 1.0;
        }
        let expect1 = take as f64 * w1 as f64 / (w1 + w2) as f64;
        let err = (got[0] - expect1).abs() / expect1;
        prop_assert!(
            err < 0.25,
            "weighted share off by {:.0}%: got {:?}, expected {:.0}/{:.0}",
            err * 100.0,
            got,
            expect1,
            take as f64 - expect1
        );
    }

    // Grants saturate: replaying a grant (a duplicated ack) cannot mint
    // recv credit past the budget, and spurious completions cannot mint
    // send credit.
    #[test]
    fn replayed_grants_and_completions_cannot_mint_credit(
        cfg in small_cfg(),
        spends in 0u16..8,
    ) {
        let mut f = FlowController::new(cfg);
        let n = spends.min(cfg.max_send_data);
        for _ in 0..n {
            prop_assert!(f.try_acquire(PEER, WrClass::Data));
        }
        for _ in 0..3 {
            f.on_grant(PEER, CreditGrant { data: u16::MAX, imm: u16::MAX });
            f.on_local_complete(PEER, WrClass::Imm);
        }
        prop_assert_eq!(f.remote_credit(PEER, WrClass::Data), cfg.max_send_data);
        prop_assert_eq!(f.local_credit(PEER, WrClass::Imm), cfg.max_send_imm);
    }
}
