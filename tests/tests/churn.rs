//! Long-horizon churn runs (ROADMAP item 5): composed cross-feature
//! scenarios checkpointed against the global invariants. See
//! `nadfs_tests::churn` for the scenario engine.

use nadfs_tests::churn::{run_churn, ChurnConfig};
use nadfs_tests::seed_from_env;

/// CI-sized horizon: ~1.2k mixed ops, 3 rolling failure/recovery waves,
/// mid-outage repair storms, checkpoints every 300 steps. Seeded from
/// `NADFS_FAULT_SEED` so the CI matrix covers several histories.
#[test]
fn churn_smoke_horizon() {
    let cfg = ChurnConfig::smoke(seed_from_env());
    let report = run_churn(&cfg);
    // The horizon actually exercised what it claims to: rolling waves,
    // storms, a full op mix, and recovery reconciliation work.
    assert!(report.failures >= 3, "wanted ≥3 failure waves: {report:?}");
    assert!(report.recoveries >= report.failures);
    assert!(report.storms >= 3);
    assert!(report.checkpoints >= 3);
    assert!(report.reads > 100 && report.appends > 100 && report.overwrites > 50);
    assert!(report.renames + report.replaces > 0 && report.unlinks > 0);
    assert!(
        report.spans_drained > 0,
        "checkpoints should drain closed spans"
    );
    assert!(
        report.dropped_on_recovery + report.shards_readopted > 0,
        "recovery reconciliation never ran: {report:?}"
    );
}

/// Two runs with the same seed must produce the identical event log and
/// digest — the property that makes a failing horizon reproducible from
/// its seed alone.
#[test]
fn churn_is_deterministic_per_seed() {
    let mut cfg = ChurnConfig::smoke(0xD5_0001);
    cfg.ops = 400;
    cfg.initial_files = 16;
    cfg.max_files = 32;
    cfg.checkpoint_every = 130;
    let a = run_churn(&cfg);
    let b = run_churn(&cfg);
    assert_eq!(a.digest, b.digest, "digest diverged between identical runs");
    assert_eq!(a.log, b.log, "event log diverged between identical runs");
    assert_eq!(a.reads, b.reads);
    assert_eq!(a.read_errors_during_outage, b.read_errors_during_outage);
}

/// The acceptance horizon: ≥10k mixed ops over ~1.5k files with 4
/// rolling waves. Heavy — run in release via
/// `cargo test -p nadfs-tests --release --test churn -- --ignored`.
#[test]
#[ignore = "long horizon; run in release (see CI churn-long job)"]
fn churn_long_horizon() {
    let cfg = ChurnConfig::long(seed_from_env());
    let report = run_churn(&cfg);
    assert!(report.failures >= 4, "wanted ≥4 failure waves: {report:?}");
    assert!(report.recoveries >= report.failures);
    assert!(report.checkpoints >= 4);
    assert!(
        report.dropped_on_recovery + report.shards_readopted > 0,
        "recovery reconciliation never ran: {report:?}"
    );
}
