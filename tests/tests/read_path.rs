//! The read data path, end to end: `read_at` returns byte-identical data
//! for files written via every write protocol; striped reads fan out and
//! reassemble across nodes; degraded reads reconstruct through surviving
//! shards when a storage node is failed; expired read capabilities are
//! rejected on the NIC and on the CPU path.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, FsError, LayoutSpec, ReadProtocol, SimCluster, StorageMode,
    WriteProtocol,
};
use nadfs_wire::{payload_checksum, BcastStrategy, RsScheme, Status};

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut v = Vec::with_capacity(len);
    while v.len() < len {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        v.extend_from_slice(&z.to_le_bytes());
    }
    v.truncate(len);
    v
}

fn client(n_clients: usize, n_storage: usize, mode: StorageMode) -> FsClient {
    FsClient::new(SimCluster::build(ClusterSpec::new(
        n_clients, n_storage, mode,
    )))
}

/// `read_at` returns byte-identical data for files written via every
/// write protocol (the PR's acceptance bar), and the completion checksums
/// agree end to end.
#[test]
fn read_back_matches_for_every_write_protocol() {
    let cases: Vec<(StorageMode, FilePolicy, WriteProtocol, usize)> = vec![
        (StorageMode::Plain, FilePolicy::Plain, WriteProtocol::Raw, 1),
        (StorageMode::Spin, FilePolicy::Plain, WriteProtocol::Spin, 1),
        (StorageMode::Plain, FilePolicy::Plain, WriteProtocol::Rpc, 1),
        (
            StorageMode::Plain,
            FilePolicy::Plain,
            WriteProtocol::RpcRdma,
            1,
        ),
        (
            StorageMode::Plain,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
            WriteProtocol::RdmaFlat,
            3,
        ),
        (
            StorageMode::Plain,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
            WriteProtocol::HyperLoop { chunk: 32 << 10 },
            3,
        ),
        (
            StorageMode::Plain,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Pbt,
            },
            WriteProtocol::CpuBcast { chunk: 32 << 10 },
            3,
        ),
        (
            StorageMode::Spin,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
            WriteProtocol::SpinReplicated,
            3,
        ),
        (
            StorageMode::Spin,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
            WriteProtocol::SpinTriec { interleave: true },
            5,
        ),
        (
            StorageMode::FirmwareEc,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
            WriteProtocol::InecTriec,
            5,
        ),
    ];
    for (mode, policy, protocol, n_storage) in cases {
        let mut fsc = client(1, n_storage, mode);
        fsc.mkdir_p("/data").expect("mkdir");
        let mut h = fsc
            .create_with_policy("/data/f", LayoutSpec::SINGLE, policy)
            .expect("create");
        h.write_protocol = protocol;
        let data = payload(0xA11CE ^ n_storage as u64, 200_000);
        let w = fsc.append(&h, &data).expect("write");
        assert_eq!(w.status, Status::Ok, "{protocol:?}");
        assert_eq!(w.checksum, payload_checksum(&data));
        for read_protocol in [ReadProtocol::Rdma, ReadProtocol::Rpc] {
            h.read_protocol = read_protocol;
            let r = fsc.read_at(&h, 0, data.len() as u32).expect("read");
            assert_eq!(r.len as usize, data.len(), "{protocol:?}/{read_protocol:?}");
            assert_eq!(
                r.data.as_ref(),
                &data[..],
                "{protocol:?}/{read_protocol:?} corrupted read-back"
            );
            assert_eq!(r.checksum, w.checksum, "{protocol:?}/{read_protocol:?}");
            assert_eq!(r.degraded_stripes, 0);
        }
        fsc.close(h).expect("close");
    }
}

/// Striped files fan the read out across nodes and reassemble in file
/// order, including ragged, cross-stripe, and offset subranges.
#[test]
fn striped_reads_reassemble_across_nodes() {
    let mut fsc = client(1, 4, StorageMode::Spin);
    fsc.mkdir_p("/data").expect("mkdir");
    let h = fsc
        .create("/data/striped", LayoutSpec::striped(3, 8192))
        .expect("create");
    let data = payload(7, 100_000);
    fsc.append(&h, &data).expect("write");
    // Whole-file, cross-stripe interior, ragged tail, and head subranges.
    for (off, len) in [
        (0u64, 100_000u32),
        (5_000, 20_000),
        (8_192 - 1, 8_192 + 2),
        (90_000, 10_000),
        (0, 1),
    ] {
        let r = fsc.read_at(&h, off, len).expect("read");
        assert_eq!(r.len, len, "(off={off}, len={len})");
        assert_eq!(
            r.data.as_ref(),
            &data[off as usize..off as usize + len as usize],
            "(off={off}, len={len})"
        );
    }
    // Reads past EOF come back short, like pread.
    let tail = fsc.read_at(&h, 99_000, 50_000).expect("read");
    assert_eq!(tail.len, 1_000);
    assert_eq!(tail.data.as_ref(), &data[99_000..]);
}

/// Multiple appends then interior overwrite: reads observe the latest
/// bytes at every offset.
#[test]
fn overwrites_shadow_earlier_extents() {
    let mut fsc = client(1, 2, StorageMode::Spin);
    fsc.mkdir_p("/d").expect("mkdir");
    let h = fsc
        .create("/d/f", LayoutSpec::striped(2, 4096))
        .expect("create");
    let a = payload(1, 30_000);
    fsc.append(&h, &a).expect("append");
    let b = payload(2, 10_000);
    fsc.write_at(&h, 5_000, &b).expect("overwrite");
    let mut expect = a.clone();
    expect[5_000..15_000].copy_from_slice(&b);
    let r = fsc.read_at(&h, 0, 30_000).expect("read");
    assert_eq!(r.data.as_ref(), &expect[..]);
    // Size unchanged by the interior overwrite.
    let attr = fsc.stat(&h).expect("stat");
    assert_eq!(attr.size, 30_000);
}

/// Degraded read: with one failed storage node, an erasure-coded file's
/// bytes reconstruct through the surviving data + parity shards.
#[test]
fn degraded_read_reconstructs_erasure_coded_files() {
    for (mode, protocol) in [
        (
            StorageMode::Spin,
            WriteProtocol::SpinTriec { interleave: true },
        ),
        (StorageMode::FirmwareEc, WriteProtocol::InecTriec),
    ] {
        let scheme = RsScheme::new(3, 2);
        let mut fsc = client(1, 5, mode);
        fsc.mkdir_p("/ec").expect("mkdir");
        let mut h = fsc
            .create_with_policy(
                "/ec/f",
                LayoutSpec::SINGLE,
                FilePolicy::ErasureCoded { scheme },
            )
            .expect("create");
        h.write_protocol = protocol;
        let data = payload(55, 150_000);
        let w = fsc.append(&h, &data).expect("write");
        // Fail the node holding the first data chunk. The write-through
        // fill would mask the degraded path — drop it first.
        let failed_node = w.placement.data_chunks[0].node;
        let failed_idx = fsc.cluster.storage_index(failed_node as usize);
        fsc.fail_storage_node(failed_idx);
        fsc.drop_read_cache();
        let r = fsc
            .read_at(&h, 0, data.len() as u32)
            .expect("degraded read");
        assert_eq!(r.data.as_ref(), &data[..], "{mode:?} reconstruction");
        assert_eq!(r.degraded_stripes, 1, "{mode:?}");
        assert_eq!(r.checksum, w.checksum);
        // The reconstruction populated the read cache: a subrange inside
        // the failed chunk is served from client memory — this client
        // never reconstructs the same extent twice.
        let sub = fsc.read_at(&h, 1_000, 2_000).expect("cached subrange");
        assert_eq!(sub.data.as_ref(), &data[1_000..3_000]);
        assert_eq!(sub.degraded_stripes, 0, "served from cache, {mode:?}");
        assert!(fsc.read_cache_stats().hits >= 1);
        // With the cache dropped, the same subrange reconstructs again.
        fsc.drop_read_cache();
        let sub = fsc.read_at(&h, 1_000, 2_000).expect("degraded subrange");
        assert_eq!(sub.data.as_ref(), &data[1_000..3_000]);
        assert_eq!(sub.degraded_stripes, 1);
        // Recovery: direct reads resume.
        fsc.recover_storage_node(failed_idx);
        fsc.drop_read_cache();
        let healthy = fsc.read_at(&h, 0, data.len() as u32).expect("read");
        assert_eq!(healthy.degraded_stripes, 0);
        assert_eq!(healthy.data.as_ref(), &data[..]);
    }
}

/// A failed parity node does not degrade reads; losing more than m
/// shards makes the range unreadable (typed error, not garbage).
#[test]
fn degraded_read_limits() {
    let scheme = RsScheme::new(3, 2);
    let mut fsc = client(1, 5, StorageMode::Spin);
    fsc.mkdir_p("/ec").expect("mkdir");
    let mut h = fsc
        .create_with_policy(
            "/ec/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    h.write_protocol = WriteProtocol::SpinTriec { interleave: false };
    let data = payload(9, 90_000);
    let w = fsc.append(&h, &data).expect("write");
    // Parity-node failure: reads stay direct.
    let parity_idx = fsc
        .cluster
        .storage_index(w.placement.parities[0].node as usize);
    fsc.fail_storage_node(parity_idx);
    let r = fsc.read_at(&h, 0, data.len() as u32).expect("read");
    assert_eq!(r.degraded_stripes, 0);
    assert_eq!(r.data.as_ref(), &data[..]);
    // Fail m data nodes too: k-1 survivors < k ⇒ unreadable — but the
    // earlier read left the bytes in the client cache, which legally
    // keeps serving them (node failures don't change committed data).
    for coord in &w.placement.data_chunks[..2] {
        let idx = fsc.cluster.storage_index(coord.node as usize);
        fsc.fail_storage_node(idx);
    }
    let cached = fsc.read_at(&h, 0, data.len() as u32).expect("cached read");
    assert_eq!(cached.data.as_ref(), &data[..]);
    // An uncached client hits the typed error.
    fsc.drop_read_cache();
    let err = fsc.read_at(&h, 0, data.len() as u32).unwrap_err();
    assert_eq!(err, FsError::Io(Status::Rejected));
}

/// Replicated files fail over to a surviving replica.
#[test]
fn replicated_read_fails_over() {
    let mut fsc = client(1, 3, StorageMode::Spin);
    fsc.mkdir_p("/r").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/r/f",
            LayoutSpec::SINGLE,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        )
        .expect("create");
    let data = payload(3, 120_000);
    let w = fsc.append(&h, &data).expect("write");
    let primary_idx = fsc
        .cluster
        .storage_index(w.placement.replicas[0].node as usize);
    fsc.fail_storage_node(primary_idx);
    let r = fsc.read_at(&h, 10, 64_000).expect("failover read");
    assert_eq!(r.data.as_ref(), &data[10..64_010]);
    assert_eq!(r.degraded_stripes, 0, "replica failover is not degraded");
}

/// Expired read capabilities are rejected before any byte moves — on the
/// NIC for one-sided reads, on the CPU for RPC reads.
#[test]
fn capability_expired_reads_rejected_on_nic_and_cpu_paths() {
    for read_protocol in [ReadProtocol::Rdma, ReadProtocol::Rpc] {
        let spec = ClusterSpec::new(1, 1, StorageMode::Spin);
        let cluster = SimCluster::build_with(spec, |app| {
            // Read capabilities are issued already expired; write
            // capabilities stay valid so the data lands first.
            app.read_cap_expires_at_ns = 1;
        });
        let mut fsc = FsClient::new(cluster);
        fsc.mkdir_p("/sec").expect("mkdir");
        let mut h = fsc.create("/sec/f", LayoutSpec::SINGLE).expect("create");
        h.read_protocol = read_protocol;
        let data = payload(4, 64 << 10);
        fsc.append(&h, &data).expect("write");
        // A write-through cache hit would never present the capability.
        fsc.drop_read_cache();
        let err = fsc.read_at(&h, 0, data.len() as u32).unwrap_err();
        assert_eq!(
            err,
            FsError::Io(Status::AuthFailed),
            "{read_protocol:?} must reject expired read capabilities"
        );
        // Storage-side accounting: the rejection happened at the server.
        if read_protocol == ReadProtocol::Rpc {
            assert_eq!(fsc.cluster.storage_stats[0].borrow().auth_failures, 1);
        }
    }
}

/// Reads of never-written ranges are holes (zeros), and a fresh file
/// reads back empty.
#[test]
fn holes_and_empty_files_read_zero() {
    let mut fsc = client(1, 2, StorageMode::Plain);
    fsc.mkdir_p("/h").expect("mkdir");
    let h = fsc
        .create("/h/f", LayoutSpec::striped(2, 4096))
        .expect("create");
    let empty = fsc.read_at(&h, 0, 4096).expect("read empty");
    assert_eq!(empty.len, 0, "nothing written yet");
    // Extend the file with a gap: write at 10_000 only.
    let data = payload(8, 5_000);
    fsc.write_at(&h, 10_000, &data).expect("write");
    let r = fsc.read_at(&h, 0, 15_000).expect("read");
    assert_eq!(r.len, 15_000);
    assert!(r.data[..10_000].iter().all(|&b| b == 0), "hole reads zero");
    assert_eq!(&r.data[10_000..], &data[..]);
}

/// The legacy Job adapter still runs: a read-after-write workload mix
/// through the plan queue completes with matching checksums recorded in
/// the shared sink.
#[test]
fn workload_read_mix_completes_through_the_job_adapter() {
    use nadfs_core::{SizeDist, Workload};
    let spec = ClusterSpec::new(2, 3, StorageMode::Spin).with_window(2);
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, FilePolicy::Plain);
    let w = Workload::new(file.id, WriteProtocol::Spin, SizeDist::Fixed(16 << 10))
        .with_writes(4)
        .with_reads(3, ReadProtocol::Rdma);
    for client in 0..2 {
        for job in w.jobs_for_client(client) {
            // Serialize: reads must follow this client's writes, which the
            // in-order plan queue guarantees.
            c.submit(client, job);
        }
    }
    c.start();
    assert_eq!(c.run_until_writes(8, 10_000), 8);
    assert_eq!(c.run_until_file_reads(6, 10_000), 6);
    let results = c.results.borrow();
    assert!(results.writes.iter().all(|r| r.status == Status::Ok));
    for r in &results.file_reads {
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.checksum, payload_checksum(&r.data));
    }
}
