//! Gather-staging hygiene on the coordinator NIC. Degraded offloaded
//! reads stage remote survivor fetches and rebuilt chunks in host
//! memory; that scratch must (a) never overlap addresses the control
//! plane handed out for chunk placement, and (b) be released when the
//! response stream retires.
//!
//! Found by the churn harness (via the gather-storm flow test): the
//! staging bump allocator started at the bottom of the address space
//! and never freed, so around the *third* degraded gather on a node the
//! reconstruction slot crossed the placement base and silently
//! overwrote the first page of a live healthy chunk. Every later read
//! of that chunk — direct, offloaded, or cached from a readahead fill —
//! returned the rebuilt chunk's tail instead of the chunk's own bytes.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, ReadProtocol, SimCluster, StorageMode,
};
use nadfs_tests::{seed_from_env, SplitMix};
use nadfs_wire::RsScheme;

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix::new(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    v.truncate(len);
    v
}

/// Repeated degraded gathers must not corrupt live chunks: pre-fix, the
/// third gather's staging collided with the healthy chunk's placement
/// and iteration 4's full-file read came back with a foreign first page.
#[test]
fn repeated_degraded_gathers_leave_live_chunks_intact() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Spin)));
    fsc.mkdir_p("/gs").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/gs/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(2, 1),
            },
        )
        .expect("create");
    let data = payload(seed_from_env() ^ 0x57A6, 256 << 10);
    fsc.append(&h, &data).expect("write");
    let off = h.clone().with_read_protocol(ReadProtocol::Offloaded);

    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim = fsc
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fsc.fail_storage_node(victim);

    for round in 0..6 {
        // Cold every round: each read re-reconstructs on the NIC and
        // re-streams the healthy chunk, so a clobbered byte anywhere in
        // either chunk surfaces immediately.
        fsc.drop_read_cache();
        let r = fsc
            .read_at(&off, 0, data.len() as u32)
            .expect("degraded offloaded read");
        assert!(
            r.degraded_stripes >= 1,
            "round {round}: the failed chunk must reconstruct"
        );
        assert_eq!(
            r.data.as_ref(),
            &data[..],
            "round {round}: degraded gather corrupted live data"
        );
    }
}

/// Staging is transient: after a burst of degraded gathers, the
/// coordinator's resident memory footprint returns to (about) what one
/// in-flight gather needs — the scratch pages were released, not leaked.
#[test]
fn gather_staging_is_released_after_the_stream() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Spin)));
    fsc.mkdir_p("/gs").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/gs/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(2, 1),
            },
        )
        .expect("create");
    let data = payload(seed_from_env() ^ 0x57A7, 256 << 10);
    fsc.append(&h, &data).expect("write");
    let off = h.clone().with_read_protocol(ReadProtocol::Offloaded);

    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim = fsc
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fsc.fail_storage_node(victim);

    fsc.drop_read_cache();
    fsc.read_at(&off, 0, data.len() as u32).expect("warm-up");
    let baseline: Vec<usize> = fsc
        .cluster
        .storage_mems
        .iter()
        .map(|m| m.borrow().resident_pages())
        .collect();

    for _ in 0..10 {
        fsc.drop_read_cache();
        fsc.read_at(&off, 0, data.len() as u32).expect("read");
    }
    for (i, m) in fsc.cluster.storage_mems.iter().enumerate() {
        let now = m.borrow().resident_pages();
        // One degraded gather stages ~96 pages (one remote survivor
        // chunk + k reconstruction slots). Ten more reads must not pile
        // up ten more staging regions.
        assert!(
            now <= baseline[i] + 96,
            "storage node {i} leaks staging pages: {} -> {now}",
            baseline[i]
        );
    }
}
