//! Property tests for the repair pipeline's invariants.
//!
//! 1. Queue discipline: under arbitrary push/promote/pop interleavings
//!    the repair queue never holds duplicates, promotion is front
//!    insertion, and membership tracking matches the queue contents.
//! 2. End-to-end convergence: for arbitrary write/fail interleavings on
//!    a live simulated cluster, draining the repair queue leaves every
//!    extent resolving through the normal (non-degraded) path with
//!    bytes identical to a shadow model.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, RepairQueue, RepairTask, SimCluster, StorageMode,
};
use nadfs_wire::{BcastStrategy, RsScheme};
use proptest::prelude::*;

// --- 1. queue discipline -------------------------------------------------

#[derive(Clone, Debug)]
enum QueueOp {
    PushBack(u8, u8),
    Promote(u8, u8),
    Pop,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    (0u8..3, 0u8..4, 0u8..4).prop_map(|(kind, f, r)| match kind {
        0 => QueueOp::PushBack(f, r),
        1 => QueueOp::Promote(f, r),
        _ => QueueOp::Pop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_never_duplicates_and_promotion_is_front_insertion(
        ops in proptest::collection::vec(queue_op(), 1..60)
    ) {
        let mut q = RepairQueue::default();
        let mut model: Vec<RepairTask> = Vec::new();
        for op in ops {
            match op {
                QueueOp::PushBack(f, r) => {
                    let t = RepairTask { file: f as u64, rec: r as usize };
                    let inserted = q.push_back(t);
                    prop_assert_eq!(inserted, !model.contains(&t));
                    if inserted {
                        model.push(t);
                    }
                }
                QueueOp::Promote(f, r) => {
                    let t = RepairTask { file: f as u64, rec: r as usize };
                    q.promote(t);
                    model.retain(|&x| x != t);
                    model.insert(0, t);
                    prop_assert_eq!(q.peek(), Some(t));
                }
                QueueOp::Pop => {
                    let got = q.pop();
                    let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                    prop_assert_eq!(got, want);
                    if let Some(t) = got {
                        prop_assert!(!q.contains(t), "popped tasks leave the member set");
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
        // Draining always terminates and empties the member set.
        while q.pop().is_some() {}
        prop_assert!(q.is_empty());
    }
}

// --- 2. end-to-end convergence -------------------------------------------

#[derive(Clone, Debug)]
enum Policy {
    Ec,
    Replicated,
}

fn policy() -> impl Strategy<Value = Policy> {
    (0u8..2).prop_map(|k| {
        if k == 0 {
            Policy::Ec
        } else {
            Policy::Replicated
        }
    })
}

/// One scripted scenario: `writes` = (offset, len) pairs applied in
/// order; the node kill fires after `fail_after` of them (so writes
/// before AND after the failure are exercised); `victim` indexes the
/// storage nodes.
#[derive(Clone, Debug)]
struct Scenario {
    policy: Policy,
    writes: Vec<(u64, usize)>,
    fail_after: usize,
    victim: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        policy(),
        proptest::collection::vec((0u64..6_000, 500usize..3_000), 1..4),
        0usize..4,
        0usize..5,
    )
        .prop_map(|(policy, writes, fail_after, victim)| Scenario {
            policy,
            fail_after: fail_after.min(writes.len()),
            writes,
            victim,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn after_drain_no_extent_resolves_degraded_and_bytes_match(s in scenario()) {
        let n_storage = 5;
        let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(
            1,
            n_storage,
            StorageMode::Spin,
        )));
        fsc.mkdir_p("/p").expect("mkdir");
        let file_policy = match s.policy {
            Policy::Ec => FilePolicy::ErasureCoded { scheme: RsScheme::new(2, 1) },
            Policy::Replicated => FilePolicy::Replicated { k: 2, strategy: BcastStrategy::Ring },
        };
        let h = fsc
            .create_with_policy("/p/f", LayoutSpec::SINGLE, file_policy)
            .expect("create");
        // Shadow model of the file's logical bytes.
        let mut model: Vec<u8> = Vec::new();
        let mut failed = false;
        for (i, &(offset, len)) in s.writes.iter().enumerate() {
            if i == s.fail_after {
                fsc.fail_storage_node(s.victim);
                failed = true;
            }
            let data: Vec<u8> = (0..len)
                .map(|b| (b as u64 ^ offset ^ (i as u64) << 3) as u8)
                .collect();
            fsc.write_at(&h, offset, &data).expect("write");
            let end = offset as usize + len;
            if model.len() < end {
                model.resize(end, 0);
            }
            model[offset as usize..end].copy_from_slice(&data);
        }
        if !failed {
            fsc.fail_storage_node(s.victim);
        }

        let report = fsc.drain_repairs();
        // One failure, EC(2,1)/2-way replication, and a spare domain
        // always exist on 5 nodes: every queued extent must re-protect.
        prop_assert!(report.converged(), "drain gave up: {report:?}");
        prop_assert_eq!(report.unrepairable, 0);
        prop_assert_eq!(fsc.repair_backlog(), 0);

        // Invariant 1: no extent resolves degraded after the drain.
        // Invariant 2: re-protected bytes ≡ the shadow model.
        if !model.is_empty() {
            let r = fsc
                .read_at(&h, 0, model.len() as u32)
                .expect("post-drain read");
            prop_assert_eq!(r.degraded_stripes, 0);
            prop_assert_eq!(r.data.as_ref(), &model[..]);
        }
    }
}
