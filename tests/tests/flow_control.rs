//! The credit-based flow-control / QoS subsystem, end to end: WR credits
//! cycle cleanly on real traffic (posted == completed at quiesce, queued
//! == released), tight budgets backpressure without losing work, the
//! per-tenant DRR schedulers give weighted tenants their share under
//! contention, repair traffic rides the low-weight repair pseudo-tenant
//! with an optional windowed bandwidth cap, and bulk-meta spans keep
//! namespace storms from saturating the completed-span ring.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, MetaWorkload, QosConfig, RepairDriver,
    SimCluster, SizeDist, StorageMode, Workload, WriteProtocol,
};
use nadfs_simnet::{CreditConfig, MetricsSnapshot, OpKind};
use nadfs_wire::{RsScheme, Status};

/// Counter lookup with a zero default (all asserted names are exported
/// by `metrics_snapshot`, but a missing key should fail the assert, not
/// panic on unwrap).
fn c(m: &MetricsSnapshot, name: &str) -> u64 {
    m.counter(name).unwrap_or(0)
}

/// Every credit acquired on the write/read path comes back: per class,
/// completions equal posts at quiesce, every queued WR was released, and
/// the receivers granted recv credit back to the senders.
#[test]
fn credits_cycle_cleanly_on_real_traffic() {
    let spec = ClusterSpec::new(2, 3, StorageMode::Plain);
    let mut cl = SimCluster::build(spec);
    let file = cl.control.borrow_mut().create_file(0, FilePolicy::Plain);
    // RPC writes ride two-sided Data WRs (recv credit must cycle back via
    // grants); RDMA reads ride one-sided Read WRs (local credit only).
    let w = Workload::new(file.id, WriteProtocol::Rpc, SizeDist::Fixed(32 << 10))
        .with_writes(12)
        .with_reads(6, nadfs_core::ReadProtocol::Rdma)
        .with_seed(11);
    for c in 0..2 {
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
        }
    }
    cl.start();
    let done = cl.run_until_writes(24, 60_000);
    assert_eq!(done, 24, "all writes complete under flow control");
    let reads = cl.run_until_file_reads(12, 60_000);
    assert_eq!(reads, 12, "all reads complete under flow control");
    assert!(
        cl.results
            .borrow()
            .writes
            .iter()
            .all(|w| w.status == Status::Ok),
        "every write succeeded"
    );
    cl.run_ms(5); // drain trailing acks so in-flight grants land

    let m = cl.metrics_snapshot();
    assert!(c(&m, "flow.posted.data") > 0, "data WRs were posted");
    assert!(c(&m, "flow.posted.read") > 0, "read WRs were posted");
    for class in ["data", "imm", "read", "write"] {
        assert_eq!(
            c(&m, &format!("flow.posted.{class}")),
            c(&m, &format!("flow.completed.{class}")),
            "{class}: every posted WR completed (credit returned)"
        );
    }
    assert_eq!(
        c(&m, "flow.queued"),
        c(&m, "flow.released"),
        "every credit-stalled WR was eventually released"
    );
    assert!(
        c(&m, "flow.grants_received") > 0,
        "recv credit cycled back via ack grants"
    );
    assert_eq!(
        c(&m, "flow.granted_piggyback") + c(&m, "flow.granted_standalone"),
        c(&m, "flow.grants_received"),
        "grants shipped equal grants applied at quiesce"
    );
}

/// Starvation-level budgets (2 WRs per class) backpressure a deep client
/// window into the pending queue — but nothing is lost: every write
/// still completes with `Ok`.
#[test]
fn tight_budgets_backpressure_without_losing_work() {
    let qos = QosConfig {
        credit: CreditConfig {
            max_send_data: 2,
            max_send_imm: 2,
            max_send_read: 2,
            max_send_write: 2,
        },
        ..Default::default()
    };
    let spec = ClusterSpec::new(1, 3, StorageMode::Spin)
        .with_window(8)
        .with_qos(qos);
    let mut cl = SimCluster::build(spec);
    let file = cl.control.borrow_mut().create_file(0, FilePolicy::Plain);
    let w = Workload::new(file.id, WriteProtocol::Spin, SizeDist::Fixed(64 << 10))
        .with_writes(24)
        .with_seed(5);
    for j in w.jobs_for_client(0) {
        cl.submit(0, j);
    }
    cl.start();
    let done = cl.run_until_writes(24, 120_000);
    assert_eq!(done, 24, "backpressure must throttle, not deadlock");
    assert!(
        cl.results
            .borrow()
            .writes
            .iter()
            .all(|w| w.status == Status::Ok),
        "no write failed under credit pressure"
    );
    let m = cl.metrics_snapshot();
    assert!(
        c(&m, "flow.queued") > 0,
        "an 8-deep window against 2-WR budgets must stall"
    );
    assert_eq!(c(&m, "flow.queued"), c(&m, "flow.released"));
    assert!(c(&m, "flow.local_stalls") + c(&m, "flow.remote_stalls") > 0);
}

/// Two tenants flood one storage node's RPC service point with equal
/// offered load; the weight-8 tenant's writes finish with lower mean
/// latency than the weight-1 tenant's, and neither tenant starves.
#[test]
fn weighted_tenant_gets_priority_under_contention() {
    let qos = QosConfig {
        enabled: true,
        rpc_concurrency: 1,
        quantum: 16 << 10,
        weights: vec![(1, 8), (2, 1)],
        ..Default::default()
    };
    let spec = ClusterSpec::new(4, 1, StorageMode::Plain)
        .with_window(4)
        .with_qos(qos);
    let mut cl = SimCluster::build(spec);
    // Clients 0/1 are tenant 1 (weight 8), clients 2/3 tenant 2 (weight 1).
    cl.set_client_tenant(0, 1);
    cl.set_client_tenant(1, 1);
    cl.set_client_tenant(2, 2);
    cl.set_client_tenant(3, 2);
    let file = cl.control.borrow_mut().create_file(0, FilePolicy::Plain);
    let w = Workload::new(file.id, WriteProtocol::Rpc, SizeDist::Fixed(64 << 10))
        .with_writes(16)
        .with_seed(3);
    for c in 0..4 {
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
        }
    }
    cl.start();
    let done = cl.run_until_writes(64, 240_000);
    assert_eq!(done, 64, "both tenants complete — no starvation");

    let results = cl.results.borrow();
    let mean_us = |clients: &[usize]| -> f64 {
        let nodes: Vec<_> = clients.iter().map(|&c| cl.client_nodes[c]).collect();
        let lat: Vec<f64> = results
            .writes
            .iter()
            .filter(|w| nodes.contains(&w.client))
            .map(|w| w.end.since(w.start).ps() as f64 / 1e6)
            .collect();
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let heavy = mean_us(&[0, 1]);
    let light = mean_us(&[2, 3]);
    assert!(
        heavy < light,
        "weight-8 tenant must see lower mean latency: {heavy:.1}us vs {light:.1}us"
    );
    drop(results);

    let m = cl.metrics_snapshot();
    assert_eq!(c(&m, "tenant.1.enqueued"), c(&m, "tenant.1.dispatched"));
    assert_eq!(
        c(&m, "tenant.2.enqueued"),
        c(&m, "tenant.2.dispatched"),
        "the weight-1 tenant still gets all of its work serviced"
    );
    assert!(c(&m, "tenant.1.cost_dispatched") > 0);
    assert!(c(&m, "tenant.2.cost_dispatched") > 0);
}

fn ec_cluster_with_backlog() -> (FsClient, usize) {
    let qos = QosConfig {
        enabled: true,
        ..Default::default()
    };
    let mut fsc = FsClient::new(SimCluster::build(
        ClusterSpec::new(1, 6, StorageMode::Spin).with_qos(qos),
    ));
    fsc.mkdir_p("/ec").expect("mkdir");
    let mut victim = None;
    for i in 0..4 {
        let h = fsc
            .create_with_policy(
                &format!("/ec/f{i}"),
                LayoutSpec::SINGLE,
                FilePolicy::ErasureCoded {
                    scheme: RsScheme::new(3, 2),
                },
            )
            .expect("create");
        let data: Vec<u8> = (0..120_000u32).map(|j| (j ^ i) as u8).collect();
        fsc.append(&h, &data).expect("write");
        if victim.is_none() {
            let w = fsc.cluster.results.borrow().writes.last().cloned().unwrap();
            let node = w.placement.data_chunks[0].node;
            victim = Some(fsc.cluster.storage_index(node as usize));
        }
    }
    let victim = victim.unwrap();
    fsc.fail_storage_node(victim);
    assert!(
        fsc.repair_backlog() >= 2,
        "the victim hosted shards of several extents"
    );
    (fsc, victim)
}

/// Repair traffic is classified under the repair pseudo-tenant at the
/// storage-side schedulers, and the driver's windowed bandwidth cap
/// stretches a multi-task drain over idle windows.
#[test]
fn repair_rides_its_own_tenant_and_the_cap_throttles_it() {
    // Uncapped drain: repair converges and shows up in the repair
    // tenant's ledger (classified, low-weight traffic).
    let (mut fsc, _) = ec_cluster_with_backlog();
    let mut driver = RepairDriver::new(0);
    let report = driver.drain(&mut fsc.cluster);
    assert!(report.converged(), "{report:?}");
    assert!(report.repaired >= 2);
    assert_eq!(report.throttled_ms, 0, "no cap, no throttling");
    let uncapped_end = fsc.cluster.engine.now();
    let m = fsc.cluster.metrics_snapshot();
    assert!(
        c(&m, "tenant.repair.dispatched") > 0,
        "repair fetches ride the repair pseudo-tenant"
    );

    // Same scenario with a 1-byte-per-50ms cap: every task after the
    // first waits for a fresh window, so the drain idles measurably and
    // finishes later — while still converging to the same repairs.
    let (mut fsc2, _) = ec_cluster_with_backlog();
    let mut driver2 = RepairDriver::new(0);
    driver2.bandwidth_cap = Some(1);
    driver2.throttle_window_ms = 50;
    let report2 = driver2.drain(&mut fsc2.cluster);
    assert!(report2.converged(), "{report2:?}");
    assert_eq!(report2.repaired, report.repaired);
    assert!(
        report2.throttled_ms > 0,
        "the cap must idle the driver between tasks"
    );
    assert_eq!(driver2.throttled_ms(), report2.throttled_ms);
    assert!(
        fsc2.cluster.engine.now() > uncapped_end,
        "a throttled drain takes longer in simulated time"
    );
}

fn storm() -> MetaWorkload {
    MetaWorkload::new("/storm")
        .with_dirs(2, 4)
        .with_storm(4200)
        .with_seed(13)
}

/// A 4200-op metadata storm saturates the 4096-entry completed-span ring
/// in per-op mode; with bulk spans the whole storm collapses into one
/// `meta-bulk` span carrying the op count, and nothing is dropped.
#[test]
fn bulk_meta_spans_stop_storms_from_saturating_the_ring() {
    let run = |bulk: bool| -> SimCluster {
        let spec = ClusterSpec::new(1, 2, StorageMode::Plain);
        let mut cl = SimCluster::build_with(spec, |app| app.bulk_meta_spans = bulk);
        let w = storm();
        w.prepare(&cl.control);
        let mut n = 0;
        for j in w.jobs_for_client(0) {
            cl.submit(0, j);
            n += 1;
        }
        assert_eq!(n, w.ops_per_client());
        cl.start();
        let done = cl.run_until_metas(n, 120_000);
        assert_eq!(done, n, "storm completes");
        cl
    };

    let per_op = run(false);
    {
        let hub = per_op.obs.borrow();
        assert!(
            hub.spans.dropped() > 0,
            "per-op spans must overflow the ring on a >4096-op storm"
        );
        assert_eq!(hub.spans.done_count(), 4096);
    }

    let bulk = run(true);
    let hub = bulk.obs.borrow();
    assert_eq!(hub.spans.dropped(), 0, "bulk mode drops nothing");
    assert_eq!(hub.spans.open_count(), 0, "the bulk span closed");
    let bulk_spans: Vec<_> = hub
        .spans
        .done()
        .filter(|s| s.kind == OpKind::MetaBulk)
        .collect();
    assert_eq!(bulk_spans.len(), 1, "one span for the whole storm");
    let expect = storm().ops_per_client();
    assert_eq!(bulk_spans[0].label, format!("meta-bulk n={expect}"));
    assert!(bulk_spans[0].ok, "all ops in the storm succeeded");
}

/// Gather NIC-to-NIC fetches are requester-side reads and must consume
/// Read credit like any other one-sided read. Pre-fix they rode the
/// credit-exempt responder path (`send_frames`), so a degraded gather
/// storm posted unbounded fetches at survivor nodes and monopolized a
/// 2-WR-budget link against flow-controlled peers. Now the storm stalls,
/// cycles, and conserves: storage NICs post (and complete) Read WRs,
/// queueing under the tight budget instead of bypassing it.
#[test]
fn gather_fetch_storm_respects_read_credit() {
    let qos = QosConfig {
        credit: CreditConfig {
            max_send_data: 2,
            max_send_imm: 2,
            max_send_read: 2,
            max_send_write: 2,
        },
        ..Default::default()
    };
    let spec = ClusterSpec::new(1, 4, StorageMode::Spin)
        .with_window(8)
        .with_qos(qos);
    let mut fsc = FsClient::new(SimCluster::build(spec));
    fsc.mkdir_p("/g").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/g/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(2, 1),
            },
        )
        .expect("create");
    let data: Vec<u8> = (0..256usize << 10).map(|i| (i % 251) as u8).collect();
    fsc.append(&h, &data).expect("write");

    // Kill a data-chunk holder and blow the cache: every offloaded read
    // below reconstructs on the coordinator NIC, gathering survivor
    // segments NIC-to-NIC.
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim = fsc
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fsc.fail_storage_node(victim);
    fsc.drop_read_cache();

    // Eight concurrent disjoint offloaded reads of the same extent: a
    // gather storm hammering the record's coordinator.
    let mut cl = fsc.into_cluster();
    let n_clients = cl.client_nodes.len();
    let slice = data.len() / 8;
    for i in 0..8u64 {
        cl.submit(
            0,
            nadfs_core::Job::Read {
                file: h.id(),
                offset: i * slice as u64,
                len: slice as u32,
                protocol: nadfs_core::ReadProtocol::Offloaded,
                token: 0x6A00 + i,
                slot: None,
            },
        );
    }
    cl.start();
    let done = cl.run_until_file_reads(8, 240_000);
    assert_eq!(done, 8, "the storm must complete under flow control");
    cl.run_ms(5); // trailing acks and credit grants land

    // Every degraded read reconstructed the right bytes.
    for r in &cl.results.borrow().file_reads {
        assert_eq!(r.status, Status::Ok);
        let off = r.offset as usize;
        assert_eq!(
            r.data.as_ref(),
            &data[off..off + r.len as usize],
            "degraded gather at offset {off} diverged"
        );
    }

    // The fetches were credited on the storage NICs (pre-fix: zero Read
    // WRs posted there — they bypassed the controller entirely)…
    let read = nadfs_simnet::WrClass::Read as usize;
    let storage_posted: u64 = cl.flow_stats[n_clients..]
        .iter()
        .map(|s| s.borrow().posted[read])
        .sum();
    // Four of the eight reads hit the failed chunk, so the coordinator
    // issues (at least) four NIC-to-NIC survivor fetches; readahead may
    // add more. The healthy-chunk reads stream locally and post nothing.
    assert!(
        storage_posted >= 4,
        "gather fetches must post Read WRs on the survivor path (got {storage_posted})"
    );
    // …and the storm actually stalled against the 2-WR budget somewhere
    // along the chain (the client's eight gathers alone oversubscribe it)
    // instead of monopolizing the link.
    let (queued, stalls): (u64, u64) = cl
        .flow_stats
        .iter()
        .map(|s| {
            let f = s.borrow();
            (f.queued, f.local_stalls + f.remote_stalls)
        })
        .fold((0, 0), |(q, st), (a, b)| (q + a, st + b));
    assert!(
        queued > 0 && stalls > 0,
        "concurrent fetches against a 2-WR budget must queue (queued={queued} stalls={stalls})"
    );
    // Full conservation at quiesce: every credit acquired came back.
    nadfs_tests::assert_flow_conserved(&cl, "gather storm");
}
