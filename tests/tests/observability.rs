//! The observability layer's acceptance bar, end to end:
//!
//! - every completed op span's phase durations sum *exactly* to its
//!   end-to-end latency (at picosecond resolution on the spans, and at
//!   nanosecond resolution in the metrics snapshot, by construction);
//! - a mixed write/read/repair run exports Perfetto-valid Chrome
//!   trace-event JSON with client, control, NIC, and storage tracks;
//! - spans never leak: rejected jobs, expired capabilities, mid-op node
//!   deaths under a [`FaultPlan`], and cache-hit short-circuits all close
//!   their span;
//! - the `nadfs-metrics-v1` snapshot schema stays stable.

use std::collections::BTreeMap;

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, Job, LayoutSpec, MetaOp, ReadProtocol, SimCluster,
    StorageMode,
};
use nadfs_simnet::telemetry::json::{self, Json};
use nadfs_simnet::{Dur, SNAPSHOT_SCHEMA};
use nadfs_tests::{
    drain_repairs_with_faults, write_then_fail_midway, FaultAction, FaultPlan, FaultPoint, SplitMix,
};
use nadfs_wire::RsScheme;

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix::new(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    v.truncate(len);
    v
}

/// The canonical mixed run: an EC write, an uncached + a cached + an
/// RPC-baseline read, a degraded read after a node kill, one repair
/// drain, and a meta op — every span kind and every phase branch.
fn mixed_run() -> FsClient {
    let scheme = RsScheme::new(3, 2);
    let cluster = SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);
    fs.mkdir_p("/obs").expect("mkdir");
    let h = fs
        .create_with_policy(
            "/obs/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(7, 200_000);
    let w = fs.append(&h, &data).expect("write");
    let r1 = fs.read_at(&h, 0, data.len() as u32).expect("read");
    assert_eq!(r1.data.as_ref(), &data[..]);
    let r2 = fs.read_at(&h, 0, data.len() as u32).expect("cached read");
    assert!(r2.from_cache, "second read must hit the client cache");
    let mut rpc = fs.open("/obs/f").expect("open");
    rpc.read_protocol = ReadProtocol::Rpc;
    fs.drop_read_cache();
    let r3 = fs.read_at(&rpc, 0, data.len() as u32).expect("rpc read");
    assert_eq!(r3.data.as_ref(), &data[..]);
    let victim = fs
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fs.fail_storage_node(victim);
    fs.drop_read_cache();
    let r4 = fs.read_at(&h, 0, data.len() as u32).expect("degraded read");
    assert!(
        r4.degraded_stripes > 0,
        "read must exercise the degraded path"
    );
    let report = fs.drain_repairs();
    assert!(report.converged() && report.repaired >= 1);
    // One metadata job through the client driver (fs.stat peeks the
    // control plane directly and would not mint a span).
    fs.cluster.submit(
        0,
        Job::Meta {
            op: MetaOp::Lookup {
                path: "/obs/f".into(),
            },
            token: 99,
        },
    );
    fs.cluster.start();
    assert_eq!(fs.cluster.run_until_metas(1, 1_000), 1);
    fs
}

/// Acceptance (a): per-op phase latencies sum exactly to the end-to-end
/// latency — per span at full sim-clock resolution, and per op kind in
/// the aggregated snapshot histograms.
#[test]
fn phase_durations_sum_exactly_to_e2e() {
    let fs = mixed_run();
    assert_eq!(fs.open_spans(), 0, "mixed run left spans open");

    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    {
        let obs = fs.cluster.obs.borrow();
        for sp in obs.spans.done() {
            let phase_sum: u64 = sp.phase_durations().iter().map(|&(_, Dur(d))| d).sum();
            assert_eq!(
                phase_sum,
                sp.e2e().0,
                "span {} ({}) phases {:?} don't telescope to e2e",
                sp.id,
                sp.label,
                sp.marks
            );
            *by_kind.entry(sp.kind.as_str()).or_default() += 1;
        }
        assert_eq!(obs.spans.dropped(), 0, "span ring overflowed mid-test");
    }
    for kind in ["write", "read", "repair", "meta"] {
        assert!(
            by_kind.get(kind).copied().unwrap_or(0) >= 1,
            "mixed run produced no {kind} span ({by_kind:?})"
        );
    }

    // Same exactness in the snapshot: the ns-truncated phase histograms
    // of each kind sum to that kind's e2e histogram, in total.
    let snap = fs.metrics_snapshot();
    for kind in ["write", "read", "repair", "meta"] {
        let e2e = snap
            .hist(&format!("op.{kind}.e2e_ns"))
            .unwrap_or_else(|| panic!("no op.{kind}.e2e_ns histogram"));
        let phase_prefix = format!("op.{kind}.phase.");
        let phase_sum: u64 = snap
            .hists
            .iter()
            .filter(|(name, _)| name.starts_with(&phase_prefix))
            .map(|(_, h)| h.sum)
            .sum();
        assert_eq!(
            phase_sum, e2e.sum,
            "op.{kind} phase histograms don't sum to e2e"
        );
    }
}

/// Acceptance (b): the Chrome trace export parses and carries at least
/// one *event* (not just track metadata) on each component track class.
#[test]
fn chrome_export_has_events_on_every_component_track() {
    let fs = mixed_run();
    let doc = fs.export_chrome_trace();
    let parsed = json::parse(&doc).expect("chrome trace-event JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");

    let mut track_of_tid: BTreeMap<u64, String> = BTreeMap::new();
    for e in events {
        if e.get("name").and_then(Json::as_str) == Some("thread_name") {
            let tid = e.get("tid").and_then(Json::as_f64).expect("tid") as u64;
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .expect("track name");
            track_of_tid.insert(tid, name.to_owned());
        }
    }
    let mut events_per_class: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "M" {
            continue;
        }
        assert!(matches!(ph, "X" | "i"), "unexpected event phase {ph}");
        let tid = e.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let track = &track_of_tid[&tid];
        for class in ["client-", "control", "nic-", "storage-"] {
            if track.starts_with(class) {
                *events_per_class.entry(class).or_default() += 1;
            }
        }
        // Complete slices must carry a duration; every event a timestamp.
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        if ph == "X" {
            assert!(e.get("dur").and_then(Json::as_f64).expect("dur") >= 0.0);
        }
    }
    for class in ["client-", "control", "nic-", "storage-"] {
        assert!(
            events_per_class.get(class).copied().unwrap_or(0) >= 1,
            "no events on any {class}* track ({events_per_class:?})"
        );
    }
}

/// Spans on jobs the control plane rejects outright (placement on a
/// vanished file) are closed as rejected, not leaked.
#[test]
fn rejected_write_closes_its_span() {
    let cluster = SimCluster::build(ClusterSpec::new(1, 2, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);
    fs.mkdir_p("/r").expect("mkdir");
    let h = fs.create("/r/f", LayoutSpec::SINGLE).expect("create");
    let now = fs.cluster.engine.now().as_ns() as u64;
    fs.cluster
        .control
        .borrow_mut()
        .unlink("/r/f", now)
        .expect("unlink");
    let err = fs.append(&h, &payload(1, 4096));
    assert!(err.is_err(), "write to an unlinked file must fail");
    assert_eq!(fs.open_spans(), 0, "rejected write leaked its span");
    let snap = fs.metrics_snapshot();
    assert!(snap.counter("op.write.rejected").unwrap_or(0) >= 1);
}

/// Expired read capabilities — rejected on the NIC (one-sided) or the
/// storage CPU (RPC) — still close the client's read span.
#[test]
fn expired_capability_reads_close_their_spans() {
    for protocol in [ReadProtocol::Rdma, ReadProtocol::Rpc] {
        let spec = ClusterSpec::new(1, 1, StorageMode::Spin);
        let cluster = SimCluster::build_with(spec, |app| {
            app.read_cap_expires_at_ns = 1;
        });
        let mut fs = FsClient::new(cluster);
        fs.mkdir_p("/sec").expect("mkdir");
        let mut h = fs.create("/sec/f", LayoutSpec::SINGLE).expect("create");
        h.read_protocol = protocol;
        let data = payload(2, 64 << 10);
        fs.append(&h, &data).expect("write");
        // The write-through fill would serve this read locally without
        // ever presenting the capability; drop it to hit the wire.
        fs.drop_read_cache();
        assert!(fs.read_at(&h, 0, data.len() as u32).is_err());
        assert_eq!(
            fs.open_spans(),
            0,
            "{protocol:?}: expired-cap read leaked its span"
        );
        let snap = fs.metrics_snapshot();
        assert!(snap.counter("op.read.rejected").unwrap_or(0) >= 1);
    }
}

/// Cache-hit short-circuits close their span (with the cache-hit mark)
/// and feed the cache-hit counter.
#[test]
fn cache_hit_reads_close_spans_with_cache_hit_phase() {
    let cluster = SimCluster::build(ClusterSpec::new(1, 2, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);
    fs.mkdir_p("/c").expect("mkdir");
    let h = fs.create("/c/f", LayoutSpec::SINGLE).expect("create");
    let data = payload(3, 64 << 10);
    fs.append(&h, &data).expect("write");
    let _ = fs.read_at(&h, 0, data.len() as u32).expect("fill");
    let hit = fs.read_at(&h, 0, data.len() as u32).expect("hit");
    assert!(hit.from_cache);
    assert_eq!(fs.open_spans(), 0);
    let obs = fs.cluster.obs.borrow();
    let cache_span = obs
        .spans
        .done()
        .find(|sp| sp.has_mark(nadfs_simnet::telemetry::phase::CACHE_HIT))
        .expect("a span with the cache-hit mark");
    assert!(cache_span.ok);
    drop(obs);
    let snap = fs.metrics_snapshot();
    assert!(snap.counter("op.read.cache_hits").unwrap_or(0) >= 1);
}

/// Mid-op node death (scripted via the fault harness) and faults fired
/// *during* the repair drain never leak spans — including aborted repair
/// attempts.
#[test]
fn fault_injected_run_leaves_no_open_spans() {
    let scheme = RsScheme::new(3, 2);
    let cluster = SimCluster::build(ClusterSpec::new(1, 7, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);
    fs.mkdir_p("/f").expect("mkdir");
    let h = fs
        .create_with_policy(
            "/f/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(4, 150_000);

    // Kill a node while the stripe is in flight.
    let w = write_then_fail_midway(&mut fs, &h, 0, &data, 0, 5);
    let _ = w;
    // And another one between the first and second repair task.
    let mut plan = FaultPlan::new(0xFEED).on(
        FaultPoint::AfterRepairs(1),
        FaultAction::FailRandomOf(vec![1, 2]),
    );
    fs.repair_backlog(); // sanity: callable mid-fault
    let report = drain_repairs_with_faults(&mut fs, &mut plan);
    let _ = report;
    // A second drain settles anything the mid-drain kill re-queued.
    let _ = fs.drain_repairs();

    assert_eq!(fs.open_spans(), 0, "fault run leaked spans");
    let obs = fs.cluster.obs.borrow();
    for sp in obs.spans.done() {
        let phase_sum: u64 = sp.phase_durations().iter().map(|&(_, Dur(d))| d).sum();
        assert_eq!(phase_sum, sp.e2e().0, "span {} broken by faults", sp.label);
    }
}

/// CI alarm: `spans.dropped > 0` in a snapshot means the completed-span
/// ring overflowed and telemetry silently lost op lifecycles — phase
/// accounting, trace exports, and the bench's span-derived numbers all
/// under-report from that point on. The acceptance workloads must never
/// trip it; a legitimate capacity change raises the ring size, not this
/// bar.
#[test]
fn span_ring_never_drops_in_acceptance_workloads() {
    let fs = mixed_run();
    let snap = fs.metrics_snapshot();
    assert_eq!(
        snap.gauge("spans.dropped"),
        Some(0.0),
        "completed-span ring overflowed: telemetry is lossy"
    );
}

/// The serialized snapshot keeps the pinned `nadfs-metrics-v1` layout:
/// top-level sections, histogram summary fields, and the stable metric
/// families components register under. Renaming any of these is a
/// deliberate schema bump, not a refactor.
#[test]
fn metrics_snapshot_schema_is_stable() {
    let fs = mixed_run();
    let snap = fs.metrics_snapshot();
    assert_eq!(snap.schema, SNAPSHOT_SCHEMA);
    assert_eq!(SNAPSHOT_SCHEMA, "nadfs-metrics-v1");

    let doc = snap.to_json();
    let parsed = json::parse(&doc).expect("snapshot JSON parses");
    let top: Vec<&str> = parsed
        .members()
        .expect("object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(top, ["schema", "counters", "gauges", "histograms"]);

    let hists = parsed.get("histograms").expect("histograms");
    let (_, first) = &hists.members().expect("object")[0];
    let fields: Vec<&str> = first
        .members()
        .expect("hist object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        fields,
        ["count", "sum", "min", "max", "mean", "p50", "p90", "p99"]
    );

    // Metric families every release must keep publishing.
    for counter in [
        "op.write.completed",
        "op.read.completed",
        "op.repair.completed",
        "op.meta.completed",
        "op.read.cache_hits",
        "storage.0.rpc_reads",
        "storage.0.stripe_chunks_placed",
        "client.0.read_cache.hits",
        "client.0.meta_cache.hits",
        "repair.committed",
        "fabric.switch_holds",
        "engine.events_dispatched",
    ] {
        assert!(
            snap.counter(counter).is_some(),
            "snapshot lost counter {counter}"
        );
    }
    for hist in ["op.write.e2e_ns", "op.read.e2e_ns", "op.repair.e2e_ns"] {
        assert!(snap.hist(hist).is_some(), "snapshot lost histogram {hist}");
    }
    for gauge in ["spans.open", "spans.done", "spans.dropped"] {
        assert!(snap.gauge(gauge).is_some(), "snapshot lost gauge {gauge}");
    }
    assert_eq!(snap.gauge("spans.open"), Some(0.0));
}

/// Engine profiling (off by default) lands dispatch counts and per-kind
/// host busy time in the snapshot — the measured baseline for the
/// dispatch-overhead ROADMAP item.
#[test]
fn engine_profiling_baseline_lands_in_snapshot() {
    let spec = ClusterSpec::new(1, 2, StorageMode::Spin).with_engine_profiling();
    let mut fs = FsClient::new(SimCluster::build(spec));
    fs.mkdir_p("/p").expect("mkdir");
    let h = fs.create("/p/f", LayoutSpec::SINGLE).expect("create");
    fs.append(&h, &payload(5, 64 << 10)).expect("write");
    let snap = fs.metrics_snapshot();
    let total = snap.counter("engine.events_dispatched").unwrap_or(0);
    assert!(total > 0, "no events dispatched?");
    let per_kind: Vec<_> = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("engine.kind.") && k.ends_with(".dispatches"))
        .collect();
    assert!(
        !per_kind.is_empty(),
        "profiling enabled but no per-kind dispatch counters"
    );
    let kind_sum: u64 = per_kind.iter().map(|(_, v)| *v).sum();
    assert_eq!(kind_sum, total, "per-kind dispatches don't sum to total");
}

/// Observability can be turned off entirely: no spans accumulate, the
/// run still completes, and the export degrades to an empty (but valid)
/// document.
#[test]
fn observability_off_is_a_clean_noop() {
    let spec = ClusterSpec::new(1, 2, StorageMode::Spin).with_observability(false);
    let mut fs = FsClient::new(SimCluster::build(spec));
    fs.mkdir_p("/off").expect("mkdir");
    let h = fs.create("/off/f", LayoutSpec::SINGLE).expect("create");
    let data = payload(6, 64 << 10);
    fs.append(&h, &data).expect("write");
    let r = fs.read_at(&h, 0, data.len() as u32).expect("read");
    assert_eq!(r.data.as_ref(), &data[..]);
    assert_eq!(fs.open_spans(), 0);
    assert_eq!(fs.cluster.obs.borrow().spans.done_count(), 0);
    let doc = fs.export_chrome_trace();
    let parsed = json::parse(&doc).expect("empty export still parses");
    assert!(parsed.get("traceEvents").and_then(Json::as_array).is_some());
}
