//! Read-side NIC offload acceptance: sPIN gather reads collect a
//! stripe's chunks on the storage NIC and stream them back as one
//! validated flow; degraded stripes reconstruct on the NIC's EC engine
//! (the client never touches parity math); asynchronous readahead fills
//! run behind the triggering miss instead of inside it.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, ReadProtocol, SimCluster, StorageMode,
};
use nadfs_simnet::telemetry::phase;
use nadfs_simnet::Dur;
use nadfs_tests::SplitMix;
use nadfs_wire::RsScheme;

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix::new(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    v.truncate(len);
    v
}

/// Sum a per-node counter family (`nic.N.gather.reads` etc.) across the
/// cluster from one snapshot.
fn sum_counters(snap: &nadfs_simnet::MetricsSnapshot, suffix: &str) -> u64 {
    (0..16)
        .filter_map(|i| snap.counter(&format!("nic.{i}.gather.{suffix}")))
        .sum()
}

/// Normal offloaded reads: byte-identical to the CPU fan-out path, with
/// the stripe collected and streamed by the storage NIC (gather counters
/// move, per-chunk client fan-out does not).
#[test]
fn offloaded_reads_are_byte_identical_and_stream_from_the_nic() {
    let scheme = RsScheme::new(3, 2);
    let cluster = SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);
    fs.mkdir_p("/off").expect("mkdir");
    let h = fs
        .create_with_policy(
            "/off/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(21, 300_000);
    fs.append(&h, &data).expect("write");

    // Baseline: plain RDMA fan-out (cold cache).
    fs.drop_read_cache();
    let fanout = fs.read_at(&h, 0, data.len() as u32).expect("fanout read");
    assert_eq!(fanout.data.as_ref(), &data[..]);

    // Offloaded: one gather per storage node, streamed as a single flow.
    let before = fs.metrics_snapshot();
    fs.drop_read_cache();
    let off = h.clone().with_read_protocol(ReadProtocol::Offloaded);
    let r = fs.read_at(&off, 0, data.len() as u32).expect("gather read");
    assert_eq!(r.data.as_ref(), &data[..], "offloaded ≠ fan-out bytes");
    assert_eq!(r.checksum, fanout.checksum);
    assert!(!r.from_cache);
    assert_eq!(r.degraded_stripes, 0);

    let delta = fs.metrics_snapshot().delta(&before);
    assert!(
        delta.counter("client.0.read.offloaded_reads").unwrap_or(0) >= 1,
        "client must have issued gather reads"
    );
    assert!(
        sum_counters(&delta, "reads") >= 1,
        "a storage NIC must have coordinated a gather"
    );
    assert!(
        sum_counters(&delta, "bytes_streamed") >= data.len() as u64,
        "the whole range must stream through gather responders"
    );

    // The flow lands like any other read: cached for the next caller.
    let again = fs.read_at(&off, 0, data.len() as u32).expect("reread");
    assert!(again.from_cache, "gather reads populate the read cache");
}

/// Degraded offloaded reads: the gather coordinator fetches survivors
/// NIC-to-NIC and reconstructs on the firmware EC engine. The client's
/// own decode path is never invoked.
#[test]
fn offloaded_degraded_reads_reconstruct_on_the_nic_not_the_client() {
    let scheme = RsScheme::new(3, 2);
    let cluster = SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);
    fs.mkdir_p("/off").expect("mkdir");
    let h = fs
        .create_with_policy(
            "/off/g",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(22, 200_000);
    let w = fs.append(&h, &data).expect("write");

    let victim = fs
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fs.fail_storage_node(victim);
    // The write-through fill would serve this locally — force the wire.
    fs.drop_read_cache();

    let before = fs.metrics_snapshot();
    let off = h.clone().with_read_protocol(ReadProtocol::Offloaded);
    let r = fs.read_at(&off, 0, data.len() as u32).expect("degraded");
    assert_eq!(r.data.as_ref(), &data[..], "NIC reconstruction ≠ original");
    assert!(r.degraded_stripes > 0, "the read must report degradation");

    let delta = fs.metrics_snapshot().delta(&before);
    assert_eq!(
        delta
            .counter("client.0.read.reconstructed_stripes")
            .unwrap_or(0),
        0,
        "client-side decode must never run in the offloaded config"
    );
    assert!(
        delta
            .counter("client.0.read.offloaded_degraded_stripes")
            .unwrap_or(0)
            >= 1
    );
    assert!(
        sum_counters(&delta, "chunks_reconstructed") >= 1,
        "the NIC EC engine must have rebuilt the lost chunk"
    );
    assert!(
        sum_counters(&delta, "remote_fetches") >= 1,
        "survivors are fetched NIC-to-NIC, not via the client"
    );
}

/// Asynchronous readahead: once the sequential streak triggers a
/// readahead plan, the tail is split into a background fill whose span
/// ends *after* the triggering miss has already completed — the miss no
/// longer pays for bytes the caller didn't ask for.
#[test]
fn readahead_fills_complete_after_the_triggering_miss_returns() {
    let cluster = SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Spin));
    let mut fs = FsClient::new(cluster);
    fs.mkdir_p("/off").expect("mkdir");
    let h = fs.create("/off/seq", LayoutSpec::SINGLE).expect("create");
    const BLOCK: usize = 64 << 10;
    const BLOCKS: usize = 8;
    let data = payload(23, BLOCK * BLOCKS);
    // Block-sized appends: extent (and so read-piece) boundaries land at
    // block granularity, giving the readahead plan somewhere to split.
    for b in data.chunks(BLOCK) {
        fs.append(&h, b).expect("write");
    }
    fs.drop_read_cache();

    let mut hits = 0;
    for i in 0..BLOCKS {
        let off = (i * BLOCK) as u64;
        let r = fs.read_at(&h, off, BLOCK as u32).expect("read");
        assert_eq!(r.data.as_ref(), &data[i * BLOCK..(i + 1) * BLOCK]);
        hits += r.from_cache as u32;
    }
    // Let any still-in-flight background fill land before inspecting.
    let settle = fs.cluster.engine.now() + Dur::from_us(50_000);
    fs.cluster.engine.run_until(settle);
    assert_eq!(
        fs.open_spans(),
        0,
        "background fills must close their spans"
    );

    let snap = fs.metrics_snapshot();
    assert!(
        snap.counter("client.0.read.background_readaheads")
            .unwrap_or(0)
            >= 1,
        "the sequential streak must have split off a background fill"
    );

    // The fills made later reads free: at least the fill-covered blocks
    // came back from the cache (sub-µs) instead of re-missing.
    assert!(hits >= 3, "fill-covered blocks must hit the cache ({hits})");

    let obs = fs.cluster.obs.borrow();
    let fills: Vec<_> = obs
        .spans
        .done()
        .filter(|sp| sp.label.starts_with("readahead f"))
        .collect();
    assert!(!fills.is_empty(), "background readahead spans exist");
    assert!(fills.iter().all(|sp| sp.ok), "every fill completed");
    // Each fill pairs with the miss that spawned it: both spans are
    // marked READAHEAD at the same instant when the split happens
    // (parked reads also carry the mark, but at a different time). The
    // fill must fan out while its miss is still in flight — concurrent,
    // not serialized behind the miss's completion — and the miss's span
    // must end without the fill's reassembly/serve phases.
    for bg in &fills {
        let split_at = bg.mark_time(phase::READAHEAD).expect("fill marks split");
        let miss = obs
            .spans
            .done()
            .find(|sp| {
                sp.ok
                    && !sp.label.starts_with("readahead")
                    && sp.mark_time(phase::READAHEAD) == Some(split_at)
            })
            .expect("every fill has a triggering miss");
        let issued = bg
            .mark_time(phase::FANNED_OUT)
            .expect("the fill fanned out");
        assert!(
            issued < miss.end,
            "fill issued at {issued:?} only after its miss ended at {:?}",
            miss.end
        );
        assert!(
            !miss.has_mark(phase::REASSEMBLED) || miss.mark_time(phase::REASSEMBLED) < Some(bg.end),
            "the miss reassembled only the critical range, not the fill"
        );
    }
}
