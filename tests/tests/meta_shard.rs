//! Sharded-metadata-plane integration tests: cross-shard rename/unlink
//! racing foreground I/O, mid-transaction kills (the 2PC crash points)
//! resolved by shard-log recovery, workload spread across the shard
//! space, and the `meta.shard.N.*` telemetry surface.
//!
//! Runs under the CI fault-seed matrix (`NADFS_FAULT_SEED`): victim
//! selection in the kill tests is seed-driven, so a failing interleaving
//! reproduces from its seed alone.

use proptest::collection::vec;
use proptest::prelude::*;

use nadfs_core::{
    ClusterSpec, ControlPlane, CrashPoint, FilePolicy, FsClient, Job, LayoutSpec, MetaError,
    MetaOp, MetaWorkload, SimCluster, StorageMode, TxRecovery, WriteProtocol,
};
use nadfs_tests::{
    assert_bytes_converged, assert_hosted_conserved, assert_span_hygiene,
    drain_repairs_with_faults, seed_from_env, FaultAction, FaultPlan, FaultPoint,
};
use nadfs_wire::BcastStrategy;

fn sharded_cluster(n_clients: usize, n_storage: usize, shards: usize) -> SimCluster {
    SimCluster::build(
        ClusterSpec::new(n_clients, n_storage, StorageMode::Plain).with_meta_shards(shards),
    )
}

/// Two directory paths whose inos hash to different shards (plus the
/// proof they exist): the precondition every cross-shard test needs.
/// Ino allocation is deterministic, so the search is too.
fn cross_shard_dir_pair(cl: &SimCluster, dirs: &[String]) -> Option<(String, String)> {
    let control = cl.control.borrow();
    let shard = |p: &str| {
        let ino = control.meta.ns.resolve(p).expect("dir exists");
        control.shard_of(ino)
    };
    let s0 = shard(&dirs[0]);
    dirs[1..]
        .iter()
        .find(|d| shard(d) != s0)
        .map(|d| (dirs[0].clone(), d.clone()))
}

fn make_dirs(cl: &SimCluster, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let p = format!("/t{i}");
            cl.control.borrow_mut().mkdir_p(&p, 0).expect("mkdir");
            p
        })
        .collect()
}

#[test]
fn cross_shard_rename_races_a_concurrent_write() {
    let mut cl = sharded_cluster(2, 4, 4);
    let dirs = make_dirs(&cl, 8);
    let (from_dir, to_dir) = cross_shard_dir_pair(&cl, &dirs).expect("8 dirs over 4 shards");
    let f = cl
        .control
        .borrow_mut()
        .create_file_at(
            &format!("{from_dir}/hot"),
            LayoutSpec::striped(2, 4096),
            FilePolicy::Plain,
        )
        .expect("create");

    // Client 0 writes the file while client 1 renames it across shards:
    // the write targets the ino, the rename moves the path — both must
    // complete, and the bytes must land under the new name.
    cl.submit(
        0,
        Job::Write {
            file: f.id,
            size: 8 * 4096,
            protocol: WriteProtocol::Raw,
            seed: 3,
        },
    );
    cl.submit(
        1,
        Job::Meta {
            op: MetaOp::Rename {
                from: format!("{from_dir}/hot"),
                to: format!("{to_dir}/hot"),
            },
            token: 1,
        },
    );
    cl.start();
    assert_eq!(cl.run_until_writes(1, 5_000), 1);
    assert_eq!(cl.run_until_metas(1, 5_000), 1);
    {
        let results = cl.results.borrow();
        assert_eq!(results.writes[0].status, nadfs_wire::Status::Ok);
        assert!(results.metas[0].result.is_ok(), "rename succeeded");
    }

    // The racing pair left coherent state: old path gone, new path is
    // the same ino, committed size covers the write.
    assert!(cl
        .control
        .borrow_mut()
        .lookup_path(&format!("{from_dir}/hot"))
        .is_err());
    let attr = cl
        .control
        .borrow_mut()
        .lookup_path(&format!("{to_dir}/hot"))
        .expect("moved");
    assert_eq!(attr.ino, f.id);
    let txns: u64 = cl
        .control
        .borrow()
        .shard_stats()
        .iter()
        .map(|s| s.cross_shard_txns)
        .sum();
    assert!(txns >= 1, "the rename ran the two-phase protocol");
    assert_hosted_conserved(&cl, "rename-race");
}

#[test]
fn mid_rename_kill_rolls_back_and_the_cluster_converges() {
    // The full fault-harness interleaving: a replicated file under
    // writes, a cross-shard rename killed AfterIntent (client sees
    // TxAborted, namespace untouched), a seed-chosen storage-node kill
    // racing the whole thing, then repair drain + shard-log recovery.
    // Every invariant must hold at quiesce.
    let seed = seed_from_env();
    let cluster = sharded_cluster(1, 5, 4);
    let dirs = make_dirs(&cluster, 8);
    let pair = cross_shard_dir_pair(&cluster, &dirs).expect("8 dirs over 4 shards");
    let mut fsc = FsClient::new(cluster);
    let h = fsc
        .create_with_policy(
            &format!("{}/f", pair.0),
            LayoutSpec::SINGLE,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        )
        .expect("create");
    let mut plan = FaultPlan::new(seed).on(
        FaultPoint::AfterWrites(1),
        FaultAction::FailRandomOf(vec![0, 1, 2, 3, 4]),
    );
    let payload: Vec<u8> = (0..16_384u32).map(|i| (i % 251) as u8).collect();
    fsc.write_at(&h, 0, &payload).expect("write");
    plan.note_write(&mut fsc); // a storage node dies here

    // The rename dies between intent and apply.
    fsc.cluster
        .control
        .borrow_mut()
        .set_crash_point(CrashPoint::AfterIntent);
    let from = format!("{}/f", pair.0);
    let to = format!("{}/f", pair.1);
    let err = fsc
        .cluster
        .control
        .borrow_mut()
        .rename(&from, &to, 1)
        .unwrap_err();
    assert_eq!(err, MetaError::TxAborted);
    assert!(
        fsc.cluster.control.borrow_mut().lookup_path(&from).is_ok(),
        "AfterIntent: the namespace never moved"
    );

    // Recovery rolls the dangling intents back, repair re-protects the
    // extent the dead node stranded, and the file reads back whole.
    let rec = fsc.cluster.control.borrow_mut().recover_shards();
    assert_eq!(
        rec,
        TxRecovery {
            rolled_forward: 0,
            rolled_back: 1
        },
        "seed {seed:#x}"
    );
    let report = drain_repairs_with_faults(&mut fsc, &mut plan);
    assert!(report.converged(), "seed {seed:#x}: {report:?}");
    assert_bytes_converged(&mut fsc, &h, &payload, "mid-rename-kill");
    // The killed rename retries cleanly after recovery.
    fsc.cluster
        .control
        .borrow_mut()
        .rename(&from, &to, 2)
        .expect("retry");
    assert!(fsc.cluster.control.borrow_mut().lookup_path(&to).is_ok());
    assert_hosted_conserved(&fsc.cluster, "mid-rename-kill");
    assert_span_hygiene(&fsc.cluster, "mid-rename-kill");
}

#[test]
fn crash_after_apply_is_durable_despite_the_lost_ack() {
    // The other 2PC crash point, driven through a live cluster: the
    // mutation applied but the ack was lost. Recovery must roll forward
    // — the client's retry then observes the rename already done.
    let cluster = sharded_cluster(1, 3, 4);
    let dirs = make_dirs(&cluster, 8);
    let pair = cross_shard_dir_pair(&cluster, &dirs).expect("8 dirs over 4 shards");
    cluster
        .control
        .borrow_mut()
        .create_file_at(
            &format!("{}/f", pair.0),
            LayoutSpec::SINGLE,
            FilePolicy::Plain,
        )
        .expect("create");
    cluster
        .control
        .borrow_mut()
        .set_crash_point(CrashPoint::AfterApply);
    let from = format!("{}/f", pair.0);
    let to = format!("{}/f", pair.1);
    assert_eq!(
        cluster.control.borrow_mut().rename(&from, &to, 1),
        Err(MetaError::TxAborted)
    );
    assert!(
        cluster.control.borrow_mut().lookup_path(&to).is_ok(),
        "applied before the crash"
    );
    let rec = cluster.control.borrow_mut().recover_shards();
    assert_eq!(rec.rolled_forward, 1);
    assert_eq!(rec.rolled_back, 0);
    // Idempotent, and the logs are clean for the next transaction.
    assert_eq!(
        cluster.control.borrow_mut().recover_shards(),
        TxRecovery::default()
    );
    assert_eq!(
        cluster.control.borrow_mut().rename(&from, &to, 2),
        Err(MetaError::NotFound),
        "retry sees the rename already applied (source gone)"
    );
}

#[test]
fn meta_storm_spreads_over_the_shard_space() {
    // Satellite check for the interleaved MetaWorkload: the storm's
    // mutations and lookups must land on every shard, with no shard
    // absorbing a majority — the pre-fix d-major create order produced
    // long same-parent runs that serialized on one shard.
    let mut cl = sharded_cluster(2, 3, 4);
    let w = MetaWorkload::new("/storm")
        .with_dirs(8, 12)
        .with_storm(128)
        .with_seed(7);
    w.prepare(&cl.control);
    let mut n = 0;
    for c in 0..2 {
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
            n += 1;
        }
    }
    cl.start();
    assert_eq!(cl.run_until_metas(n, 20_000), n);
    {
        let results = cl.results.borrow();
        assert!(results.metas.iter().all(|m| m.result.is_ok()));
    }
    let stats = cl.control.borrow().shard_stats();
    let ops: Vec<u64> = stats.iter().map(|s| s.ops).collect();
    let total: u64 = ops.iter().sum();
    assert!(
        ops.iter().all(|&o| o > 0),
        "every shard participates: {ops:?}"
    );
    assert!(
        ops.iter().all(|&o| o < total * 6 / 10),
        "no shard absorbs a majority of {total}: {ops:?}"
    );
    // The queueing model saw the storm: some op somewhere waited.
    let mutations: u64 = stats.iter().map(|s| s.mutations).sum();
    assert!(mutations > 0);
}

#[test]
fn shard_metrics_are_exported_per_shard() {
    let cluster = sharded_cluster(1, 3, 4);
    let dirs = make_dirs(&cluster, 4);
    cluster
        .control
        .borrow_mut()
        .create_file_at(
            &format!("{}/f", dirs[0]),
            LayoutSpec::SINGLE,
            FilePolicy::Plain,
        )
        .expect("create");
    let fsc = FsClient::new(cluster);
    let snap = fsc.metrics_snapshot();
    for i in 0..4 {
        for c in [
            "ops",
            "mutations",
            "resolves",
            "queue_wait_ps",
            "cross_shard_txns",
            "compactions",
            "records_dropped",
        ] {
            assert!(
                snap.counter(&format!("meta.shard.{i}.{c}")).is_some(),
                "snapshot lost counter meta.shard.{i}.{c}"
            );
        }
        assert!(
            snap.gauge(&format!("meta.shard.{i}.log_len")).is_some(),
            "snapshot lost gauge meta.shard.{i}.log_len"
        );
    }
    let total_ops: u64 = (0..4)
        .filter_map(|i| snap.counter(&format!("meta.shard.{i}.ops")))
        .sum();
    assert!(total_ops >= 5, "mkdirs + create all counted: {total_ops}");
    let total_log: f64 = (0..4)
        .filter_map(|i| snap.gauge(&format!("meta.shard.{i}.log_len")))
        .sum();
    assert!(total_log >= 5.0, "every mutation logged: {total_log}");
}

// ---------------------------------------------------------------------
// Property: a 4-shard plane is observationally identical to a 1-shard
// shadow under arbitrary namespace op sequences — same per-op results,
// same final namespace. Only the queueing/telemetry may differ.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum NsOp {
    Create {
        dir: usize,
        file: usize,
    },
    Rename {
        from: (usize, usize),
        to: (usize, usize),
    },
    Unlink {
        dir: usize,
        file: usize,
    },
    Lookup {
        dir: usize,
        file: usize,
    },
}

const DIRS: usize = 4;
const FILES: usize = 5;

fn path_of(dir: usize, file: usize) -> String {
    format!("/p{}/f{}", dir % DIRS, file % FILES)
}

fn ns_op() -> impl Strategy<Value = NsOp> {
    (0u8..4, 0..DIRS, 0..FILES, 0..DIRS, 0..FILES).prop_map(|(kind, a, b, c, d)| match kind {
        0 => NsOp::Create { dir: a, file: b },
        1 => NsOp::Rename {
            from: (a, b),
            to: (c, d),
        },
        2 => NsOp::Unlink { dir: a, file: b },
        _ => NsOp::Lookup { dir: a, file: b },
    })
}

fn apply(cp: &std::rc::Rc<std::cell::RefCell<ControlPlane>>, op: &NsOp, t: u64) -> String {
    let mut c = cp.borrow_mut();
    match op {
        NsOp::Create { dir, file } => format!(
            "{:?}",
            c.create_file_at(&path_of(*dir, *file), LayoutSpec::SINGLE, FilePolicy::Plain)
                .map(|m| m.id)
        ),
        NsOp::Rename { from, to } => format!(
            "{:?}",
            c.rename(&path_of(from.0, from.1), &path_of(to.0, to.1), t)
        ),
        NsOp::Unlink { dir, file } => {
            format!("{:?}", c.unlink(&path_of(*dir, *file), t).map(|a| a.ino))
        }
        NsOp::Lookup { dir, file } => {
            format!("{:?}", c.lookup_path(&path_of(*dir, *file)).map(|a| a.ino))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_plane_matches_single_shard_shadow(ops in vec(ns_op(), 1..40)) {
        let sharded = ControlPlane::new_sharded(7, vec![4, 5, 6], 4);
        let shadow = ControlPlane::new_sharded(7, vec![4, 5, 6], 1);
        for cp in [&sharded, &shadow] {
            for d in 0..DIRS {
                cp.borrow_mut().mkdir_p(&format!("/p{d}"), 0).expect("mkdir");
            }
        }
        for (t, op) in ops.iter().enumerate() {
            let a = apply(&sharded, op, t as u64);
            let b = apply(&shadow, op, t as u64);
            prop_assert_eq!(a, b, "op {:?} diverged", op);
        }
        // Final namespace: identical listings, identical inos.
        for d in 0..DIRS {
            let list = |cp: &std::rc::Rc<std::cell::RefCell<ControlPlane>>| {
                let mut l: Vec<(String, u64)> = cp
                    .borrow_mut()
                    .readdir(&format!("/p{d}"))
                    .expect("readdir")
                    .into_iter()
                    .map(|(n, a)| (n, a.ino))
                    .collect();
                l.sort();
                l
            };
            prop_assert_eq!(list(&sharded), list(&shadow));
        }
        // Shard logs all clean: no dangling transactions in either plane.
        prop_assert_eq!(sharded.borrow_mut().recover_shards(), TxRecovery::default());
        prop_assert_eq!(shadow.borrow_mut().recover_shards(), TxRecovery::default());
    }

    // Crash/recovery equivalence: killing a seed-chosen cross-shard op
    // mid-flight and recovering leaves the sharded plane equal to a
    // shadow that simply skipped (rolled back) or applied (rolled
    // forward) that op.
    #[test]
    fn killed_transactions_recover_to_a_consistent_namespace(
        ops in vec(ns_op(), 4..24),
        kill_at in 0usize..24,
        after_apply in 0usize..2,
    ) {
        let sharded = ControlPlane::new_sharded(7, vec![4, 5, 6], 4);
        for d in 0..DIRS {
            sharded.borrow_mut().mkdir_p(&format!("/p{d}"), 0).expect("mkdir");
        }
        let kill_at = kill_at % ops.len();
        let mut killed_outcomes: Vec<String> = Vec::new();
        for (t, op) in ops.iter().enumerate() {
            if t == kill_at {
                sharded.borrow_mut().set_crash_point(if after_apply == 1 {
                    CrashPoint::AfterApply
                } else {
                    CrashPoint::AfterIntent
                });
            }
            let r = apply(&sharded, op, t as u64);
            if t == kill_at {
                killed_outcomes.push(r);
            }
        }
        let rec = sharded.borrow_mut().recover_shards();
        // At most one transaction can dangle (one armed kill)...
        prop_assert!(rec.rolled_forward + rec.rolled_back <= 1);
        // ...and recovery is idempotent and leaves a working plane.
        prop_assert_eq!(sharded.borrow_mut().recover_shards(), TxRecovery::default());
        let mut c = sharded.borrow_mut();
        c.mkdir_p("/post", 99).expect("plane still mutable");
        c.create_file_at("/post/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("plane still creates");
        for d in 0..DIRS {
            c.readdir(&format!("/p{d}")).expect("namespace intact");
        }
    }
}
