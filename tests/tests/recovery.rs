//! Node-recovery reconciliation: a recovered node must square its
//! physical contents with everything that changed while it was down —
//! shards re-homed by repair and files unlinked mid-outage leave stale
//! copies to garbage-collect, still-current shards are re-adopted as
//! live data, and repair tasks made obsolete by the recovery are
//! dropped. Before reconciliation existed, `mark_node_recovered` just
//! cleared the failed flag: the hosted-capacity gauges leaked the
//! re-homed bytes forever and the queue burned repair attempts on
//! extents that were healthy again.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, LayoutSpec, RepairTask, SimCluster, StorageMode,
};
use nadfs_tests::{assert_bytes_converged, assert_hosted_conserved, seed_from_env, SplitMix};
use nadfs_wire::{BcastStrategy, RsScheme};

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix::new(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    v.truncate(len);
    v
}

fn ec_client(n_storage: usize, scheme: RsScheme) -> (FsClient, nadfs_core::FileHandle, Vec<u8>) {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(
        1,
        n_storage,
        StorageMode::Spin,
    )));
    fsc.mkdir_p("/rec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/rec/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(seed_from_env(), 120_000);
    fsc.append(&h, &data).expect("write");
    (fsc, h, data)
}

/// The satellite-1 leak, end to end: repair re-homes shards away from a
/// dead node; when the node returns, its stale copies are
/// garbage-collected into the reclaim counters and the hosted gauges
/// still equal what the extent maps say. (Pre-fix, the node came back
/// with its gauges still counting the re-homed shards: a permanent
/// capacity-accounting leak.)
#[test]
fn recovery_reclaims_rehomed_shards_and_conserves_gauges() {
    let (mut fsc, h, data) = ec_client(6, RsScheme::new(3, 2));
    assert_hosted_conserved(&fsc.cluster, "baseline");

    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim_node = w.placement.data_chunks[0].node;
    let victim = fsc.cluster.storage_index(victim_node as usize);
    fsc.fail_storage_node(victim);
    let report = fsc.drain_repairs();
    assert!(report.converged(), "repair moved the shard: {report:?}");
    assert!(report.repaired >= 1);

    // Mid-outage: the re-homed copy is orphaned on the dead node, and
    // the gauges already reflect the *new* homes.
    let (oc, ob) = fsc.cluster.control.borrow().orphaned_on(victim_node);
    assert!(oc >= 1, "re-home left a stale copy on the dead node");
    assert!(ob > 0);
    assert_hosted_conserved(&fsc.cluster, "mid-outage");

    fsc.recover_storage_node(victim);
    let control = fsc.cluster.control.borrow();
    assert_eq!(
        control.orphaned_on(victim_node),
        (0, 0),
        "recovery consumed the orphan ledger"
    );
    drop(control);
    {
        let stats = fsc.cluster.storage_stats[victim].borrow();
        assert_eq!(stats.stale_chunks_reclaimed, oc, "orphans became reclaims");
        assert_eq!(stats.stale_bytes_reclaimed, ob);
    }
    assert_hosted_conserved(&fsc.cluster, "post-recovery");
    assert_bytes_converged(&mut fsc, &h, &data, "post-recovery");
}

/// Recovery before any repair ran: the extent is whole again, so its
/// queued task is dropped and the node's shards are re-adopted — no
/// bytes move, nothing is reclaimed, and reads go through the normal
/// non-degraded path.
#[test]
fn recovery_before_drain_drops_tasks_and_readopts_shards() {
    let (mut fsc, h, data) = ec_client(6, RsScheme::new(3, 2));
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim_node = w.placement.data_chunks[0].node;
    let victim = fsc.cluster.storage_index(victim_node as usize);
    fsc.fail_storage_node(victim);
    assert!(fsc.repair_backlog() >= 1);

    fsc.recover_storage_node(victim);
    assert_eq!(
        fsc.repair_backlog(),
        0,
        "obsolete tasks dropped at recovery"
    );
    {
        let control = fsc.cluster.control.borrow();
        let stats = control.repair_queue.stats;
        assert!(stats.dropped_on_recovery >= 1, "{stats:?}");
        assert!(stats.shards_readopted >= 1, "{stats:?}");
    }
    assert_eq!(
        fsc.cluster.storage_stats[victim]
            .borrow()
            .stale_chunks_reclaimed,
        0,
        "nothing was re-homed"
    );
    assert_hosted_conserved(&fsc.cluster, "transient failure");
    assert_bytes_converged(&mut fsc, &h, &data, "transient failure");
}

/// Files unlinked while their node is down leave stale shards behind;
/// recovery garbage-collects them too.
#[test]
fn unlink_during_outage_orphans_are_reclaimed_at_recovery() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Spin)));
    fsc.mkdir_p("/rec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/rec/gone",
            LayoutSpec::SINGLE,
            FilePolicy::Replicated {
                k: 2,
                strategy: BcastStrategy::Ring,
            },
        )
        .expect("create");
    let data = payload(seed_from_env() ^ 0x11, 40_000);
    fsc.append(&h, &data).expect("write");
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim_node = w.placement.replicas[0].node;
    let victim = fsc.cluster.storage_index(victim_node as usize);
    fsc.fail_storage_node(victim);

    let now = fsc.cluster.engine.now().as_ns() as u64;
    fsc.cluster
        .control
        .borrow_mut()
        .unlink("/rec/gone", now)
        .expect("unlink");
    let (oc, ob) = fsc.cluster.control.borrow().orphaned_on(victim_node);
    assert!(oc >= 1, "unlink orphaned the dead node's replica");
    assert_hosted_conserved(&fsc.cluster, "unlinked during outage");

    fsc.recover_storage_node(victim);
    {
        let stats = fsc.cluster.storage_stats[victim].borrow();
        assert_eq!(stats.stale_chunks_reclaimed, oc);
        assert_eq!(stats.stale_bytes_reclaimed, ob);
    }
    assert_eq!(
        fsc.cluster.control.borrow().orphaned_on(victim_node),
        (0, 0)
    );
    assert_hosted_conserved(&fsc.cluster, "post-recovery");
}

/// Partial recovery must NOT drop tasks whose extent still references a
/// *different* failed node: with RS(3,2) striped across 5 of 6 nodes,
/// failing two shard-holders and recovering one keeps the extent
/// degraded — its repair task stays queued.
#[test]
fn partial_recovery_keeps_tasks_for_still_failed_nodes() {
    let (mut fsc, h, data) = ec_client(6, RsScheme::new(3, 2));
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let a_node = w.placement.data_chunks[0].node;
    let b_node = w.placement.data_chunks[1].node;
    let a = fsc.cluster.storage_index(a_node as usize);
    let b = fsc.cluster.storage_index(b_node as usize);
    fsc.fail_storage_node(a);
    fsc.fail_storage_node(b);
    assert!(fsc.repair_backlog() >= 1);

    fsc.recover_storage_node(a);
    assert!(
        fsc.repair_backlog() >= 1,
        "extent still references failed node {b_node}; task must survive"
    );
    assert_eq!(
        fsc.cluster
            .control
            .borrow()
            .repair_queue
            .stats
            .dropped_on_recovery,
        0
    );

    fsc.recover_storage_node(b);
    assert_eq!(fsc.repair_backlog(), 0, "full recovery empties the queue");
    assert!(
        fsc.cluster
            .control
            .borrow()
            .repair_queue
            .stats
            .dropped_on_recovery
            >= 1
    );
    assert_bytes_converged(&mut fsc, &h, &data, "after rolling recovery");
}

/// Failure-time enqueue order is part of a seeded run's identity: tasks
/// come out sorted by (file, record), not in hash-map iteration order.
/// (Found by the churn harness: two same-seed runs diverged because the
/// repair queue — and every placement decision downstream of it — was
/// ordered by `HashMap` iteration.)
#[test]
fn node_failure_enqueues_repairs_in_sorted_order() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Spin)));
    fsc.mkdir_p("/rec").expect("mkdir");
    let mut handles = Vec::new();
    for i in 0..12 {
        let h = fsc
            .create_with_policy(
                &format!("/rec/o{i}"),
                LayoutSpec::SINGLE,
                FilePolicy::Replicated {
                    k: 2,
                    strategy: BcastStrategy::Ring,
                },
            )
            .expect("create");
        fsc.append(&h, &payload(i as u64, 4096)).expect("write");
        handles.push(h);
    }
    fsc.fail_storage_node(0);
    let mut control = fsc.cluster.control.borrow_mut();
    let mut tasks: Vec<RepairTask> = Vec::new();
    while let Some(t) = control.pop_repair() {
        tasks.push(t);
    }
    assert!(!tasks.is_empty(), "some replica lived on node 0");
    let mut sorted = tasks.clone();
    sorted.sort_unstable_by_key(|t| (t.file, t.rec));
    assert_eq!(tasks, sorted, "repair queue order must be deterministic");
}
