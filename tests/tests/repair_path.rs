//! The background repair pipeline under deterministic fault injection:
//! node kills scripted mid-write, between commit and read, and during
//! repair itself, with every random choice drawn from a fixed seed
//! (`NADFS_FAULT_SEED` in CI's matrix). After every drain the acceptance
//! bar is the same: affected extents resolve through the *normal* path
//! (no degraded reconstruction) and read back byte-identical.

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, FsError, LayoutSpec, RepairOutcome, SimCluster, StorageMode,
};
use nadfs_tests::{
    assert_bytes_converged, assert_hosted_conserved, drain_repairs_with_faults, seed_from_env,
    write_then_fail_midway, FaultAction, FaultPlan, FaultPoint, SplitMix,
};
use nadfs_wire::{BcastStrategy, RsScheme, Status};

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix::new(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    v.truncate(len);
    v
}

fn ec_client(n_storage: usize, scheme: RsScheme) -> (FsClient, nadfs_core::FileHandle, Vec<u8>) {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(
        1,
        n_storage,
        StorageMode::Spin,
    )));
    fsc.mkdir_p("/ec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/ec/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(seed_from_env(), 150_000);
    fsc.append(&h, &data).expect("write");
    (fsc, h, data)
}

/// Tentpole acceptance: fail a data-chunk node, drain the queue, and the
/// extent resolves through the normal (non-degraded) path with
/// byte-identical data — while the failed node is still down.
#[test]
fn ec_repair_rehomes_failed_shard_and_restores_direct_reads() {
    let (mut fsc, h, data) = ec_client(6, RsScheme::new(3, 2));
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim_node = w.placement.data_chunks[0].node;
    let victim = fsc.cluster.storage_index(victim_node as usize);
    fsc.fail_storage_node(victim);
    assert_eq!(fsc.repair_backlog(), 1, "failure enqueued the extent");
    let gen_before = fsc.cluster.control.borrow().extent_generation(h.id());

    let report = fsc.drain_repairs();
    assert!(report.converged(), "no task gave up: {report:?}");
    assert_eq!(report.repaired, 1);
    assert_eq!(fsc.repair_backlog(), 0, "queue drained");
    assert!(
        matches!(
            report.outcomes[0].outcome,
            RepairOutcome::Rebuilt { ref shards } if shards == &vec![0]
        ),
        "the failed data shard was rebuilt: {:?}",
        report.outcomes[0].outcome
    );

    // The node is STILL failed, yet the read is direct and exact, and
    // the hosted-capacity gauges track the re-homed placement.
    assert_bytes_converged(&mut fsc, &h, &data, "mid-outage after repair");
    assert_hosted_conserved(&fsc.cluster, "mid-outage after repair");

    // The extent-map update committed: generation bumped, spare hosting.
    let gen_after = fsc.cluster.control.borrow().extent_generation(h.id());
    assert!(gen_after > gen_before, "repair commit bumps the generation");
    let hosted: u64 = fsc
        .cluster
        .storage_stats
        .iter()
        .map(|s| s.borrow().repair_chunks_hosted)
        .sum();
    assert_eq!(hosted, 1, "exactly one spare placement counted");
    assert!(
        report.bytes_moved >= 4 * w.placement.chunk_len as u64,
        "repair moved k fetches + 1 write over the data path"
    );
}

/// Parity shards are rebuilt too — proven by surviving a *second* wave of
/// failures that forces reconstruction through the repaired parity.
#[test]
fn repaired_parity_carries_a_second_failure_wave() {
    let (mut fsc, h, data) = ec_client(6, RsScheme::new(3, 2));
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let parity_node = w.placement.parities[0].node;
    let parity_idx = fsc.cluster.storage_index(parity_node as usize);
    fsc.fail_storage_node(parity_idx);
    let report = fsc.drain_repairs();
    assert!(report.converged());
    assert_eq!(report.repaired, 1);
    let expect_slot = 3; // k=3 data shards, then parity 0 = shard 3
    assert!(matches!(
        &report.outcomes[0].outcome,
        RepairOutcome::Rebuilt { shards } if shards == &vec![expect_slot]
    ));
    // Now kill two DATA nodes: recovery needs k=3 survivors, which only
    // exist if the re-homed parity holds correct bytes.
    for c in &w.placement.data_chunks[..2] {
        let idx = fsc.cluster.storage_index(c.node as usize);
        fsc.fail_storage_node(idx);
    }
    let r = fsc.read_at(&h, 0, data.len() as u32).expect("read");
    assert_eq!(r.data.as_ref(), &data[..], "rebuilt parity is correct");
    assert!(r.degraded_stripes > 0, "this read reconstructs");
}

/// Replicated extents re-clone to a spare; the clone then survives the
/// loss of every original replica.
#[test]
fn replica_clone_survives_loss_of_all_original_replicas() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Spin)));
    fsc.mkdir_p("/r").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/r/f",
            LayoutSpec::SINGLE,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        )
        .expect("create");
    let data = payload(seed_from_env() ^ 0x55, 120_000);
    let w = fsc.append(&h, &data).expect("write");
    let replica_idx: Vec<usize> = w
        .placement
        .replicas
        .iter()
        .map(|c| fsc.cluster.storage_index(c.node as usize))
        .collect();
    fsc.fail_storage_node(replica_idx[0]);
    let report = fsc.drain_repairs();
    assert!(report.converged());
    assert_eq!(report.repaired, 1);
    assert!(matches!(
        &report.outcomes[0].outcome,
        RepairOutcome::Cloned { replicas } if replicas == &vec![0]
    ));
    // Kill the remaining original replicas: only the spare clone serves.
    fsc.fail_storage_node(replica_idx[1]);
    fsc.fail_storage_node(replica_idx[2]);
    let r = fsc.read_at(&h, 0, data.len() as u32).expect("read");
    assert_eq!(r.data.as_ref(), &data[..], "spare clone is byte-identical");
    assert_eq!(r.degraded_stripes, 0, "replica reads are never degraded");
}

/// A degraded-read hit moves its extent to the queue front: the first
/// repair the drain executes is the extent the client just paid for.
#[test]
fn degraded_read_promotes_its_extent_ahead_of_the_scan_order() {
    let scheme = RsScheme::new(3, 2);
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin)));
    fsc.mkdir_p("/ec").expect("mkdir");
    let mut handles = Vec::new();
    let mut blobs = Vec::new();
    for i in 0..2 {
        let h = fsc
            .create_with_policy(
                &format!("/ec/f{i}"),
                LayoutSpec::SINGLE,
                FilePolicy::ErasureCoded { scheme },
            )
            .expect("create");
        let data = payload(1000 + i as u64, 60_000);
        fsc.append(&h, &data).expect("write");
        handles.push(h);
        blobs.push(data);
    }
    // Find a storage node hosting a data chunk of BOTH files.
    let writes = fsc.cluster.results.borrow().writes.clone();
    let shared: u32 = writes[0]
        .placement
        .data_chunks
        .iter()
        .map(|c| c.node)
        .find(|n| writes[1].placement.data_chunks.iter().any(|c| c.node == *n))
        .expect("rotated homes overlap");
    fsc.fail_storage_node(fsc.cluster.storage_index(shared as usize));
    // The write-through fill would serve the read locally — drop it so the
    // read actually goes degraded and promotes its extent.
    fsc.drop_read_cache();
    assert_eq!(fsc.repair_backlog(), 2, "both files' extents queued");
    // Scan order queued file 0 first; a degraded read of file 1 jumps it.
    let r = fsc
        .read_at(&handles[1], 0, blobs[1].len() as u32)
        .expect("degraded read");
    assert!(r.degraded_stripes > 0, "this read was degraded");
    let front = fsc.cluster.control.borrow().repair_queue.peek().unwrap();
    assert_eq!(front.file, handles[1].id(), "promoted to the front");

    let report = fsc.drain_repairs();
    assert!(report.converged());
    assert_eq!(
        report.outcomes[0].task.file,
        handles[1].id(),
        "the promoted extent repaired first"
    );
    // Convergence: every affected extent now reads direct and exact.
    for (h, data) in handles.iter().zip(&blobs) {
        let r = fsc.read_at(h, 0, data.len() as u32).expect("read");
        assert_eq!(r.degraded_stripes, 0);
        assert_eq!(r.data.as_ref(), &data[..]);
    }
}

/// Mid-write kill: the node dies while the write's packets are in
/// flight. The commit then references a failed node, the extent reaches
/// the queue, and the drain restores a fully protected, byte-identical
/// extent.
#[test]
fn mid_write_node_kill_enqueues_and_repairs_on_commit() {
    let scheme = RsScheme::new(3, 2);
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin)));
    fsc.mkdir_p("/ec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/ec/mid",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    // First a small probe write to learn the placement rotation: the
    // next stripe reuses the same node set.
    let probe = fsc.append(&h, &payload(3, 3000)).expect("probe");
    let victim_node = probe.placement.data_chunks[1].node;
    let victim = fsc.cluster.storage_index(victim_node as usize);
    let data = payload(seed_from_env() ^ 0xBEEF, 200_000);
    // Kill the node 10 simulated µs into the write — long before the
    // ~200 KB stripe can finish landing.
    let w = write_then_fail_midway(&mut fsc, &h, 3000, &data, victim, 10);
    assert_eq!(w.status, Status::Ok, "the in-flight write still lands");
    assert!(
        fsc.repair_backlog() >= 1,
        "commit-after-failure queued the racing extent"
    );
    let report = fsc.drain_repairs();
    assert!(report.converged(), "{report:?}");
    assert_eq!(fsc.repair_backlog(), 0);
    let r = fsc.read_at(&h, 3000, data.len() as u32).expect("read");
    assert_eq!(r.degraded_stripes, 0, "non-degraded after drain");
    assert_eq!(r.data.as_ref(), &data[..]);
}

/// Kill between commit and read (scripted via FaultPlan): the first read
/// is degraded (and promotes), the drain re-protects, the re-read is
/// direct.
#[test]
fn node_kill_between_commit_and_read_converges() {
    let (mut fsc, h, data) = ec_client(6, RsScheme::new(3, 2));
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let candidates: Vec<usize> = w
        .placement
        .data_chunks
        .iter()
        .map(|c| fsc.cluster.storage_index(c.node as usize))
        .collect();
    let mut plan = FaultPlan::new(seed_from_env()).on(
        FaultPoint::AfterWrites(1),
        FaultAction::FailRandomOf(candidates),
    );
    plan.note_write(&mut fsc); // the (already completed) write fires it
    assert_eq!(plan.log.len(), 1, "the scripted kill fired");

    // Drop the write-through fill: this test exercises the wire path.
    fsc.drop_read_cache();
    let r1 = fsc.read_at(&h, 0, data.len() as u32).expect("read 1");
    assert!(r1.degraded_stripes > 0, "between commit and read: degraded");
    assert_eq!(r1.data.as_ref(), &data[..]);

    let report = drain_repairs_with_faults(&mut fsc, &mut plan);
    assert!(report.converged());
    assert!(report.repaired >= 1);

    let r2 = fsc.read_at(&h, 0, data.len() as u32).expect("read 2");
    assert_eq!(r2.degraded_stripes, 0, "converged to the normal path");
    assert_eq!(r2.data.as_ref(), &data[..]);
}

/// A node dies DURING the drain (after the first repair task): the newly
/// affected extents join the queue mid-drain and the pipeline still
/// converges — every extent direct and byte-identical at the end.
#[test]
fn node_kill_during_repair_still_converges() {
    let scheme = RsScheme::new(2, 1);
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin)));
    fsc.mkdir_p("/ec").expect("mkdir");
    let mut handles = Vec::new();
    let mut blobs = Vec::new();
    for i in 0..3 {
        let h = fsc
            .create_with_policy(
                &format!("/ec/f{i}"),
                LayoutSpec::SINGLE,
                FilePolicy::ErasureCoded { scheme },
            )
            .expect("create");
        let data = payload(7000 + i as u64, 40_000);
        fsc.append(&h, &data).expect("write");
        handles.push(h);
        blobs.push(data);
    }
    let writes = fsc.cluster.results.borrow().writes.clone();
    // First kill: the node holding file 0's first data chunk.
    let first = fsc
        .cluster
        .storage_index(writes[0].placement.data_chunks[0].node as usize);
    // Scripted second kill after the first repair completes: a seed-
    // chosen node from file 2's stripe (excluding the first victim).
    let cands: Vec<usize> = writes[2]
        .placement
        .data_chunks
        .iter()
        .chain(&writes[2].placement.parities)
        .map(|c| fsc.cluster.storage_index(c.node as usize))
        .filter(|&i| i != first)
        .collect();
    let mut plan = FaultPlan::new(seed_from_env()).on(
        FaultPoint::AfterRepairs(1),
        FaultAction::FailRandomOf(cands),
    );
    fsc.fail_storage_node(first);
    let backlog_before = fsc.repair_backlog();
    assert!(backlog_before >= 1);

    let report = drain_repairs_with_faults(&mut fsc, &mut plan);
    assert!(report.converged(), "{report:?}");
    assert!(
        plan.log.iter().any(|l| l.contains("AfterRepairs(1)")),
        "the mid-drain kill fired: {:?}",
        plan.log
    );
    assert_eq!(
        fsc.repair_backlog(),
        0,
        "queue empty despite mid-drain kill"
    );
    for (h, data) in handles.iter().zip(&blobs) {
        let r = fsc.read_at(h, 0, data.len() as u32).expect("read");
        assert_eq!(r.degraded_stripes, 0, "every extent direct after drain");
        assert_eq!(r.data.as_ref(), &data[..]);
    }
}

/// Double failure beyond m: reads and repairs surface typed errors — no
/// panic, no garbage bytes, and the queue still drains (the lost extent
/// is reported unrepairable, not retried forever).
#[test]
fn double_failure_beyond_m_is_typed_not_panic() {
    let scheme = RsScheme::new(2, 1);
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 5, StorageMode::Spin)));
    fsc.mkdir_p("/ec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/ec/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(11, 50_000);
    let w = fsc.append(&h, &data).expect("write");
    // Kill two data nodes: 0 survivors of k=2 data + 1 parity < k... no:
    // 1 parity survives, so k-1 survivors < k ⇒ unreadable and
    // unrepairable.
    for c in &w.placement.data_chunks {
        fsc.fail_storage_node(fsc.cluster.storage_index(c.node as usize));
    }
    // Drop the write-through fill: a cache hit would mask the typed failure.
    fsc.drop_read_cache();
    let err = fsc.read_at(&h, 0, data.len() as u32).unwrap_err();
    assert_eq!(err, FsError::Io(Status::Rejected), "typed read failure");

    let report = fsc.drain_repairs();
    assert_eq!(fsc.repair_backlog(), 0, "queue drained, no livelock");
    assert!(report.unrepairable >= 1, "typed unrepairable outcome");
    assert_eq!(report.repaired, 0);
    assert!(report
        .outcomes
        .iter()
        .all(|o| !matches!(o.outcome, RepairOutcome::Rebuilt { .. })));
}

/// Capability expiry racing the degraded path: with the client's read
/// capabilities expired, a degraded read is rejected with a typed
/// AuthFailed (on the NIC validation path) and the repair pipeline
/// aborts typed — retried up to its budget, then reported, never
/// panicking or returning partial data.
#[test]
fn expired_read_capability_degraded_read_and_repair_are_typed() {
    let scheme = RsScheme::new(3, 2);
    let spec = ClusterSpec::new(1, 6, StorageMode::Spin);
    let cluster = SimCluster::build_with(spec, |app| {
        app.read_cap_expires_at_ns = 1; // reads expired; writes valid
    });
    let mut fsc = FsClient::new(cluster);
    fsc.mkdir_p("/sec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/sec/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(13, 90_000);
    let w = fsc.append(&h, &data).expect("write lands, caps valid");
    let victim = fsc
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fsc.fail_storage_node(victim);
    // Drop the write-through fill: a cache hit would never present the caps.
    fsc.drop_read_cache();
    // Degraded read: k survivor fetches all NACK on the NIC.
    let err = fsc.read_at(&h, 0, data.len() as u32).unwrap_err();
    assert_eq!(err, FsError::Io(Status::AuthFailed), "typed, not partial");
    // Repair needs the same fetches: typed aborts, bounded retries.
    let report = fsc.drain_repairs();
    assert!(report.aborted_attempts >= 1);
    assert!(report.gave_up >= 1, "attempt budget exhausted, reported");
    assert!(!report.converged());
    assert!(report
        .outcomes
        .iter()
        .all(|o| matches!(o.outcome, RepairOutcome::Aborted(Status::AuthFailed))));
    assert_eq!(fsc.repair_backlog(), 0, "no livelock even when failing");
}

/// A recovered node empties the queue without moving bytes: recovery
/// reconciliation drops the now-obsolete task at `mark_node_recovered`
/// time, so the subsequent drain is a no-op rather than a pass of
/// already-healthy probes.
#[test]
fn recovery_before_drain_empties_the_queue() {
    let (mut fsc, h, data) = ec_client(6, RsScheme::new(3, 2));
    let w = fsc.cluster.results.borrow().writes[0].clone();
    let victim = fsc
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fsc.fail_storage_node(victim);
    assert_eq!(fsc.repair_backlog(), 1);
    fsc.recover_storage_node(victim);
    assert_eq!(fsc.repair_backlog(), 0, "task dropped at recovery");
    assert!(
        fsc.cluster
            .control
            .borrow()
            .repair_queue
            .stats
            .dropped_on_recovery
            >= 1
    );
    let report = fsc.drain_repairs();
    assert!(report.converged());
    assert_eq!(report.already_healthy, 0, "nothing left to probe");
    assert_eq!(report.repaired, 0);
    assert_eq!(report.bytes_moved, 0);
    assert_bytes_converged(&mut fsc, &h, &data, "transient failure");
}

/// The whole scripted scenario is a pure function of its seed: two runs
/// under the same seed produce identical fault logs and repair outcome
/// sequences.
#[test]
fn fault_plan_is_deterministic_per_seed() {
    let run = |seed: u64| -> (Vec<String>, Vec<(u64, String)>) {
        let scheme = RsScheme::new(3, 2);
        let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin)));
        fsc.mkdir_p("/d").expect("mkdir");
        let h = fsc
            .create_with_policy(
                "/d/f",
                LayoutSpec::SINGLE,
                FilePolicy::ErasureCoded { scheme },
            )
            .expect("create");
        let data = payload(seed, 80_000);
        let w = fsc.append(&h, &data).expect("write");
        let cands: Vec<usize> = w
            .placement
            .data_chunks
            .iter()
            .chain(&w.placement.parities)
            .map(|c| fsc.cluster.storage_index(c.node as usize))
            .collect();
        let mut plan =
            FaultPlan::new(seed).on(FaultPoint::AfterWrites(1), FaultAction::FailRandomOf(cands));
        plan.note_write(&mut fsc);
        let report = drain_repairs_with_faults(&mut fsc, &mut plan);
        let outcomes = report
            .outcomes
            .iter()
            .map(|o| (o.task.file, format!("{:?}", o.outcome)))
            .collect();
        let r = fsc.read_at(&h, 0, data.len() as u32).expect("read");
        assert_eq!(r.data.as_ref(), &data[..]);
        assert_eq!(r.degraded_stripes, 0);
        (plan.log, outcomes)
    };
    let seed = seed_from_env();
    let (log_a, out_a) = run(seed);
    let (log_b, out_b) = run(seed);
    assert_eq!(log_a, log_b, "same seed ⇒ same fault schedule");
    assert_eq!(out_a, out_b, "same seed ⇒ same repair outcomes");
    assert!(!log_a.is_empty());
}

/// Repair traffic rides the simulated fabric like any other data-path
/// traffic: the drain measurably moves packets between NICs, and the
/// firmware-EC storage mode repairs just like the sPIN mode.
#[test]
fn repair_traffic_rides_the_fabric_in_firmware_ec_mode() {
    let scheme = RsScheme::new(3, 2);
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(
        1,
        6,
        StorageMode::FirmwareEc,
    )));
    fsc.mkdir_p("/ec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/ec/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(17, 120_000);
    let w = fsc.append(&h, &data).expect("write");
    let victim = fsc
        .cluster
        .storage_index(w.placement.data_chunks[1].node as usize);
    fsc.fail_storage_node(victim);
    let tx_before: u64 = fsc
        .cluster
        .fabric_stats
        .borrow()
        .per_node
        .iter()
        .map(|n| n.tx_bytes)
        .sum();
    let report = fsc.drain_repairs();
    assert!(report.converged());
    assert_eq!(report.repaired, 1);
    let tx_after: u64 = fsc
        .cluster
        .fabric_stats
        .borrow()
        .per_node
        .iter()
        .map(|n| n.tx_bytes)
        .sum();
    assert!(
        tx_after - tx_before >= report.bytes_moved,
        "the shards crossed the simulated NICs ({} fabric bytes for {} repair bytes)",
        tx_after - tx_before,
        report.bytes_moved
    );
    let r = fsc.read_at(&h, 0, data.len() as u32).expect("read");
    assert_eq!(r.degraded_stripes, 0);
    assert_eq!(r.data.as_ref(), &data[..]);
}
