//! Shape assertions: the qualitative results the paper claims must hold in
//! the simulation (who wins, where, by roughly what factor). These guard
//! the calibration against regressions.

use nadfs_core::{
    replication_latency_us, write_latency_us, CostModel, FilePolicy, ReplStrategy, WriteProtocol,
};

#[test]
fn fig6_protocol_ordering_small_writes() {
    let cost = CostModel::paper();
    let size = 4 << 10;
    let raw = write_latency_us(WriteProtocol::Raw, FilePolicy::Plain, size, &cost, 3);
    let spin = write_latency_us(WriteProtocol::Spin, FilePolicy::Plain, size, &cost, 3);
    let rpc = write_latency_us(WriteProtocol::Rpc, FilePolicy::Plain, size, &cost, 3);
    let rr = write_latency_us(WriteProtocol::RpcRdma, FilePolicy::Plain, size, &cost, 3);
    assert!(raw < spin, "raw is the speed-of-light baseline");
    assert!(spin < rpc, "NIC validation beats CPU validation");
    assert!(rpc < rr, "extra round trip hurts RPC+RDMA at small sizes");
    // sPIN overhead over raw is bounded (paper: up to ~27%; we accept <60%
    // to keep the guard robust across cost-model tweaks).
    assert!(spin / raw < 1.6, "spin {spin} vs raw {raw}");
}

#[test]
fn fig6_spin_approaches_raw_for_large_writes() {
    let cost = CostModel::paper();
    let size = 1 << 20;
    let raw = write_latency_us(WriteProtocol::Raw, FilePolicy::Plain, size, &cost, 3);
    let spin = write_latency_us(WriteProtocol::Spin, FilePolicy::Plain, size, &cost, 3);
    let rpc = write_latency_us(WriteProtocol::Rpc, FilePolicy::Plain, size, &cost, 3);
    assert!(
        spin / raw < 1.15,
        "per-request validation amortizes: {spin} vs {raw}"
    );
    assert!(
        rpc / raw > 1.3,
        "buffered RPC stays well behind raw: {rpc} vs {raw}"
    );
}

#[test]
fn fig9_rdma_flat_wins_small_spin_wins_large() {
    let cost = CostModel::paper();
    let k = 2;
    let flat_small = replication_latency_us(ReplStrategy::RdmaFlat, k, 4 << 10, &cost);
    let spin_small = replication_latency_us(ReplStrategy::SpinRing, k, 4 << 10, &cost);
    assert!(
        flat_small < spin_small,
        "paper: RDMA-Flat fastest for small writes ({flat_small} vs {spin_small})"
    );
    let flat_large = replication_latency_us(ReplStrategy::RdmaFlat, k, 1 << 20, &cost);
    let spin_large = replication_latency_us(ReplStrategy::SpinRing, k, 1 << 20, &cost);
    assert!(
        spin_large < flat_large,
        "paper: injection cost flips the ordering for large writes"
    );
    assert!(
        flat_large / spin_large > 1.4,
        "paper: up to 2x for k=2 (measured {:.2}x)",
        flat_large / spin_large
    );
}

#[test]
fn fig9_k4_spin_beats_everything_for_large_writes() {
    let cost = CostModel::paper();
    let k = 4;
    let size = 1 << 20;
    let spin = replication_latency_us(ReplStrategy::SpinRing, k, size, &cost);
    for other in [
        ReplStrategy::CpuRing,
        ReplStrategy::CpuPbt,
        ReplStrategy::RdmaFlat,
        ReplStrategy::HyperLoop,
    ] {
        let l = replication_latency_us(other, k, size, &cost);
        assert!(
            spin < l,
            "sPIN-Ring must beat {other:?} at 1MiB k=4: {spin} vs {l}"
        );
    }
}

#[test]
fn fig10_pbt_beats_ring_for_small_writes_at_large_k() {
    let cost = CostModel::paper();
    let size = 4 << 10;
    let ring = replication_latency_us(ReplStrategy::SpinRing, 8, size, &cost);
    let pbt = replication_latency_us(ReplStrategy::SpinPbt, 8, size, &cost);
    assert!(
        pbt < ring,
        "log-depth tree beats the chain at k=8: pbt {pbt} vs ring {ring}"
    );
}

#[test]
fn fig10_flat_scales_linearly_with_k_for_large_writes() {
    let cost = CostModel::paper();
    let size = 512 << 10;
    let k2 = replication_latency_us(ReplStrategy::RdmaFlat, 2, size, &cost);
    let k8 = replication_latency_us(ReplStrategy::RdmaFlat, 8, size, &cost);
    let ratio = k8 / k2;
    assert!(
        (3.0..=5.0).contains(&ratio),
        "client injection dominates: expected ~4x from k=2 to k=8, got {ratio:.2}x"
    );
    // sPIN is much less sensitive to k (paper §V-B-3).
    let s2 = replication_latency_us(ReplStrategy::SpinRing, 2, size, &cost);
    let s8 = replication_latency_us(ReplStrategy::SpinRing, 8, size, &cost);
    assert!(s8 / s2 < 2.0, "sPIN-Ring k sensitivity: {:.2}x", s8 / s2);
}
