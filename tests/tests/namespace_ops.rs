//! Integration tests for the metadata subsystem driven through the
//! simulated cluster: directory operations end-to-end, client-cache hit
//! behavior (measurably fewer control-plane round-trips), cross-client
//! invalidation callbacks, striped write placement, and typed-miss
//! propagation as failed jobs.

use nadfs_core::{
    ClusterSpec, FilePolicy, Job, LayoutSpec, MetaError, MetaOp, MetaOpKind, MetaWorkload,
    SimCluster, StorageMode, WriteProtocol,
};

fn cluster(n_clients: usize, n_storage: usize) -> SimCluster {
    SimCluster::build(ClusterSpec::new(n_clients, n_storage, StorageMode::Plain))
}

fn meta_job(op: MetaOp, token: u64) -> Job {
    Job::Meta { op, token }
}

#[test]
fn mkdir_create_lookup_through_the_cluster() {
    let mut cl = cluster(1, 3);
    cl.submit(
        0,
        meta_job(
            MetaOp::Mkdir {
                path: "/proj".into(),
            },
            1,
        ),
    );
    cl.submit(
        0,
        meta_job(
            MetaOp::Create {
                path: "/proj/data".into(),
                spec: LayoutSpec::striped(3, 4096),
            },
            2,
        ),
    );
    cl.submit(
        0,
        meta_job(
            MetaOp::Lookup {
                path: "/proj/data".into(),
            },
            3,
        ),
    );
    cl.start();
    let done = cl.run_until_metas(3, 1_000);
    assert_eq!(done, 3, "all metadata ops complete");

    let results = cl.results.borrow();
    assert!(results.metas.iter().all(|m| m.result.is_ok()));
    // The create filled the cache, so the lookup is a local hit.
    let lookup = results
        .metas
        .iter()
        .find(|m| m.op == MetaOpKind::Lookup)
        .expect("lookup result");
    assert!(lookup.cache_hit, "lookup after create hits the cache");
    drop(results);

    // The namespace agrees with what the client did.
    let attr = cl
        .control
        .borrow_mut()
        .lookup_path("/proj/data")
        .expect("file exists");
    let list = cl.control.borrow_mut().readdir("/proj").expect("readdir");
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].0, "data");
    assert_eq!(list[0].1.ino, attr.ino);
}

#[test]
fn cache_reduces_control_round_trips_measurably() {
    // Two identical single-client clusters run the same skewed stat
    // storm; one with the client cache disabled. The cached run must do
    // measurably fewer control-plane lookups.
    let run = |cache_enabled: bool| -> (u64, u64, u64) {
        let spec = ClusterSpec::new(1, 2, StorageMode::Plain);
        let mut cl = SimCluster::build_with(spec, |app| app.cache_enabled = cache_enabled);
        let w = MetaWorkload::new("/storm")
            .with_dirs(2, 8)
            .with_storm(128)
            .with_seed(42);
        w.prepare(&cl.control);
        let jobs = w.jobs_for_client(0);
        let n = jobs.len();
        for j in jobs {
            cl.submit(0, j);
        }
        cl.start();
        let done = cl.run_until_metas(n, 5_000);
        assert_eq!(done, n, "storm completes");
        let lookups = cl.control.borrow().meta.stats.lookups;
        let hits = cl.client_caches[0].borrow().stats.hits;
        let total = cl.control.borrow().meta.stats.total();
        (lookups, hits, total)
    };

    let (cold_lookups, cold_hits, cold_total) = run(false);
    let (warm_lookups, warm_hits, warm_total) = run(true);

    assert_eq!(cold_hits, 0, "disabled cache never hits");
    assert_eq!(cold_lookups, 128, "every stat round-trips uncached");
    assert!(
        warm_lookups < cold_lookups / 4,
        "cache absorbs the hot set: {warm_lookups} vs {cold_lookups} round-trips"
    );
    assert!(warm_hits > 96, "most stats hit the cache: {warm_hits}");
    assert!(
        warm_total < cold_total,
        "total control traffic shrinks: {warm_total} vs {cold_total}"
    );
}

#[test]
fn cross_client_mutation_invalidates_cached_entries() {
    let mut cl = cluster(2, 2);
    cl.control.borrow_mut().mkdir_p("/shared", 0).expect("root");
    cl.control
        .borrow_mut()
        .create_file_at("/shared/f", LayoutSpec::SINGLE, FilePolicy::Plain)
        .expect("create");

    // Client 0 warms its cache on /shared/f.
    cl.submit(
        0,
        meta_job(
            MetaOp::Lookup {
                path: "/shared/f".into(),
            },
            1,
        ),
    );
    cl.start();
    assert_eq!(cl.run_until_metas(1, 1_000), 1);
    assert!(cl.client_caches[0].borrow().peek("/shared/f").is_some());
    let inv_before = cl.client_caches[0].borrow().stats.invalidations;

    // Client 1 renames the directory out from under it.
    cl.submit(
        1,
        meta_job(
            MetaOp::Rename {
                from: "/shared".into(),
                to: "/moved".into(),
            },
            2,
        ),
    );
    cl.start(); // re-kick: the job arrived after the drivers went idle
    assert_eq!(cl.run_until_metas(2, 2_000), 2);

    // The callback dropped client 0's entry...
    assert!(
        cl.client_caches[0].borrow().peek("/shared/f").is_none(),
        "rename callback invalidates the cached subtree"
    );
    assert!(cl.client_caches[0].borrow().stats.invalidations > inv_before);

    // ...so its next lookup misses, round-trips, and reports NotFound.
    let lookups_before = cl.control.borrow().meta.stats.lookups;
    cl.submit(
        0,
        meta_job(
            MetaOp::Lookup {
                path: "/shared/f".into(),
            },
            3,
        ),
    );
    cl.start();
    assert_eq!(cl.run_until_metas(3, 3_000), 3);
    let results = cl.results.borrow();
    let m = results.metas.iter().find(|m| m.token == 3).expect("result");
    assert!(!m.cache_hit, "stale entry is gone, lookup round-trips");
    assert_eq!(m.result, Err(MetaError::NotFound));
    assert_eq!(cl.control.borrow().meta.stats.lookups, lookups_before + 1);

    // The moved path resolves.
    assert!(cl.control.borrow_mut().lookup_path("/moved/f").is_ok());
}

#[test]
fn writeback_flush_invalidates_other_clients_cached_attrs() {
    let mut cl = cluster(2, 2);
    cl.control.borrow_mut().mkdir_p("/w", 0).expect("root");
    let f = cl
        .control
        .borrow_mut()
        .create_file_at("/w/f", LayoutSpec::SINGLE, FilePolicy::Plain)
        .expect("create");

    // Client 0 caches /w/f (size 0).
    cl.submit(
        0,
        meta_job(
            MetaOp::Lookup {
                path: "/w/f".into(),
            },
            1,
        ),
    );
    cl.start();
    assert_eq!(cl.run_until_metas(1, 1_000), 1);
    assert_eq!(cl.client_caches[0].borrow().peek("/w/f").unwrap().size, 0);

    // Client 1 writes, then looks the file up — the lookup forces its
    // write-back attr flush, which must invalidate client 0's entry.
    cl.submit(
        1,
        Job::Write {
            file: f.id,
            size: 64 << 10,
            protocol: WriteProtocol::Raw,
            seed: 3,
        },
    );
    cl.submit(
        1,
        meta_job(
            MetaOp::Lookup {
                path: "/w/f".into(),
            },
            2,
        ),
    );
    cl.start();
    cl.run_until_writes(1, 2_000);
    assert_eq!(cl.run_until_metas(2, 2_000), 2);

    assert!(
        cl.client_caches[0].borrow().peek("/w/f").is_none(),
        "flushed attrs invalidate the other client's cached entry"
    );
    // The authoritative size caught up through the batch flush.
    assert_eq!(
        cl.control.borrow_mut().lookup_path("/w/f").unwrap().size,
        64 << 10
    );
}

#[test]
fn striped_writes_land_on_distinct_nodes_with_counted_placement() {
    let mut cl = cluster(1, 4);
    cl.control.borrow_mut().mkdir_p("/data", 0).expect("root");
    let f = cl
        .control
        .borrow_mut()
        .create_file_at(
            "/data/wide",
            LayoutSpec::striped(4, 8 << 10),
            FilePolicy::Plain,
        )
        .expect("create");
    cl.submit(
        0,
        Job::Write {
            file: f.id,
            size: 32 << 10, // 4 chunks of 8 KiB
            protocol: WriteProtocol::Raw,
            seed: 7,
        },
    );
    cl.start();
    assert_eq!(cl.run_until_writes(1, 1_000), 1);

    let results = cl.results.borrow();
    let w = &results.writes[0];
    assert_eq!(w.status, nadfs_wire::Status::Ok);
    assert_eq!(w.placement.stripes.len(), 4, "one extent per stripe unit");
    let mut nodes: Vec<u32> = w.placement.stripes.iter().map(|s| s.coord.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    assert_eq!(nodes.len(), 4, "extents on four distinct storage nodes");

    // Placement was counted on the nodes it landed on.
    let placed: Vec<u64> = cl
        .storage_stats
        .iter()
        .map(|s| s.borrow().stripe_chunks_placed)
        .collect();
    assert_eq!(placed.iter().sum::<u64>(), 4);
    assert!(
        placed.iter().all(|&c| c == 1),
        "one chunk per node: {placed:?}"
    );

    // And the bytes are really there: reassemble from storage memories.
    let mut got = Vec::new();
    for st in &w.placement.stripes {
        let idx = cl.storage_index(st.coord.node as nadfs_simnet::NodeId);
        got.extend(
            cl.storage_mems[idx]
                .borrow()
                .read(st.coord.addr, st.len as usize),
        );
    }
    assert_eq!(got.len(), 32 << 10);
    assert!(
        got.iter().any(|&b| b != 0),
        "payload bytes visible in storage"
    );
}

#[test]
fn striped_rpc_write_lands_each_extent_at_its_own_address() {
    // Regression: RPC writes to a striped file must fan out per extent —
    // a single full-size write at the first extent's address would
    // overrun its allocation and skip the other nodes entirely.
    let mut cl = cluster(1, 3);
    cl.control.borrow_mut().mkdir_p("/r", 0).expect("root");
    let f = cl
        .control
        .borrow_mut()
        .create_file_at("/r/f", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
        .expect("create");
    cl.submit(
        0,
        Job::Write {
            file: f.id,
            size: 3 * 4096,
            protocol: WriteProtocol::Rpc,
            seed: 11,
        },
    );
    cl.start();
    assert_eq!(cl.run_until_writes(1, 2_000), 1);
    let results = cl.results.borrow();
    let w = &results.writes[0];
    assert_eq!(w.status, nadfs_wire::Status::Ok);
    assert_eq!(w.placement.stripes.len(), 3);
    for st in &w.placement.stripes {
        let idx = cl.storage_index(st.coord.node as nadfs_simnet::NodeId);
        let got = cl.storage_mems[idx]
            .borrow()
            .read(st.coord.addr, st.len as usize);
        assert_eq!(got.len(), 4096);
        assert!(
            got.iter().any(|&b| b != 0),
            "extent bytes present on node {}",
            st.coord.node
        );
    }
    // Each storage node saw exactly one RPC write.
    let rpcs: Vec<u64> = cl
        .storage_stats
        .iter()
        .map(|s| s.borrow().rpc_writes)
        .collect();
    assert_eq!(rpcs, vec![1, 1, 1]);
}

#[test]
fn write_to_unlinked_file_fails_typed_not_silent() {
    let mut cl = cluster(1, 2);
    cl.control.borrow_mut().mkdir_p("/tmp", 0).expect("root");
    let f = cl
        .control
        .borrow_mut()
        .create_file_at("/tmp/gone", LayoutSpec::SINGLE, FilePolicy::Plain)
        .expect("create");
    cl.control
        .borrow_mut()
        .unlink("/tmp/gone", 1)
        .expect("unlink");

    cl.submit(
        0,
        Job::Write {
            file: f.id,
            size: 4096,
            protocol: WriteProtocol::Raw,
            seed: 1,
        },
    );
    cl.start();
    assert_eq!(
        cl.run_until_writes(1, 1_000),
        1,
        "the failed job still completes"
    );
    let results = cl.results.borrow();
    assert_eq!(results.writes[0].status, nadfs_wire::Status::Rejected);
}

#[test]
fn meta_storm_mixed_over_simulated_cluster_all_ops_succeed() {
    let mut cl = cluster(2, 3);
    let w = MetaWorkload::new("/mix").with_dirs(3, 6).with_storm(48);
    w.prepare(&cl.control);
    let mut n = 0;
    for c in 0..2 {
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
            n += 1;
        }
    }
    cl.start();
    assert_eq!(cl.run_until_metas(n, 10_000), n);
    let results = cl.results.borrow();
    let failures: Vec<_> = results.metas.iter().filter(|m| m.result.is_err()).collect();
    assert!(
        failures.is_empty(),
        "disjoint subtrees: no op fails ({failures:?})"
    );
    // Mutations are slower than cached lookups in the latency model.
    let avg = |kind: MetaOpKind| -> f64 {
        let v: Vec<u64> = results
            .metas
            .iter()
            .filter(|m| m.op == kind)
            .map(|m| m.end.since(m.start).ps())
            .collect();
        v.iter().sum::<u64>() as f64 / v.len().max(1) as f64
    };
    assert!(avg(MetaOpKind::Rename) > avg(MetaOpKind::Lookup));
}
