//! Property-based tests across crates: wire codec roundtrips, RS recovery
//! under arbitrary erasure patterns, and streamed-vs-block EC equivalence.

use bytes::BytesMut;
use nadfs_gfec::{Accumulator, ReedSolomon};
use nadfs_wire::codec;
use nadfs_wire::{
    Capability, DfsHeader, DfsOp, MacKey, ReadReqHeader, ReplicaCoord, Resiliency, Rights,
    WriteReqHeader,
};
use proptest::prelude::*;

fn arb_capability() -> impl Strategy<Value = Capability> {
    (
        any::<u32>(),
        any::<u64>(),
        0u8..4,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(client, file, rights, exp, nonce)| {
            Capability::issue(
                &MacKey::from_seed(1),
                client,
                file,
                Rights(rights),
                exp,
                nonce,
            )
        })
}

fn arb_coords(max: usize) -> impl Strategy<Value = Vec<ReplicaCoord>> {
    proptest::collection::vec(
        (any::<u32>(), any::<u64>()).prop_map(|(node, addr)| ReplicaCoord { node, addr }),
        0..=max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dfs_header_codec_roundtrip(cap in arb_capability(), greq in any::<u64>(), client in any::<u16>(), tenant in any::<u16>(), is_read in any::<bool>()) {
        // The client field carries the tenant id in its upper 16 bits on
        // the wire, so node ids round-trip through the lower half only.
        let h = DfsHeader {
            greq_id: greq,
            op: if is_read { DfsOp::Read } else { DfsOp::Write },
            client: client as u32,
            tenant,
            capability: cap,
        };
        let mut b = BytesMut::new();
        codec::encode_dfs_header(&h, &mut b);
        prop_assert_eq!(b.len() as u32, nadfs_wire::sizes::DFS_HEADER);
        let mut r = b.freeze();
        prop_assert_eq!(codec::decode_dfs_header(&mut r).unwrap(), h);
    }

    #[test]
    fn wrh_codec_roundtrip_replication(addr in any::<u64>(), len in any::<u32>(), vrank in 0u8..8, coords in arb_coords(8), pbt in any::<bool>()) {
        let h = WriteReqHeader {
            target_addr: addr,
            len,
            resiliency: Resiliency::Replicate {
                strategy: if pbt { nadfs_wire::BcastStrategy::Pbt } else { nadfs_wire::BcastStrategy::Ring },
                vrank,
                coords,
            },
        };
        let mut b = BytesMut::new();
        codec::encode_wrh(&h, &mut b);
        prop_assert_eq!(b.len() as u32, h.wire_size());
        let mut r = b.freeze();
        prop_assert_eq!(codec::decode_wrh(&mut r).unwrap(), h);
    }

    #[test]
    fn rrh_codec_roundtrip(addr in any::<u64>(), len in any::<u32>()) {
        let h = ReadReqHeader { addr, len };
        let mut b = BytesMut::new();
        codec::encode_rrh(&h, &mut b);
        let mut r = b.freeze();
        prop_assert_eq!(codec::decode_rrh(&mut r).unwrap(), h);
    }

    #[test]
    fn capability_tamper_always_detected(cap in arb_capability(), flip_bit in 0usize..160) {
        // Flip one bit of the signed fields; verification must fail.
        let mut evil = cap;
        match flip_bit / 64 {
            0 => evil.file ^= 1 << (flip_bit % 64),
            1 => evil.expires_at_ns ^= 1 << (flip_bit % 64),
            _ => evil.nonce ^= 1 << (flip_bit % 32),
        }
        let r = evil.verify(&MacKey::from_seed(1), 0, Rights(0));
        prop_assert_eq!(r, Err(nadfs_wire::AuthError::BadSignature));
    }

    #[test]
    fn rs_recovers_any_erasure_pattern(
        k in 2usize..6,
        m in 1usize..4,
        len in 1usize..600,
        seed in any::<u64>(),
        pattern in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let chunks: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..len).map(|i| ((i as u64 * 31 + j as u64 * 7 + seed) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let parities = rs.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = chunks.into_iter().chain(parities).collect();
        // Choose up to m erasures from the pattern bits.
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        let mut erased = 0;
        for (i, shard) in shards.iter_mut().enumerate().take(k + m) {
            if erased < m && (pattern >> i) & 1 == 1 {
                *shard = None;
                erased += 1;
            }
        }
        rs.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &full[i]);
        }
    }

    #[test]
    fn streamed_aggregation_equals_block_parity(
        k in 2usize..5,
        chunk_len in 1usize..4000,
        mtu in 64usize..2048,
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, 1).unwrap();
        let chunks: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..chunk_len).map(|i| ((i as u64).wrapping_mul(131).wrapping_add(j as u64 ^ seed) % 256) as u8).collect())
            .collect();
        let expect = nadfs_gfec::block_parities(&rs, &chunks);
        let n_pkts = chunk_len.div_ceil(mtu);
        let mut accs: Vec<Accumulator> = (0..n_pkts).map(|_| Accumulator::new(mtu, k as u32)).collect();
        for (j, chunk) in chunks.iter().enumerate() {
            for (i, pkt) in chunk.chunks(mtu).enumerate() {
                let ipar = nadfs_gfec::intermediate_parity(rs.parity_coef(0, j), pkt);
                accs[i].absorb(&ipar);
            }
        }
        let mut parity = Vec::new();
        for (i, acc) in accs.iter().enumerate() {
            let plen = chunks[0].chunks(mtu).nth(i).unwrap().len();
            parity.extend_from_slice(acc.finish(plen));
        }
        prop_assert_eq!(parity, expect[0].clone());
    }
}
