//! Cross-crate end-to-end tests: every protocol stores correct bytes,
//! resiliency policies hold algebraically, and failure paths behave.

use nadfs_core::{
    ClusterSpec, CostModel, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol, WriteResult,
};
use nadfs_gfec::ReedSolomon;
use nadfs_simnet::Dur;
use nadfs_wire::{BcastStrategy, RsScheme, Status};

fn payload(seed: u64, len: u32) -> Vec<u8> {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut v = Vec::with_capacity(len as usize);
    while v.len() < len as usize {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        v.extend_from_slice(&z.to_le_bytes());
    }
    v.truncate(len as usize);
    v
}

fn write_once(
    mode: StorageMode,
    policy: FilePolicy,
    protocol: WriteProtocol,
    size: u32,
    n_storage: usize,
    seed: u64,
) -> (SimCluster, WriteResult) {
    let spec = ClusterSpec::new(1, n_storage, mode);
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, policy);
    c.submit(
        0,
        Job::Write {
            file: file.id,
            size,
            protocol,
            seed,
        },
    );
    c.start();
    assert_eq!(c.run_until_writes(1, 1_000), 1, "{protocol:?} incomplete");
    let r = c.results.borrow().writes[0].clone();
    (c, r)
}

#[test]
fn every_single_node_protocol_stores_identical_bytes() {
    let size = 200_000u32;
    let expect = payload(9, size);
    for (mode, protocol) in [
        (StorageMode::Plain, WriteProtocol::Raw),
        (StorageMode::Spin, WriteProtocol::Spin),
        (StorageMode::Plain, WriteProtocol::Rpc),
        (StorageMode::Plain, WriteProtocol::RpcRdma),
    ] {
        let (c, r) = write_once(mode, FilePolicy::Plain, protocol, size, 1, 9);
        assert_eq!(r.status, Status::Ok);
        let got = c.storage_mems[0]
            .borrow()
            .read(r.placement.primary.addr, size as usize);
        assert_eq!(got, expect, "{protocol:?} corrupted data");
    }
}

#[test]
fn replication_strategies_agree_on_replica_content() {
    let size = 300_000u32;
    let k = 4u8;
    for (mode, protocol, strategy) in [
        (
            StorageMode::Plain,
            WriteProtocol::RdmaFlat,
            BcastStrategy::Ring,
        ),
        (
            StorageMode::Plain,
            WriteProtocol::HyperLoop { chunk: 32 << 10 },
            BcastStrategy::Ring,
        ),
        (
            StorageMode::Plain,
            WriteProtocol::CpuBcast { chunk: 32 << 10 },
            BcastStrategy::Ring,
        ),
        (
            StorageMode::Plain,
            WriteProtocol::CpuBcast { chunk: 32 << 10 },
            BcastStrategy::Pbt,
        ),
        (
            StorageMode::Spin,
            WriteProtocol::SpinReplicated,
            BcastStrategy::Ring,
        ),
        (
            StorageMode::Spin,
            WriteProtocol::SpinReplicated,
            BcastStrategy::Pbt,
        ),
    ] {
        let policy = FilePolicy::Replicated { k, strategy };
        let (c, r) = write_once(mode, policy, protocol, size, k as usize, 31);
        assert_eq!(r.status, Status::Ok, "{protocol:?}/{strategy:?}");
        assert_eq!(r.placement.replicas.len(), k as usize);
        let expect = payload(31, size);
        for coord in &r.placement.replicas {
            let idx = c.storage_index(coord.node as usize);
            let got = c.storage_mems[idx].borrow().read(coord.addr, size as usize);
            assert_eq!(got, expect, "{protocol:?}/{strategy:?} node {}", coord.node);
        }
    }
}

#[test]
fn ec_write_survives_m_failures_and_recovers_bytes() {
    for (spin, scheme) in [
        (true, RsScheme::new(3, 2)),
        (false, RsScheme::new(3, 2)),
        (true, RsScheme::new(6, 3)),
    ] {
        let (mode, protocol) = if spin {
            (
                StorageMode::Spin,
                WriteProtocol::SpinTriec { interleave: true },
            )
        } else {
            (StorageMode::FirmwareEc, WriteProtocol::InecTriec)
        };
        let k = scheme.k as usize;
        let m = scheme.m as usize;
        let size = (k as u32) * 50_000;
        let policy = FilePolicy::ErasureCoded { scheme };
        let (c, r) = write_once(mode, policy, protocol, size, k + m, 55);
        let chunk_len = r.placement.chunk_len as usize;

        // Gather all shards, erase m of them, reconstruct, compare.
        let shard = |coord: &nadfs_wire::ReplicaCoord| {
            let idx = c.storage_index(coord.node as usize);
            c.storage_mems[idx].borrow().read(coord.addr, chunk_len)
        };
        let full: Vec<Vec<u8>> = r
            .placement
            .data_chunks
            .iter()
            .chain(&r.placement.parities)
            .map(shard)
            .collect();
        let rs = ReedSolomon::new(k, m).expect("params");
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for i in 0..m {
            shards[i * 2] = None; // spread the erasures
        }
        rs.reconstruct(&mut shards).expect("recovery");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(
                s.as_ref().expect("present"),
                &full[i],
                "spin={spin} shard {i}"
            );
        }

        // The recovered data equals what the client wrote.
        let expect = payload(55, size);
        let mut recovered = Vec::new();
        for s in shards.iter().take(k) {
            recovered.extend_from_slice(s.as_ref().expect("data"));
        }
        recovered.truncate(size as usize);
        assert_eq!(recovered, expect, "spin={spin}");
    }
}

#[test]
fn tampered_capability_rejected_on_nic_and_cpu_paths() {
    for (mode, protocol) in [
        (StorageMode::Spin, WriteProtocol::Spin),
        (StorageMode::Plain, WriteProtocol::Rpc),
    ] {
        let spec = ClusterSpec::new(1, 1, mode);
        let mut c = SimCluster::build_with(spec, |app| {
            app.forge_capabilities = true;
        });
        let file = c.control.borrow_mut().create_file(0, FilePolicy::Plain);
        c.submit(
            0,
            Job::Write {
                file: file.id,
                size: 64 << 10,
                protocol,
                seed: 0,
            },
        );
        c.start();
        assert_eq!(c.run_until_writes(1, 1_000), 1);
        let r = c.results.borrow().writes[0].clone();
        assert_eq!(r.status, Status::AuthFailed, "{protocol:?}");
    }
}

#[test]
fn multiple_clients_share_one_storage_node() {
    let spec = ClusterSpec::new(4, 1, StorageMode::Spin).with_window(2);
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, FilePolicy::Plain);
    let per_client = 6;
    for cl in 0..4 {
        for i in 0..per_client {
            c.submit(
                cl,
                Job::Write {
                    file: file.id,
                    size: 32 << 10,
                    protocol: WriteProtocol::Spin,
                    seed: (cl * 100 + i) as u64,
                },
            );
        }
    }
    c.start();
    assert_eq!(c.run_until_writes(4 * per_client, 5_000), 4 * per_client);
    let results = c.results.borrow();
    assert!(results.writes.iter().all(|r| r.status == Status::Ok));
    // Every write landed at a distinct address: verify no cross-talk.
    for r in &results.writes {
        let got = c.storage_mems[0]
            .borrow()
            .read(r.placement.primary.addr, r.size as usize);
        let seed = results
            .writes
            .iter()
            .find(|x| x.greq == r.greq)
            .map(|_| r.greq)
            .expect("self");
        let _ = seed;
        assert!(got.iter().any(|&b| b != 0), "empty write region");
    }
}

#[test]
fn descriptor_exhaustion_denies_then_retry_succeeds() {
    // Shrink the descriptor budget to 2 descriptors: with four clients
    // writing concurrently, at least one write is NACKed Busy and retried
    // by its client (§III-B).
    let mut cost = CostModel::paper();
    cost.pspin_state_bytes = cost.pspin.total_mem_bytes() - 2 * 77;
    let spec = ClusterSpec::new(4, 1, StorageMode::Spin).with_cost(cost);
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, FilePolicy::Plain);
    for i in 0..4u64 {
        c.submit(
            i as usize,
            Job::Write {
                file: file.id,
                size: 256 << 10,
                protocol: WriteProtocol::Spin,
                seed: i,
            },
        );
    }
    c.start();
    assert_eq!(c.run_until_writes(4, 5_000), 4, "retries must converge");
    let results = c.results.borrow();
    assert!(results.writes.iter().all(|r| r.status == Status::Ok));
    let retried: u32 = results.writes.iter().map(|r| r.retries).sum();
    assert!(retried > 0, "the tiny descriptor budget must force retries");
    let tel = c.pspin_telemetry[0].as_ref().expect("pspin").borrow();
    assert!(tel.msgs_denied > 0);
}

#[test]
fn abandoned_write_is_cleaned_up_and_storage_keeps_working() {
    let mut cost = CostModel::paper();
    cost.pspin.cleanup_timeout = Dur::from_us(300);
    let spec = ClusterSpec::new(2, 1, StorageMode::Spin).with_cost(cost);
    let mut c = SimCluster::build_with(spec, |app| {
        // Client 0 and 1 both get the hook, but only jobs on client 0 run
        // (we only submit there); every job it starts is abandoned.
        app.abandon_every = Some(1);
    });
    let file = c.control.borrow_mut().create_file(0, FilePolicy::Plain);
    c.submit(
        0,
        Job::Write {
            file: file.id,
            size: 64 << 10,
            protocol: WriteProtocol::Spin,
            seed: 0,
        },
    );
    c.start();
    c.run_ms(3);
    {
        let tel = c.pspin_telemetry[0].as_ref().expect("pspin").borrow();
        assert_eq!(tel.msgs_cleaned, 1, "cleanup handler must fire");
        assert_eq!(c.storage_stats[0].borrow().cleanup_events, 1);
    }
    // The node still serves new writes afterwards (no leaked descriptors
    // blocking progress).
    let spec2 = ClusterSpec::new(1, 1, StorageMode::Spin);
    let mut c2 = SimCluster::build(spec2);
    let f2 = c2.control.borrow_mut().create_file(0, FilePolicy::Plain);
    c2.submit(
        0,
        Job::Write {
            file: f2.id,
            size: 64 << 10,
            protocol: WriteProtocol::Spin,
            seed: 1,
        },
    );
    c2.start();
    assert_eq!(c2.run_until_writes(1, 1_000), 1);
}

#[test]
fn raw_read_returns_written_bytes() {
    let (mut c, r) = write_once(
        StorageMode::Plain,
        FilePolicy::Plain,
        WriteProtocol::Raw,
        100_000,
        1,
        77,
    );
    c.submit(
        0,
        Job::RawRead {
            node: r.placement.primary.node as usize,
            addr: r.placement.primary.addr,
            len: 100_000,
            token: 42,
        },
    );
    // Wake the (now idle) client driver.
    c.start();
    c.run_ms(5);
    let reads = &c.results.borrow().reads;
    assert_eq!(reads.len(), 1);
    assert_eq!(reads[0].token, 42);
}
