//! Backpressure and goodput invariants: the lossless network throttles
//! instead of dropping, and the paper's PBT goodput halving emerges.

use nadfs_core::{storage_goodput_gbit, CostModel, FilePolicy, WriteProtocol};
use nadfs_wire::BcastStrategy;

#[test]
fn spin_write_goodput_reaches_line_rate_for_large_writes() {
    let cost = CostModel::paper();
    let g = storage_goodput_gbit(
        WriteProtocol::Spin,
        FilePolicy::Plain,
        256 << 10,
        &cost,
        24,
        8,
    );
    // Payload goodput ceiling at 400 Gbit/s with 70 B headers is ~386.
    assert!(g > 350.0, "large writes must saturate the NIC: {g}");
}

#[test]
fn pbt_goodput_is_about_half_of_ring() {
    let cost = CostModel::paper();
    let ring = storage_goodput_gbit(
        WriteProtocol::SpinReplicated,
        FilePolicy::Replicated {
            k: 4,
            strategy: BcastStrategy::Ring,
        },
        256 << 10,
        &cost,
        24,
        8,
    );
    let pbt = storage_goodput_gbit(
        WriteProtocol::SpinReplicated,
        FilePolicy::Replicated {
            k: 4,
            strategy: BcastStrategy::Pbt,
        },
        256 << 10,
        &cost,
        24,
        8,
    );
    let ratio = pbt / ring;
    assert!(
        (0.4..=0.65).contains(&ratio),
        "PBT doubles egress so ingress halves (paper Fig 9 right): ring {ring:.0}, pbt {pbt:.0}, ratio {ratio:.2}"
    );
}

#[test]
fn small_write_goodput_is_handler_limited_not_zero() {
    let cost = CostModel::paper();
    let g = storage_goodput_gbit(
        WriteProtocol::Spin,
        FilePolicy::Plain,
        1 << 10,
        &cost,
        48,
        8,
    );
    // 1 KiB writes trigger all three handlers per message (§V-B-2): far
    // below line rate but strictly positive and stable.
    assert!(g > 5.0 && g < 200.0, "{g}");
}
