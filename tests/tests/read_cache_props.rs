//! Property test for the client read cache's correctness contract:
//! under arbitrary write/overwrite/read/`mark_node_failed`/
//! `drain_repairs` interleavings (scripted through the PR-4 [`FaultPlan`]
//! harness), every cached `read_at` is byte-identical to the uncached
//! path and to a shadow model of the file — generation-keyed
//! invalidation never serves stale bytes, degraded reconstructions that
//! populate the cache are exact, and repair re-homing invalidates
//! precisely.

use nadfs_core::{ClusterSpec, FilePolicy, FsClient, LayoutSpec, SimCluster, StorageMode};
use nadfs_tests::{drain_repairs_with_faults, seed_from_env, FaultAction, FaultPlan, FaultPoint};
use nadfs_wire::{BcastStrategy, RsScheme};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Policy {
    Ec,
    Replicated,
}

#[derive(Clone, Debug)]
enum Step {
    /// `pwrite` of a deterministic payload (overwrites happen naturally
    /// when ranges overlap earlier writes).
    Write { offset: u64, len: usize },
    /// Ranged read, compared byte-for-byte against the shadow model.
    Read { offset: u64, len: u32 },
}

#[derive(Clone, Debug)]
struct Scenario {
    policy: Policy,
    steps: Vec<Step>,
    /// The scripted kill fires after this many completed writes (may be
    /// past the end: no failure at all).
    fail_after: u32,
    /// Drain the repair queue after this step index (mid-run repairs).
    drain_after: usize,
}

fn step() -> impl Strategy<Value = Step> {
    (0u8..2, 0u64..10_000, 300usize..3_000, 1u32..8_000).prop_map(|(kind, offset, wlen, rlen)| {
        if kind == 0 {
            Step::Write {
                offset: offset % 6_000,
                len: wlen,
            }
        } else {
            Step::Read { offset, len: rlen }
        }
    })
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (0u8..2).prop_map(|k| {
            if k == 0 {
                Policy::Ec
            } else {
                Policy::Replicated
            }
        }),
        proptest::collection::vec(step(), 2..9),
        0u32..4,
        0usize..9,
    )
        .prop_map(|(policy, steps, fail_after, drain_after)| Scenario {
            policy,
            drain_after: drain_after.min(steps.len()),
            steps,
            fail_after,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cached_reads_equal_uncached_reads_equal_shadow_model(s in scenario()) {
        let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(
            1,
            5,
            StorageMode::Spin,
        )));
        fsc.mkdir_p("/p").expect("mkdir");
        let file_policy = match s.policy {
            Policy::Ec => FilePolicy::ErasureCoded { scheme: RsScheme::new(2, 1) },
            Policy::Replicated => FilePolicy::Replicated { k: 2, strategy: BcastStrategy::Ring },
        };
        let h = fsc
            .create_with_policy("/p/f", LayoutSpec::SINGLE, file_policy)
            .expect("create");

        // The scripted kill rides the PR-4 fault harness: victim drawn
        // from the seeded generator, fired after the Nth write.
        let mut plan = FaultPlan::new(seed_from_env()).on(
            FaultPoint::AfterWrites(s.fail_after.max(1)),
            FaultAction::FailRandomOf(vec![0, 1, 2, 3, 4]),
        );

        // Shadow model of the file's logical bytes (committed size ==
        // model.len(): every write completes before the next step).
        let mut model: Vec<u8> = Vec::new();
        for (i, st) in s.steps.iter().enumerate() {
            if i == s.drain_after {
                let report = drain_repairs_with_faults(&mut fsc, &mut plan);
                prop_assert!(report.converged(), "mid-run drain gave up: {report:?}");
            }
            match *st {
                Step::Write { offset, len } => {
                    let data: Vec<u8> = (0..len)
                        .map(|b| (b as u64 ^ offset ^ ((i as u64) << 3)) as u8)
                        .collect();
                    fsc.write_at(&h, offset, &data).expect("write");
                    let end = offset as usize + len;
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[offset as usize..end].copy_from_slice(&data);
                    plan.note_write(&mut fsc);
                }
                Step::Read { offset, len } => {
                    let r = fsc.read_at(&h, offset, len).expect("read");
                    let lo = (offset as usize).min(model.len());
                    let hi = (offset as usize).saturating_add(len as usize).min(model.len());
                    prop_assert_eq!(r.len as usize, hi - lo, "short-read clamp at step {}", i);
                    prop_assert_eq!(
                        r.data.as_ref(),
                        &model[lo..hi],
                        "read ≠ shadow model at step {} (from_cache={})",
                        i,
                        r.from_cache
                    );
                    plan.note_read(&mut fsc);
                }
            }
        }

        // Converge: drain everything, then prove the triple equivalence
        // cached ≡ uncached ≡ model on the whole file.
        let report = fsc.drain_repairs();
        prop_assert!(report.converged(), "final drain gave up: {report:?}");
        if !model.is_empty() {
            let cached = fsc.read_at(&h, 0, model.len() as u32).expect("cached read");
            prop_assert_eq!(cached.data.as_ref(), &model[..], "cached ≠ model");
            fsc.drop_read_cache();
            let fresh = fsc.read_at(&h, 0, model.len() as u32).expect("uncached read");
            prop_assert!(!fresh.from_cache);
            prop_assert_eq!(fresh.degraded_stripes, 0, "post-drain reads are direct");
            prop_assert_eq!(fresh.data.as_ref(), &model[..], "uncached ≠ model");
            prop_assert_eq!(cached.checksum, fresh.checksum);
        }
    }
}
