//! The client read cache + readahead, end to end: hits are byte-identical
//! to the uncached path and absorb control-plane resolves; invalidation
//! rides the generation callbacks (commits, overwrites, repair re-homing,
//! unlink, cross-client); degraded reconstructions populate the cache so
//! the same extent is never reconstructed twice by one client; and the
//! placement-time size-inflation bugfix holds — a write that is rejected
//! or abandoned between placement and commit changes neither `stat` nor
//! read planning.

use std::cell::RefCell;
use std::rc::Rc;

use nadfs_core::{
    ClusterSpec, FilePolicy, FsClient, FsError, Job, LayoutSpec, ReadCompletion, ReadSlot,
    SimCluster, StorageMode, WriteProtocol,
};
use nadfs_tests::seed_from_env;
use nadfs_wire::{payload_checksum, RsScheme, Status};

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut v = Vec::with_capacity(len);
    while v.len() < len {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        v.extend_from_slice(&z.to_le_bytes());
    }
    v.truncate(len);
    v
}

/// Hits serve byte-identical data from client memory, skip the
/// control-plane resolve, and report themselves as `from_cache`.
#[test]
fn cache_hits_are_byte_identical_and_absorb_resolves() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 3, StorageMode::Spin)));
    fsc.mkdir_p("/c").expect("mkdir");
    let h = fsc
        .create("/c/f", LayoutSpec::striped(3, 16 << 10))
        .expect("create");
    let data = payload(seed_from_env(), 120_000);
    let w = fsc.append(&h, &data).expect("write");
    // Shed the write-through fills: this test exercises the miss → hit
    // path from a cold cache.
    fsc.drop_read_cache();

    let r1 = fsc.read_at(&h, 10_000, 50_000).expect("read 1");
    assert!(!r1.from_cache, "cold read goes to the network");
    let resolves_after_miss = fsc.cluster.control.borrow().meta.stats.resolves;
    let r2 = fsc.read_at(&h, 10_000, 50_000).expect("read 2");
    assert!(r2.from_cache, "repeat read serves from cache");
    assert_eq!(r2.data.as_ref(), &data[10_000..60_000]);
    assert_eq!(r2.data.as_ref(), r1.data.as_ref(), "cached ≡ uncached");
    assert_eq!(r2.checksum, r1.checksum);
    assert!(
        r2.end.since(r2.start) < r1.end.since(r1.start),
        "a hit is faster than the fan-out it replaced"
    );
    // A strict subrange of the cached span also hits.
    let r3 = fsc.read_at(&h, 25_000, 10_000).expect("read 3");
    assert!(r3.from_cache);
    assert_eq!(r3.data.as_ref(), &data[25_000..35_000]);
    assert_eq!(
        fsc.cluster.control.borrow().meta.stats.resolves,
        resolves_after_miss,
        "hits never round-trip to the control plane"
    );
    let stats = fsc.read_cache_stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1);
    // Whole-file read-back still matches the write checksum (mix of
    // cached span and fresh tail).
    let full = fsc.read_at(&h, 0, data.len() as u32).expect("full");
    assert_eq!(full.data.as_ref(), &data[..]);
    assert_eq!(full.checksum, w.checksum);
}

/// An overwrite bumps the extent-map generation: exactly the affected
/// file drops from the cache, and the next read observes the new bytes.
#[test]
fn overwrite_invalidates_exactly_the_affected_file() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 2, StorageMode::Spin)));
    fsc.mkdir_p("/c").expect("mkdir");
    let ha = fsc.create("/c/a", LayoutSpec::SINGLE).expect("create a");
    let hb = fsc.create("/c/b", LayoutSpec::SINGLE).expect("create b");
    let a = payload(1, 40_000);
    let b = payload(2, 40_000);
    fsc.append(&ha, &a).expect("write a");
    fsc.append(&hb, &b).expect("write b");
    fsc.drop_read_cache(); // cold warm-up reads below populate the cache
    assert!(!fsc.read_at(&ha, 0, 40_000).expect("warm a").from_cache);
    assert!(!fsc.read_at(&hb, 0, 40_000).expect("warm b").from_cache);

    let patch = payload(3, 10_000);
    fsc.write_at(&ha, 5_000, &patch).expect("overwrite a");
    let ra = fsc.read_at(&ha, 0, 40_000).expect("read a");
    assert!(!ra.from_cache, "a's cached span was invalidated");
    let mut expect = a.clone();
    expect[5_000..15_000].copy_from_slice(&patch);
    assert_eq!(ra.data.as_ref(), &expect[..]);
    let rb = fsc.read_at(&hb, 0, 40_000).expect("read b");
    assert!(rb.from_cache, "b was untouched: still cached");
    assert_eq!(rb.data.as_ref(), &b[..]);
    assert!(fsc.read_cache_stats().invalidations >= 1);
}

/// Regression (the tentpole's prerequisite bugfix): a write rejected
/// after placement — the kill lands between placement and commit — must
/// not inflate `stat` or read planning. Before the fix, `place_write`
/// advanced `size` eagerly, so the rejected bytes became phantom EOF
/// that reads planned holes for.
#[test]
fn rejected_write_does_not_inflate_stat_or_read_planning() {
    // Forged capabilities: the write places, fans out, and is rejected
    // by the NIC's validation — placement happened, commit never does.
    let cluster = SimCluster::build_with(ClusterSpec::new(1, 3, StorageMode::Spin), |app| {
        app.forge_capabilities = true;
    });
    let mut fsc = FsClient::new(cluster);
    fsc.mkdir_p("/r").expect("mkdir");
    let h = fsc.create("/r/f", LayoutSpec::SINGLE).expect("create");
    let err = fsc.append(&h, &payload(9, 32 << 10)).unwrap_err();
    assert_eq!(err, FsError::Io(Status::AuthFailed), "write rejected");

    let attr = fsc.stat(&h).expect("stat");
    assert_eq!(attr.size, 0, "rejected write must not move stat");
    let r = fsc.read_at(&h, 0, 64 << 10).expect("read");
    assert_eq!(r.len, 0, "no phantom EOF: a clean zero-length short read");
    assert!(r.data.is_empty());
}

/// The scripted variant: the client abandons the write after its first
/// packet (a client death between placement and commit). `stat` and
/// `read_at` past the true EOF see only committed bytes; a later good
/// write commits past the gap and the gap reads as a hole.
#[test]
fn abandoned_write_between_placement_and_commit_leaves_no_phantom_eof() {
    let cluster = SimCluster::build_with(
        ClusterSpec::new(1, 3, StorageMode::Spin).with_window(2),
        |app| app.abandon_every = Some(1), // every Spin write is abandoned
    );
    let mut fsc = FsClient::new(cluster);
    fsc.op_deadline_ms = 200;
    fsc.mkdir_p("/r").expect("mkdir");
    let mut h = fsc.create("/r/f", LayoutSpec::SINGLE).expect("create");
    h.write_protocol = WriteProtocol::Spin;
    let doomed = payload(5, 64 << 10);
    let err = fsc.write_at(&h, 0, &doomed).unwrap_err();
    assert_eq!(err, FsError::TimedOut, "the abandoned write never acks");

    // Placement happened (the cursor moved), but nothing committed.
    let attr = fsc.stat(&h).expect("stat");
    assert_eq!(attr.size, 0, "abandoned write must not move stat");
    let r = fsc.read_at(&h, 0, 128 << 10).expect("read past true EOF");
    assert_eq!(r.len, 0, "nothing durable to read");

    // A later write goes through the CPU path (not abandoned) and lands
    // AFTER the abandoned placement's cursor: the abandoned range is a
    // hole (zeros), never the doomed payload.
    h.write_protocol = WriteProtocol::Rpc;
    let good = payload(6, 8 << 10);
    let w = fsc.append(&h, &good).expect("good write");
    assert_eq!(w.status, Status::Ok);
    assert_eq!(w.placement.offset, 64 << 10, "placed after the dead cursor");
    let attr = fsc.stat(&h).expect("stat");
    assert_eq!(attr.size, (64 << 10) + (8 << 10));
    let r = fsc
        .read_at(&h, 0, (64 << 10) + (8 << 10))
        .expect("full read");
    assert_eq!(r.len, (64 << 10) + (8 << 10));
    assert!(
        r.data[..64 << 10].iter().all(|&x| x == 0),
        "the abandoned range is a hole, not phantom bytes"
    );
    assert_eq!(&r.data[64 << 10..], &good[..]);
}

/// Boundary regression: `resolve_read` saturates `offset + len` instead
/// of overflowing, so hostile offsets produce clean zero-length short
/// reads — and the cache answers the repeats without a resolve.
#[test]
fn huge_offset_reads_are_clean_zero_length_short_reads() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 2, StorageMode::Spin)));
    fsc.mkdir_p("/b").expect("mkdir");
    let h = fsc.create("/b/f", LayoutSpec::SINGLE).expect("create");
    fsc.append(&h, &payload(4, 4096)).expect("write");
    for offset in [u64::MAX, u64::MAX - 1, u64::MAX - 4095, 1 << 62] {
        let r = fsc.read_at(&h, offset, u32::MAX).expect("read");
        assert_eq!(r.len, 0, "offset {offset:#x}");
        assert_eq!(r.status, Status::Ok);
        assert!(r.data.is_empty());
    }
    // The EOF learned from the clamped fetches serves repeats locally.
    let r = fsc.read_at(&h, u64::MAX, 100).expect("repeat");
    assert_eq!(r.len, 0);
    assert!(r.from_cache, "past-EOF repeats are cache hits");
}

/// Degraded reconstructions populate the cache: a repair-promoted extent
/// is never reconstructed twice by the same client, and the repair's
/// re-homing (generation bump) invalidates so post-repair reads go
/// direct.
#[test]
fn degraded_reconstruction_populates_cache_until_repair_rehomes() {
    let scheme = RsScheme::new(3, 2);
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 6, StorageMode::Spin)));
    fsc.mkdir_p("/ec").expect("mkdir");
    let h = fsc
        .create_with_policy(
            "/ec/f",
            LayoutSpec::SINGLE,
            FilePolicy::ErasureCoded { scheme },
        )
        .expect("create");
    let data = payload(seed_from_env() ^ 0xD1, 150_000);
    let w = fsc.append(&h, &data).expect("write");
    let victim = fsc
        .cluster
        .storage_index(w.placement.data_chunks[0].node as usize);
    fsc.fail_storage_node(victim);
    // Shed the write-through fill so the first read actually exercises
    // the degraded fan-out + reconstruction.
    fsc.drop_read_cache();

    let r1 = fsc.read_at(&h, 0, data.len() as u32).expect("degraded");
    assert_eq!(r1.degraded_stripes, 1, "first read reconstructs");
    assert_eq!(r1.data.as_ref(), &data[..]);
    let gen_before = fsc.cluster.control.borrow().extent_generation(h.id());

    let r2 = fsc.read_at(&h, 2_000, 50_000).expect("repeat");
    assert!(r2.from_cache, "reconstructed bytes serve from cache");
    assert_eq!(r2.degraded_stripes, 0, "never reconstructed twice");
    assert_eq!(r2.data.as_ref(), &data[2_000..52_000]);

    // The drain re-homes the shard: generation bump → invalidation.
    let report = fsc.drain_repairs();
    assert!(report.converged());
    assert!(fsc.cluster.control.borrow().extent_generation(h.id()) > gen_before);
    let r3 = fsc.read_at(&h, 2_000, 50_000).expect("post-repair");
    assert!(!r3.from_cache, "repair re-homing invalidated the cache");
    assert_eq!(r3.degraded_stripes, 0, "and the fresh read is direct");
    assert_eq!(r3.data.as_ref(), &data[2_000..52_000]);
    assert!(fsc.read_cache_stats().invalidations >= 1);
}

fn read_on(
    cluster: &mut SimCluster,
    client: usize,
    file: u64,
    offset: u64,
    len: u32,
) -> ReadCompletion {
    let slot: ReadSlot = Rc::new(RefCell::new(None));
    cluster.submit(
        client,
        Job::Read {
            file,
            offset,
            len,
            protocol: nadfs_core::ReadProtocol::Rdma,
            token: 0x77,
            slot: Some(slot.clone()),
        },
    );
    cluster.start();
    cluster
        .run_until_slot(&slot, 10_000)
        .expect("read completes")
}

/// Cross-client coherence: client 1's cached data is invalidated by
/// client 0's commit through the control plane's callback fan-out.
#[test]
fn cross_client_commit_invalidates_via_callbacks() {
    let cluster = SimCluster::build(ClusterSpec::new(2, 3, StorageMode::Spin));
    let mut fsc = FsClient::new(cluster); // drives client 0
    fsc.mkdir_p("/x").expect("mkdir");
    let h = fsc
        .create("/x/f", LayoutSpec::striped(2, 8192))
        .expect("create");
    let a = payload(10, 60_000);
    fsc.append(&h, &a).expect("write");

    // Client 1 reads twice: the second is a hit on ITS cache.
    let r1 = read_on(&mut fsc.cluster, 1, h.id(), 0, 60_000);
    assert!(!r1.from_cache);
    assert_eq!(r1.data.as_ref(), &a[..]);
    let r2 = read_on(&mut fsc.cluster, 1, h.id(), 0, 60_000);
    assert!(r2.from_cache, "client 1's own cache serves the repeat");

    // Client 0 overwrites: the commit's generation bump fans out to
    // every registered cache — client 1 must not serve stale bytes.
    let patch = payload(11, 20_000);
    fsc.write_at(&h, 30_000, &patch).expect("overwrite");
    let r3 = read_on(&mut fsc.cluster, 1, h.id(), 0, 60_000);
    assert!(!r3.from_cache, "client 1 invalidated by client 0's commit");
    let mut expect = a.clone();
    expect[30_000..50_000].copy_from_slice(&patch);
    assert_eq!(r3.data.as_ref(), &expect[..]);
    assert_eq!(r3.checksum, payload_checksum(&expect));
    assert!(fsc.cluster.read_caches[1].borrow().stats.invalidations >= 1);
}

/// Unlink drops the file's cached data unconditionally (and rename-
/// replace rides the same event).
#[test]
fn unlink_drops_cached_data() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 2, StorageMode::Spin)));
    fsc.mkdir_p("/u").expect("mkdir");
    let h = fsc.create("/u/f", LayoutSpec::SINGLE).expect("create");
    fsc.append(&h, &payload(12, 10_000)).expect("write");
    fsc.read_at(&h, 0, 10_000).expect("warm");
    assert_eq!(fsc.cluster.read_caches[0].borrow().cached_files(), 1);
    fsc.cluster
        .control
        .borrow_mut()
        .unlink("/u/f", 1)
        .expect("unlink");
    assert_eq!(
        fsc.cluster.read_caches[0].borrow().cached_files(),
        0,
        "unlink dropped the cached spans"
    );
}

/// The steady-state assertion CI gates on: a sequential stream through
/// `FsClient` reaches a high hit rate via readahead, with the resolve
/// ledger showing the control-RPC reduction. Deterministic — simulated
/// time, seeded payloads.
#[test]
fn sequential_stream_reaches_steady_state_hit_rate() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 4, StorageMode::Spin)));
    fsc.mkdir_p("/s").expect("mkdir");
    let h = fsc
        .create("/s/stream", LayoutSpec::striped(4, 64 << 10))
        .expect("create");
    let data = payload(seed_from_env() ^ 0x5E0, 1 << 20);
    fsc.append(&h, &data).expect("write");
    // Cold stream: the point is readahead ramping, not read-after-write.
    fsc.drop_read_cache();

    let block = 16 << 10;
    let n = (data.len() / block) as u64; // 64 sequential reads
    for i in 0..n {
        let off = i * block as u64;
        let r = fsc.read_at(&h, off, block as u32).expect("read");
        assert_eq!(r.data.as_ref(), &data[off as usize..off as usize + block]);
    }
    let stats = fsc.read_cache_stats();
    assert!(
        stats.hit_rate() >= 0.7,
        "steady-state hit rate regressed: {:.2} ({} hits / {} misses)",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    assert!(stats.readahead_bytes > 0, "readahead never engaged");
    let resolves = fsc.cluster.control.borrow().meta.stats.resolves;
    assert!(
        resolves <= stats.misses + 2,
        "only misses resolve: {resolves} resolves for {} misses",
        stats.misses
    );
    assert!(
        (resolves as f64) < n as f64 * 0.5,
        "control-RPC reduction regressed: {resolves}/{n}"
    );
}

/// Write-through population: a committed write lands in the read cache
/// under the post-commit generation, so read-after-write is a local hit
/// (no resolve, no fan-out) and byte-identical to the written data.
#[test]
fn read_after_write_is_a_local_cache_hit() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 3, StorageMode::Spin)));
    fsc.mkdir_p("/w").expect("mkdir");
    let h = fsc
        .create("/w/f", LayoutSpec::striped(3, 16 << 10))
        .expect("create");
    let data = payload(seed_from_env() ^ 0x3A, 96_000);
    fsc.append(&h, &data).expect("write");

    let resolves_before = fsc.cluster.control.borrow().meta.stats.resolves;
    let r = fsc.read_at(&h, 0, data.len() as u32).expect("read");
    assert!(r.from_cache, "read-after-write serves from the write fill");
    assert_eq!(r.data.as_ref(), &data[..], "write-through bytes identical");
    assert_eq!(
        fsc.cluster.control.borrow().meta.stats.resolves,
        resolves_before,
        "no resolve round-trip for a read-after-write"
    );
    let r2 = fsc.read_at(&h, 10_000, 30_000).expect("subrange");
    assert!(r2.from_cache);
    assert_eq!(r2.data.as_ref(), &data[10_000..40_000]);
    let stats = fsc.read_cache_stats();
    assert!(stats.write_fills >= 1, "write path populated the cache");
    // A second append extends the cached span contiguously: the commit's
    // generation bump invalidates the old fill, but the new write fill
    // re-covers its own range.
    let more = payload(0x3B, 8_000);
    fsc.append(&h, &more).expect("append");
    let r3 = fsc
        .read_at(&h, data.len() as u64, more.len() as u32)
        .expect("tail");
    assert!(r3.from_cache, "the appended range hits from its write fill");
    assert_eq!(r3.data.as_ref(), &more[..]);
}

/// Writes through the legacy `Bytes` job path also invalidate (the
/// commit rides the same control-plane path), keeping the cache coherent
/// for mixed Job/FsClient users.
#[test]
fn own_append_invalidates_and_extends_served_eof() {
    let mut fsc = FsClient::new(SimCluster::build(ClusterSpec::new(1, 2, StorageMode::Spin)));
    fsc.mkdir_p("/e").expect("mkdir");
    let h = fsc.create("/e/f", LayoutSpec::SINGLE).expect("create");
    let a = payload(20, 8_192);
    fsc.append(&h, &a).expect("write");
    // Read past EOF: short read, EOF cached.
    let r = fsc.read_at(&h, 0, 32 << 10).expect("read");
    assert_eq!(r.len, 8_192);
    let r2 = fsc.read_at(&h, 0, 32 << 10).expect("repeat");
    assert!(r2.from_cache, "EOF-clamped repeat hits");
    assert_eq!(r2.len, 8_192);
    // Append more: the commit invalidates the cached EOF, so the same
    // read now returns the longer file.
    let b = payload(21, 4_096);
    fsc.append(&h, &b).expect("append");
    let r3 = fsc.read_at(&h, 0, 32 << 10).expect("after append");
    assert!(!r3.from_cache, "own append invalidated the cached span");
    assert_eq!(r3.len, 8_192 + 4_096);
    assert_eq!(&r3.data[..8_192], &a[..]);
    assert_eq!(&r3.data[8_192..], &b[..]);
}
