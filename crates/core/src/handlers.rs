//! The DFS sPIN handlers — the paper's primary contribution.
//!
//! This is Listing 1 made concrete: a header handler that authenticates the
//! request (§IV) and materializes per-request state in NIC memory; payload
//! handlers that commit data to the storage target and enforce the data
//! movement / processing policies (replication forwarding §V, streaming
//! erasure coding §VI); a completion handler that flushes and acknowledges;
//! and the cleanup handler (§VII) reclaiming state after client failure.
//!
//! Handlers do the *functional* work (bytes really move, parities are real
//! GF(2^8) algebra) and charge the calibrated instruction/IPC model from
//! [`crate::config::HandlerCosts`].

use std::any::Any;
use std::collections::HashMap;

use bytes::Bytes;
use nadfs_gfec::ReedSolomon;
use nadfs_pspin::{HandlerArgs, HandlerSet, Ops};
use nadfs_simnet::telemetry::phase;
use nadfs_simnet::{BufPool, NodeId, ObsHub, SharedBufPool, SharedObs, SharedTrace, Time, Trace};
use nadfs_wire::{
    bcast_children, AckPkt, CreditGrant, DfsHeader, EcInfo, EcRole, Frame, GatherReadHeader,
    GatherReqPkt, MacKey, MsgId, Resiliency, Rights, RsScheme, Status, WritePkt, WriteReqHeader,
};

use crate::config::HandlerCosts;

/// Host-event tag base for CPU-fallback EC aggregation; the stripe id is
/// OR-ed into the low bits.
pub const EVT_EC_FALLBACK: u64 = 0x4543_0000_0000_0000;
/// Host-event tag for cleanup notifications.
pub const EVT_CLEANUP: u64 = 0xC1EA_0000_0000_0000;
/// Host-event tag for validated gather-read requests handed off to the
/// NIC core's gather engine; the pending-gather id is OR-ed into the low
/// bits.
pub const EVT_GATHER: u64 = 0x4754_0000_0000_0000;

/// One forwarded stream (replication child or EC parity stream).
#[derive(Clone, Debug)]
struct FwdStream {
    msg: MsgId,
    dst: NodeId,
    /// WRH of the forwarded message's first packet.
    wrh: WriteReqHeader,
}

/// Per-request NIC state — the paper's 77-byte write descriptor.
#[derive(Clone, Debug)]
struct ReqEntry {
    greq: u64,
    accept: bool,
    client: NodeId,
    /// Kept whole for forwarded-stream headers (re-validation downstream).
    #[allow(dead_code)]
    dfs: DfsHeader,
    wrh: WriteReqHeader,
    fwd: Vec<FwdStream>,
    /// Packets of this message that carry data (client-origin messages
    /// carry data in every packet; forwarded streams start with an empty
    /// header packet).
    data_pkts: u32,
    /// Data packets forwarded so far (slot counter for outgoing streams).
    fwd_sent: u32,
}

/// Aggregation state for one stripe at a parity node.
#[derive(Debug)]
struct StripeState {
    k: u8,
    chunk_len: u32,
    greq: u64,
    client: NodeId,
    /// Where the final parity chunk lives on this node.
    final_addr: u64,
    /// Completed intermediate streams.
    ch_done: u8,
    /// Aggregating on the host CPU because the accumulator pool could not
    /// cover the stripe (§VI-B-3: "If the pool is empty ... we fall back
    /// to a CPU-based aggregation"). Decided per stripe at header time so
    /// no aggregation sequence ever splits between NIC and host.
    fallback: bool,
    /// Accumulators reserved from the pool for this stripe.
    reserved: usize,
}

/// An in-flight accumulator (one aggregation sequence, Fig 14).
struct AccEntry {
    buf: Vec<u8>,
    got: u8,
}

/// Counters exposed to tests and the host software.
#[derive(Clone, Copy, Debug, Default)]
pub struct DfsCounters {
    pub requests_seen: u64,
    pub auth_failures: u64,
    pub packets_committed: u64,
    pub packets_forwarded: u64,
    pub parity_packets_sent: u64,
    pub accumulator_fallbacks: u64,
    pub cleanups: u64,
    pub gather_reqs: u64,
}

/// A gather-read request validated by the header handler and awaiting
/// pickup by the NIC core's gather engine (handed off via [`EVT_GATHER`]).
#[derive(Clone, Debug)]
pub struct PendingGather {
    pub client: NodeId,
    pub msg: MsgId,
    pub greq: u64,
    pub grh: GatherReadHeader,
}

/// Execution-context state living in NIC memory (`task->mem`).
pub struct DfsNicState {
    pub key: MacKey,
    pub costs: HandlerCosts,
    req_table: HashMap<MsgId, ReqEntry>,
    next_fwd_seq: u64,
    rs_cache: HashMap<(u8, u8), ReedSolomon>,
    stripes: HashMap<u64, StripeState>,
    accs: HashMap<(u64, u32), AccEntry>,
    /// Free accumulators remaining in the pool.
    acc_free: usize,
    /// Validated gather reads keyed by a NIC-local id; the completion
    /// handler signals the host with `EVT_GATHER | id` and the host hands
    /// the entry to the gather engine.
    pending_gathers: HashMap<u64, PendingGather>,
    gather_ids: HashMap<MsgId, u64>,
    next_gather_id: u64,
    /// Recycled byte buffers for accumulators and intermediate-parity
    /// products (shared with the PsPIN device, which returns DMA-write
    /// payloads here once their run retires).
    buf_pool: SharedBufPool,
    pub counters: DfsCounters,
    /// Observability: span phase marks keyed by greq, the shared trace
    /// ring, and which node this context runs on. Defaults disabled; the
    /// cluster build installs the live hubs via [`DfsNicState::set_obs`].
    obs: SharedObs,
    trace: SharedTrace,
    node: Option<NodeId>,
}

impl DfsNicState {
    pub fn new(key: MacKey, costs: HandlerCosts, accumulator_pool: usize) -> DfsNicState {
        DfsNicState::with_buf_pool(key, costs, accumulator_pool, BufPool::shared(256))
    }

    /// Variant sharing an existing buffer pool (the owning NIC's ring).
    pub fn with_buf_pool(
        key: MacKey,
        costs: HandlerCosts,
        accumulator_pool: usize,
        buf_pool: SharedBufPool,
    ) -> DfsNicState {
        DfsNicState {
            key,
            costs,
            req_table: HashMap::new(),
            next_fwd_seq: 0,
            rs_cache: HashMap::new(),
            stripes: HashMap::new(),
            accs: HashMap::new(),
            acc_free: accumulator_pool,
            pending_gathers: HashMap::new(),
            gather_ids: HashMap::new(),
            next_gather_id: 0,
            buf_pool,
            counters: DfsCounters::default(),
            obs: ObsHub::disabled(),
            trace: Trace::disabled(),
            node: None,
        }
    }

    /// Install the shared observability hub + trace ring, tagging this
    /// context with the storage node it runs on.
    pub fn set_obs(&mut self, obs: SharedObs, trace: SharedTrace, node: NodeId) {
        self.obs = obs;
        self.trace = trace;
        self.node = Some(node);
    }

    pub fn open_requests(&self) -> usize {
        self.req_table.len()
    }

    /// Stripe info needed by the host for CPU-fallback aggregation.
    pub fn fallback_stripe_info(&self, stripe: u64) -> Option<(u8, u32, u64, u64, NodeId)> {
        self.stripes
            .get(&stripe)
            .filter(|s| s.fallback)
            .map(|s| (s.k, s.chunk_len, s.final_addr, s.greq, s.client))
    }

    /// Host finished fallback aggregation; drop the stripe state.
    pub fn complete_fallback(&mut self, stripe: u64) {
        self.stripes.remove(&stripe);
    }

    /// Claim a validated gather read announced via [`EVT_GATHER`].
    pub fn take_pending_gather(&mut self, id: u64) -> Option<PendingGather> {
        let g = self.pending_gathers.remove(&id)?;
        self.gather_ids.remove(&g.msg);
        Some(g)
    }

    fn rs(&mut self, scheme: RsScheme) -> &ReedSolomon {
        self.rs_cache
            .entry((scheme.k, scheme.m))
            .or_insert_with(|| {
                ReedSolomon::new(scheme.k as usize, scheme.m as usize).expect("valid RS")
            })
    }

    fn alloc_fwd_msg(&mut self, node: NodeId) -> MsgId {
        // High bit namespaces NIC-originated messages away from host ones.
        let m = MsgId::new(node as u32, 0x8000_0000_0000_0000 | self.next_fwd_seq);
        self.next_fwd_seq += 1;
        m
    }
}

/// The handler set installed on storage-node NICs.
pub struct DfsHandlers;

fn state_of(any: &mut dyn Any) -> &mut DfsNicState {
    any.downcast_mut::<DfsNicState>()
        .expect("execution context state is DfsNicState")
}

fn write_pkt(frame: &Frame) -> Option<&WritePkt> {
    match frame {
        Frame::Write(w) => Some(w),
        _ => None,
    }
}

/// `DFS_gather_init`: authenticate a gather read once on the NIC and park
/// it for the gather engine. The completion handler signals the host after
/// the pipeline retires.
fn gather_header(st: &mut DfsNicState, g: &GatherReqPkt, src: NodeId, now: Time, ops: &mut Ops) {
    st.counters.requests_seen += 1;
    let ok = g
        .dfs
        .capability
        .verify(&st.key, now.as_ns() as u64, Rights::READ)
        .is_ok();
    if !ok {
        st.counters.auth_failures += 1;
        ops.send(
            src,
            Frame::Ack(AckPkt {
                credit: CreditGrant::ZERO,
                msg: g.msg,
                greq_id: Some(g.dfs.greq_id),
                status: Status::AuthFailed,
            }),
        );
        return;
    }
    st.counters.gather_reqs += 1;
    st.obs
        .borrow_mut()
        .spans
        .mark_corr_once(g.dfs.greq_id, phase::NIC_VALIDATED, now);
    st.trace.borrow_mut().emit_from(now, "nic", st.node, || {
        format!(
            "gather-validate greq={} segs={} len={}",
            g.dfs.greq_id,
            g.grh.segments.len(),
            g.grh.total_len
        )
    });
    let id = st.next_gather_id & 0xFFFF_FFFF;
    st.next_gather_id += 1;
    st.gather_ids.insert(g.msg, id);
    st.pending_gathers.insert(
        id,
        PendingGather {
            client: src,
            msg: g.msg,
            greq: g.dfs.greq_id,
            grh: g.grh.clone(),
        },
    );
}

impl HandlerSet for DfsHandlers {
    /// `DFS_request_init` (Listing 1): authenticate and set up state.
    fn header(&mut self, a: HandlerArgs<'_>) {
        let st = state_of(a.state);
        let costs = st.costs.clone();
        a.ops.charge_instrs(costs.hh_instrs, costs.hh_ipc);
        if let Frame::GatherReq(g) = a.frame {
            gather_header(st, g, a.src, a.now, a.ops);
            return;
        }
        let Some(w) = write_pkt(a.frame) else {
            return;
        };
        let (Some(dfs), Some(wrh)) = (w.dfs, w.wrh.clone()) else {
            return; // malformed: no headers; drop silently
        };
        st.counters.requests_seen += 1;
        let data_pkts = if w.data.is_empty() {
            w.total_pkts.saturating_sub(1)
        } else {
            w.total_pkts
        };

        // Authenticate: signature, expiry, rights (§IV threat model:
        // untrusted clients, trusted network).
        let ok = dfs
            .capability
            .verify(&st.key, a.now.as_ns() as u64, Rights::WRITE)
            .is_ok();
        if !ok {
            st.counters.auth_failures += 1;
            st.req_table.insert(
                w.msg,
                ReqEntry {
                    greq: dfs.greq_id,
                    accept: false,
                    client: dfs.client as NodeId,
                    dfs,
                    wrh,
                    fwd: Vec::new(),
                    data_pkts,
                    fwd_sent: 0,
                },
            );
            // DFS_request_init sends NACK if request auth fails.
            a.ops.send(
                dfs.client as NodeId,
                Frame::Ack(AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: w.msg,
                    greq_id: Some(dfs.greq_id),
                    status: Status::AuthFailed,
                }),
            );
            return;
        }
        // First packet of a request validated on the NIC: mark the phase
        // on the originating client op's span (greq-correlated).
        st.obs
            .borrow_mut()
            .spans
            .mark_corr_once(dfs.greq_id, phase::NIC_VALIDATED, a.now);
        st.trace.borrow_mut().emit_from(a.now, "nic", st.node, || {
            format!("hdr-validate greq={}", dfs.greq_id)
        });

        let mut fwd = Vec::new();
        match &wrh.resiliency {
            Resiliency::None => {}
            Resiliency::Replicate {
                strategy,
                vrank,
                coords,
            } => {
                // Client-driven broadcast (§V-A): the WRH carries the full
                // coordinate list; pick our children from it. The header
                // handler emits each forward stream's (empty) header packet
                // itself: payload handlers run concurrently on independent
                // HPUs, so only the HH can guarantee the header leaves
                // first.
                for child in bcast_children(*strategy, *vrank, coords.len()) {
                    let dst = coords[child as usize].node as NodeId;
                    let msg = st.alloc_fwd_msg(a.local);
                    let stream = FwdStream {
                        msg,
                        dst,
                        wrh: WriteReqHeader {
                            target_addr: coords[child as usize].addr,
                            len: wrh.len,
                            resiliency: Resiliency::Replicate {
                                strategy: *strategy,
                                vrank: child,
                                coords: coords.clone(),
                            },
                        },
                    };
                    a.ops.send(
                        stream.dst,
                        Frame::Write(WritePkt {
                            msg: stream.msg,
                            pkt_idx: 0,
                            total_pkts: data_pkts + 1,
                            dfs: Some(dfs),
                            wrh: Some(stream.wrh.clone()),
                            offset: 0,
                            data: Bytes::new(),
                        }),
                    );
                    fwd.push(stream);
                }
            }
            Resiliency::ErasureCode(info) => match info.role {
                EcRole::Data { chunk_idx } => {
                    // One intermediate-parity stream per parity node. The
                    // header handler emits an explicit (empty) header packet
                    // for each stream: payload-handler durations depend on
                    // payload size, so without this a short tail packet's
                    // parity could overtake the stream header on the wire —
                    // sPIN requires headers to arrive first.
                    for (p, coord) in info.parity_coords.iter().enumerate() {
                        let msg = st.alloc_fwd_msg(a.local);
                        let stream = FwdStream {
                            msg,
                            dst: coord.node as NodeId,
                            wrh: WriteReqHeader {
                                target_addr: coord.addr,
                                len: wrh.len,
                                resiliency: Resiliency::ErasureCode(EcInfo {
                                    scheme: info.scheme,
                                    role: EcRole::Parity {
                                        parity_idx: p as u8,
                                        src_chunk: chunk_idx,
                                    },
                                    stripe: info.stripe,
                                    parity_coords: vec![*coord],
                                }),
                            },
                        };
                        a.ops.send(
                            stream.dst,
                            Frame::Write(WritePkt {
                                msg: stream.msg,
                                pkt_idx: 0,
                                total_pkts: data_pkts + 1,
                                dfs: Some(dfs),
                                wrh: Some(stream.wrh.clone()),
                                offset: 0,
                                data: Bytes::new(),
                            }),
                        );
                        fwd.push(stream);
                    }
                }
                EcRole::Parity { .. } => {
                    // Parity node: make sure the stripe state exists and
                    // decide NIC vs host aggregation for this stripe.
                    let stripe = info.stripe;
                    if !st.stripes.contains_key(&stripe) {
                        let needed = wrh
                            .len
                            .div_ceil(nadfs_wire::sizes::max_payload_plain())
                            .max(1) as usize;
                        let fallback = st.acc_free < needed;
                        let reserved = if fallback {
                            st.counters.accumulator_fallbacks += 1;
                            0
                        } else {
                            st.acc_free -= needed;
                            needed
                        };
                        st.stripes.insert(
                            stripe,
                            StripeState {
                                k: info.scheme.k,
                                chunk_len: wrh.len,
                                greq: dfs.greq_id,
                                client: dfs.client as NodeId,
                                final_addr: wrh.target_addr,
                                ch_done: 0,
                                fallback,
                                reserved,
                            },
                        );
                    }
                }
            },
        }

        st.req_table.insert(
            w.msg,
            ReqEntry {
                greq: dfs.greq_id,
                accept: true,
                client: dfs.client as NodeId,
                dfs,
                wrh,
                fwd,
                data_pkts,
                fwd_sent: 0,
            },
        );
    }

    /// `DFS_request_process_pkt` (Listing 1): commit and enforce policies.
    fn payload(&mut self, a: HandlerArgs<'_>) {
        let st = state_of(a.state);
        let costs = st.costs.clone();
        if let Frame::GatherReq(g) = a.frame {
            // One fetch/DMA descriptor posted per segment (plus one per
            // reconstruction copy when the EC engine is involved).
            let descs =
                g.grh.segments.len() + g.grh.reconstruct.as_ref().map_or(0, |r| r.copy.len());
            a.ops
                .charge_instrs(costs.ph_instrs * descs.max(1) as u64, costs.ph_ipc);
            return;
        }
        let Some(w) = write_pkt(a.frame) else {
            return;
        };
        let Some(entry) = st.req_table.get(&a.msg).cloned() else {
            a.ops.charge_instrs(5, 1.0);
            return; // unknown message (e.g. cleaned up): drop
        };
        if !entry.accept {
            a.ops.charge_instrs(5, 1.0); // drop branch of Listing 1
            return;
        }
        // Per-packet phase mark: one `nic-pkt` mark per payload-handler run
        // on the request's span, so traces show the intra-message pipeline.
        st.obs
            .borrow_mut()
            .spans
            .mark_corr(entry.greq, phase::NIC_PKT, a.now);

        match &entry.wrh.resiliency {
            Resiliency::None => {
                a.ops.charge_instrs(costs.ph_instrs, costs.ph_ipc);
                a.ops
                    .dma_write(entry.wrh.target_addr + w.offset as u64, w.data.clone());
                st.counters.packets_committed += 1;
            }
            Resiliency::Replicate { strategy, .. } => {
                let (instrs, ipc) = match strategy {
                    nadfs_wire::BcastStrategy::Ring => (costs.ph_ring_instrs, costs.ph_ring_ipc),
                    nadfs_wire::BcastStrategy::Pbt => (costs.ph_pbt_instrs, costs.ph_pbt_ipc),
                };
                a.ops.charge_instrs(instrs, ipc);
                a.ops
                    .dma_write(entry.wrh.target_addr + w.offset as u64, w.data.clone());
                st.counters.packets_committed += 1;
                if w.data.is_empty() {
                    return; // forwarded stream-header packet: no data
                }
                // Outgoing stream slot: 0 is the HH's header packet; data
                // packets take the next free slot (arrival order — offsets
                // carry the placement, so slot order is bookkeeping only).
                let slot = {
                    let e = st.req_table.get_mut(&a.msg).expect("live request");
                    e.fwd_sent += 1;
                    e.fwd_sent
                };
                for f in &entry.fwd {
                    a.ops.send(
                        f.dst,
                        Frame::Write(WritePkt {
                            msg: f.msg,
                            pkt_idx: slot,
                            total_pkts: entry.data_pkts + 1,
                            dfs: None,
                            wrh: None,
                            offset: w.offset,
                            data: w.data.clone(),
                        }),
                    );
                    st.counters.packets_forwarded += 1;
                }
            }
            Resiliency::ErasureCode(info) => match info.role {
                EcRole::Data { chunk_idx } => {
                    let m = info.scheme.m;
                    a.ops
                        .charge_instrs(costs.ec_ph_instrs(m, w.data.len()), costs.ec_ph_ipc);
                    a.ops
                        .dma_write(entry.wrh.target_addr + w.offset as u64, w.data.clone());
                    st.counters.packets_committed += 1;
                    if w.data.is_empty() {
                        return; // stream-header packet: nothing to encode
                    }
                    // Per-packet streaming encode (§VI-B): multiply by the
                    // parity coefficient, forward the product into the next
                    // stream slot (slot 0 is the HH's header packet).
                    let slot = {
                        let e = st.req_table.get_mut(&a.msg).expect("live request");
                        e.fwd_sent += 1;
                        e.fwd_sent
                    };
                    let scheme = info.scheme;
                    for (p, f) in entry.fwd.iter().enumerate() {
                        let coef = st.rs(scheme).parity_coef(p, chunk_idx as usize);
                        // Pooled product buffer + in-place wide-word
                        // multiply: no allocation once the ring warms up.
                        let mut ipar = st.buf_pool.borrow_mut().get_dirty(w.data.len());
                        nadfs_gfec::intermediate_parity_into(coef, &w.data, &mut ipar);
                        a.ops.send(
                            f.dst,
                            Frame::Write(WritePkt {
                                msg: f.msg,
                                pkt_idx: slot,
                                total_pkts: entry.data_pkts + 1,
                                dfs: None,
                                wrh: None,
                                offset: w.offset,
                                data: Bytes::from(ipar),
                            }),
                        );
                        st.counters.parity_packets_sent += 1;
                    }
                }
                EcRole::Parity { src_chunk, .. } => {
                    let bytes = w.data.len();
                    let instrs = (bytes as f64 * costs.ec_agg_instrs_per_byte) as u64 + 20;
                    a.ops.charge_instrs(instrs, costs.ec_ph_ipc);
                    if bytes == 0 {
                        return; // stream-header packet: nothing to XOR
                    }
                    let stripe = info.stripe;
                    let Some(sst) = st.stripes.get(&stripe) else {
                        return;
                    };
                    let k = sst.k;
                    let chunk_len = sst.chunk_len;
                    let final_addr = sst.final_addr;
                    let staging =
                        final_addr + (1 + src_chunk as u64) * chunk_len as u64 + w.offset as u64;
                    if sst.fallback {
                        // Host aggregates: stage the intermediate parity.
                        a.ops.dma_write(staging, w.data.clone());
                        return;
                    }
                    // NIC aggregation: XOR into the accumulator for this
                    // aggregation sequence (keyed by stripe and offset).
                    // The budget was reserved at header time; the buffer
                    // comes from the recycled ring (the device returns it
                    // after the final parity's DMA write retires).
                    let key = (stripe, w.offset);
                    let acc = st.accs.entry(key).or_insert_with(|| AccEntry {
                        buf: st.buf_pool.borrow_mut().get(bytes),
                        got: 0,
                    });
                    if acc.buf.len() < bytes {
                        acc.buf.resize(bytes, 0);
                    }
                    nadfs_gfec::gf256::xor_slice(&w.data, &mut acc.buf[..bytes]);
                    acc.got += 1;
                    if acc.got == k {
                        let acc = st.accs.remove(&key).expect("present");
                        st.acc_free += 1;
                        a.ops
                            .dma_write(final_addr + w.offset as u64, Bytes::from(acc.buf));
                    }
                }
            },
        }
    }

    /// `DFS_request_fini` (Listing 1): flush, acknowledge, release state.
    fn completion(&mut self, a: HandlerArgs<'_>) {
        let st = state_of(a.state);
        let costs = st.costs.clone();
        if matches!(a.frame, Frame::GatherReq(_)) {
            a.ops.charge_instrs(costs.ch_instrs, costs.ch_ipc);
            // Hand the validated gather to the NIC core's gather engine
            // once the pipeline retires (denied requests never registered).
            if let Some(id) = st.gather_ids.get(&a.msg) {
                a.ops.host_event(EVT_GATHER | *id);
            }
            return;
        }
        let Some(entry) = st.req_table.remove(&a.msg) else {
            a.ops.charge_instrs(5, 1.0);
            return;
        };
        a.ops.charge_instrs(costs.ch_instrs, costs.ch_ipc);
        if !entry.accept {
            return; // NACK already sent by the header handler
        }
        let is_parity_stream = matches!(
            entry.wrh.resiliency,
            Resiliency::ErasureCode(EcInfo {
                role: EcRole::Parity { .. },
                ..
            })
        );
        if !is_parity_stream {
            // Explicit flush before acknowledging (§III-B-1).
            a.ops.wait_flush();
            a.ops.send(
                entry.client,
                Frame::Ack(AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: a.msg,
                    greq_id: Some(entry.greq),
                    status: Status::Ok,
                }),
            );
            return;
        }
        // Parity node: ack the client only when all k streams completed.
        let Resiliency::ErasureCode(info) = &entry.wrh.resiliency else {
            unreachable!();
        };
        let stripe = info.stripe;
        let Some(sst) = st.stripes.get_mut(&stripe) else {
            return;
        };
        sst.ch_done += 1;
        if sst.ch_done == sst.k {
            if sst.fallback {
                // Host finishes the aggregation; it will ack the client.
                a.ops.host_event(EVT_EC_FALLBACK | (stripe & 0xFFFF_FFFF));
            } else {
                let client = sst.client;
                let greq = sst.greq;
                let reserved = sst.reserved;
                st.stripes.remove(&stripe);
                st.acc_free += reserved;
                a.ops.wait_flush();
                a.ops.send(
                    client,
                    Frame::Ack(AckPkt {
                        credit: CreditGrant::ZERO,
                        msg: a.msg,
                        greq_id: Some(greq),
                        status: Status::Ok,
                    }),
                );
            }
        }
    }

    /// Cleanup handler (§VII): reclaim dangling state, tell the host.
    fn cleanup(&mut self, state: &mut dyn Any, msg: MsgId, ops: &mut Ops) {
        let st = state_of(state);
        let costs = st.costs.clone();
        ops.charge_instrs(costs.cleanup_instrs, 1.0);
        st.req_table.remove(&msg);
        if let Some(id) = st.gather_ids.remove(&msg) {
            st.pending_gathers.remove(&id);
        }
        st.counters.cleanups += 1;
        ops.host_event(EVT_CLEANUP | (msg.seq & 0xFFFF_FFFF));
    }
}
