//! Storage-node software: the CPU-side enforcement paths the paper
//! compares the NIC offload against.
//!
//! * RPC writes (§IV "RPC"): the CPU validates the request, copies the
//!   buffered payload into the storage target, and acknowledges.
//! * RPC+RDMA writes (§IV "RPC+RDMA"): the CPU validates, then the NIC
//!   RDMA-reads the payload from the client and the CPU acknowledges.
//! * CPU-Ring / CPU-PBT replication (§V): chunks are copied out of the
//!   receive buffer and re-posted to the node's children in the broadcast
//!   schedule — two CPU copies per forwarded byte, which is exactly why
//!   the paper's CPU baselines flatten out.
//! * EC accumulator fallback (§VI-B-3): when the NIC accumulator pool was
//!   exhausted, intermediate parities were staged to host memory and the
//!   CPU finishes the XOR aggregation.
//! * Cleanup events (§VII): surfaced by the NIC after client failures.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use nadfs_pspin::HostNotify;
use nadfs_rdma::{NicApp, NicCore};
use nadfs_simnet::telemetry::phase;
use nadfs_simnet::{
    Ctx, NodeId, ObsHub, SharedObs, SharedTrace, TenantId, TenantScheduler, Time, Trace,
};
use nadfs_wire::{
    bcast_children, AckPkt, CreditGrant, DfsHeader, MacKey, MsgId, ReadReqHeader, Resiliency,
    Rights, RpcBody, Status, WriteReqHeader,
};

use crate::handlers::{DfsNicState, EVT_CLEANUP, EVT_EC_FALLBACK, EVT_GATHER};

/// Observable storage-node statistics (shared with tests/harnesses).
#[derive(Debug, Default)]
pub struct StorageStats {
    pub rpc_writes: u64,
    pub rpc_rdma_writes: u64,
    /// CPU-validated reads served through the RPC read protocol.
    pub rpc_reads: u64,
    pub chunks_forwarded: u64,
    pub auth_failures: u64,
    pub fallback_aggregations: u64,
    pub cleanup_events: u64,
    pub meta_lookups: u64,
    /// Stripe units the metadata service placed on this node (filled in
    /// by the control plane at placement time; striped plain writes
    /// only — replication/EC fan-out is counted by their own fields).
    pub stripe_chunks_placed: u64,
    /// Re-protected shards the repair pipeline committed to this node
    /// (this node was chosen as the spare).
    pub repair_chunks_hosted: u64,
    /// Gauge: extent shards currently live on this node per the extent
    /// maps (commit adds, re-home away / unlink / reclaim subtracts).
    pub chunks_hosted: u64,
    /// Gauge: payload bytes behind `chunks_hosted`.
    pub bytes_hosted: u64,
    /// Shards garbage-collected by recovery reconciliation: the extent
    /// was re-homed (or unlinked) while this node was down, so its copy
    /// came back stale and was reclaimed.
    pub stale_chunks_reclaimed: u64,
    /// Payload bytes behind `stale_chunks_reclaimed`.
    pub stale_bytes_reclaimed: u64,
}

pub type SharedStorageStats = Rc<RefCell<StorageStats>>;

/// Deferred CPU completion: what to do once the CPU finishes a task.
enum AfterCpu {
    AckClient {
        dst: NodeId,
        ack: AckPkt,
    },
    ForwardChunk {
        dst: NodeId,
        body: RpcBody,
        data: Bytes,
    },
    FetchData {
        client: NodeId,
        src_addr: u64,
        len: u32,
        local_addr: u64,
        token: u64,
    },
    /// CPU validated an RPC read: stream the bytes back to the client.
    StreamRead {
        dst: NodeId,
        msg: MsgId,
        addr: u64,
        len: u32,
    },
    FinishFallback,
    /// A QoS-admitted RPC's synchronous service drained: free its
    /// concurrency slot and admit the next scheduled request.
    ServiceDone,
}

/// One in-progress RPC+RDMA write awaiting its data fetch.
struct PendingFetch {
    client: NodeId,
    msg: MsgId,
    greq: u64,
}

/// An RPC held back by the per-tenant scheduler.
pub struct QueuedRpc {
    src: NodeId,
    msg: MsgId,
    body: RpcBody,
    data: Bytes,
}

/// Per-tenant weighted fair queueing of storage RPC service: incoming
/// write/read RPCs drain in deficit-round-robin order with a bound on
/// concurrently-serviced requests, so one tenant's burst cannot occupy
/// the whole CPU dispatch pipeline.
pub struct StorageQos {
    sched: TenantScheduler<QueuedRpc>,
    active: usize,
    pub max_concurrency: usize,
}

impl StorageQos {
    pub fn new(
        quantum: u64,
        default_weight: u32,
        weights: &[(TenantId, u32)],
        max_concurrency: usize,
    ) -> StorageQos {
        let mut sched = TenantScheduler::new(quantum, default_weight);
        for &(t, w) in weights {
            sched.set_weight(t, w);
        }
        StorageQos {
            sched,
            active: 0,
            max_concurrency: max_concurrency.max(1),
        }
    }

    /// Tenant backlog + dispatch ledgers (exported by cluster snapshots).
    pub fn scheduler(&self) -> &TenantScheduler<QueuedRpc> {
        &self.sched
    }
}

/// The storage node software.
pub struct StorageApp {
    key: MacKey,
    pub stats: SharedStorageStats,
    /// Network line rate, used to model the receive-copy overlap: while a
    /// long SEND is still arriving, the CPU copies the already-received
    /// prefix, so only the residual is serial after the last packet.
    wire_bw: nadfs_simnet::Bandwidth,
    deferred: Vec<(u64, AfterCpu)>,
    next_tag: u64,
    fetches: Vec<(u64, PendingFetch)>,
    /// Per-(greq) progress of chunked replicated writes at this node.
    progress: Vec<(u64, u32)>,
    /// Observability: span phase marks (greq-correlated) + trace ring.
    /// Both default disabled; the cluster build installs the live hubs.
    pub obs: SharedObs,
    pub trace: SharedTrace,
    /// Per-tenant fair queueing of RPC service (None = first-come
    /// dispatch, the pre-QoS behavior).
    pub qos: Option<StorageQos>,
}

const TAG_BASE: u64 = 0x5347_0000_0000_0000;

impl StorageApp {
    pub fn new(key: MacKey, wire_bw: nadfs_simnet::Bandwidth) -> StorageApp {
        StorageApp {
            key,
            stats: Rc::new(RefCell::new(StorageStats::default())),
            wire_bw,
            deferred: Vec::new(),
            next_tag: 0,
            fetches: Vec::new(),
            progress: Vec::new(),
            obs: ObsHub::disabled(),
            trace: Trace::disabled(),
            qos: None,
        }
    }

    /// Mark `cpu-validated` on the greq-correlated span and note the
    /// validation on this node's storage track.
    fn note_cpu_validated(&self, nic: &NicCore, greq: u64, at: Time) {
        self.obs
            .borrow_mut()
            .spans
            .mark_corr_once(greq, phase::CPU_VALIDATED, at);
        self.trace
            .borrow_mut()
            .emit_from(at, "storage", Some(nic.node()), || {
                format!("cpu-validate greq={greq}")
            });
    }

    /// Serial copy time left after the last packet of an inline write:
    /// the copy overlapped reception, so only the slowdown residual (plus
    /// one pipelining granule) remains.
    fn residual_copy(&self, nic: &NicCore, len: u64) -> nadfs_simnet::Dur {
        let full = nic.cpu.memcpy_cost(len);
        let wire = self.wire_bw.tx_time(len);
        let granule = nic.cpu.memcpy_cost(len.min(16 << 10));
        if full.ps() > wire.ps() {
            (full - wire) + granule
        } else {
            granule
        }
    }

    fn defer(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, at: Time, what: AfterCpu) {
        let tag = TAG_BASE | self.next_tag;
        self.next_tag += 1;
        self.deferred.push((tag, what));
        nic.set_timer(ctx, at.since(ctx.now()), tag);
    }

    fn progress_add(&mut self, greq: u64, bytes: u32) -> u32 {
        if let Some(e) = self.progress.iter_mut().find(|(g, _)| *g == greq) {
            e.1 += bytes;
            return e.1;
        }
        self.progress.push((greq, bytes));
        bytes
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_write_req(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        msg: MsgId,
        dfs: DfsHeader,
        wrh: WriteReqHeader,
        inline_data: bool,
        src_addr: u64,
        chunk_off: u32,
        full_len: u32,
        data: Bytes,
    ) {
        let now = ctx.now();
        // CPU wakes up, dispatches, validates the capability.
        let costs = nic.cpu.costs.clone();
        let t_val = nic
            .cpu
            .exec(now + costs.poll_notify, costs.rpc_dispatch + costs.validate);
        let valid = dfs
            .capability
            .verify(&self.key, now.as_ns() as u64, Rights::WRITE)
            .is_ok();
        if !valid {
            self.stats.borrow_mut().auth_failures += 1;
            let ack = AckPkt {
                credit: CreditGrant::ZERO,
                msg,
                greq_id: Some(dfs.greq_id),
                status: Status::AuthFailed,
            };
            self.defer(nic, ctx, t_val, AfterCpu::AckClient { dst: src, ack });
            return;
        }
        self.note_cpu_validated(nic, dfs.greq_id, t_val);

        if !inline_data {
            // RPC+RDMA: fetch the payload from the client with a one-sided
            // read; completion continues in `on_read_done`.
            self.stats.borrow_mut().rpc_rdma_writes += 1;
            let token = TAG_BASE | self.next_tag;
            self.next_tag += 1;
            self.fetches.push((
                token,
                PendingFetch {
                    client: src,
                    msg,
                    greq: dfs.greq_id,
                },
            ));
            self.defer(
                nic,
                ctx,
                t_val,
                AfterCpu::FetchData {
                    client: src,
                    src_addr,
                    len: wrh.len,
                    local_addr: wrh.target_addr,
                    token,
                },
            );
            return;
        }

        // Inline RPC write: copy from the receive buffer to the target.
        self.stats.borrow_mut().rpc_writes += 1;
        let copy = match &wrh.resiliency {
            // Plain buffered write: the copy pipelines with reception.
            Resiliency::None => self.residual_copy(nic, data.len() as u64),
            // Chunked replication: chunks overlap each other instead; the
            // full store + forward copies stay serial per chunk.
            _ => nic.cpu.memcpy_cost(data.len() as u64),
        };
        let t_store = nic.cpu.exec(t_val, copy);
        nic.memory().borrow_mut().write(wrh.target_addr, &data);

        match &wrh.resiliency {
            Resiliency::None => {
                let ack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg,
                    greq_id: Some(dfs.greq_id),
                    status: Status::Ok,
                };
                let t_ack = nic.cpu.exec(t_store, nic.cpu.costs.post_send);
                self.defer(nic, ctx, t_ack, AfterCpu::AckClient { dst: src, ack });
            }
            Resiliency::Replicate {
                strategy,
                vrank,
                coords,
            } => {
                // Ack the client once every chunk of the write landed here.
                let done = self.progress_add(dfs.greq_id, data.len() as u32);
                if done >= full_len {
                    self.progress.retain(|(g, _)| *g != dfs.greq_id);
                    let ack = AckPkt {
                        credit: CreditGrant::ZERO,
                        msg,
                        greq_id: Some(dfs.greq_id),
                        status: Status::Ok,
                    };
                    let t_ack = nic.cpu.exec(t_store, nic.cpu.costs.post_send);
                    self.defer(
                        nic,
                        ctx,
                        t_ack,
                        AfterCpu::AckClient {
                            dst: dfs.client as NodeId,
                            ack,
                        },
                    );
                }
                // Forward the chunk to our children: a second CPU copy into
                // the send staging buffer plus a post per child.
                let children = bcast_children(*strategy, *vrank, coords.len());
                for child in children {
                    self.stats.borrow_mut().chunks_forwarded += 1;
                    let copy2 = nic.cpu.memcpy_cost(data.len() as u64);
                    let t_fwd = nic.cpu.exec(t_store, copy2 + nic.cpu.costs.post_send);
                    let child_wrh = WriteReqHeader {
                        target_addr: coords[child as usize].addr + chunk_off as u64,
                        len: data.len() as u32,
                        resiliency: Resiliency::Replicate {
                            strategy: *strategy,
                            vrank: child,
                            coords: coords.clone(),
                        },
                    };
                    let body = RpcBody::WriteReq {
                        dfs,
                        wrh: child_wrh,
                        inline_data: true,
                        src_addr: 0,
                        chunk_off,
                        full_len,
                    };
                    self.defer(
                        nic,
                        ctx,
                        t_fwd,
                        AfterCpu::ForwardChunk {
                            dst: coords[child as usize].node as NodeId,
                            body,
                            data: data.clone(),
                        },
                    );
                }
            }
            Resiliency::ErasureCode(_) => {
                // CPU-side EC is not one of the paper's baselines; treat as
                // a plain store.
                let ack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg,
                    greq_id: Some(dfs.greq_id),
                    status: Status::Ok,
                };
                let t_ack = nic.cpu.exec(t_store, nic.cpu.costs.post_send);
                self.defer(nic, ctx, t_ack, AfterCpu::AckClient { dst: src, ack });
            }
        }
    }
}

impl StorageApp {
    /// Admit queued RPCs up to the service-concurrency limit, in DRR
    /// order. Each admission holds its slot until the CPU dispatch
    /// pipeline drains past it (the deferred `ServiceDone`).
    fn pump_qos(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>) {
        loop {
            let Some(q) = self.qos.as_mut() else {
                return;
            };
            if q.active >= q.max_concurrency {
                return;
            }
            let Some((_tenant, rpc)) = q.sched.pop() else {
                return;
            };
            q.active += 1;
            self.dispatch_rpc(nic, ctx, rpc.src, rpc.msg, rpc.body, rpc.data);
            // The CPU frontier after dispatching is when this request's
            // synchronous service (validate/copy/post) ends: free the
            // slot there. Zero-cost exec reads the frontier.
            let done = nic.cpu.exec(ctx.now(), nadfs_simnet::Dur::ZERO);
            self.defer(nic, ctx, done, AfterCpu::ServiceDone);
        }
    }

    fn dispatch_rpc(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        msg: MsgId,
        body: RpcBody,
        data: Bytes,
    ) {
        match body {
            RpcBody::WriteReq {
                dfs,
                wrh,
                inline_data,
                src_addr,
                chunk_off,
                full_len,
            } => self.handle_write_req(
                nic,
                ctx,
                src,
                msg,
                dfs,
                wrh,
                inline_data,
                src_addr,
                chunk_off,
                full_len,
                data,
            ),
            RpcBody::ReadReq { dfs, rrh } => {
                // CPU-validated read (the RPC baseline): the CPU wakes,
                // dispatches, verifies the capability, then posts the
                // response stream through the NIC's read responder —
                // zero-copy out of the storage target.
                let now = ctx.now();
                let costs = nic.cpu.costs.clone();
                let t_val = nic
                    .cpu
                    .exec(now + costs.poll_notify, costs.rpc_dispatch + costs.validate);
                let valid = dfs
                    .capability
                    .verify(&self.key, now.as_ns() as u64, Rights::READ)
                    .is_ok();
                if !valid {
                    self.stats.borrow_mut().auth_failures += 1;
                    let ack = AckPkt {
                        credit: CreditGrant::ZERO,
                        msg,
                        greq_id: Some(dfs.greq_id),
                        status: Status::AuthFailed,
                    };
                    self.defer(nic, ctx, t_val, AfterCpu::AckClient { dst: src, ack });
                    return;
                }
                // Same protection boundary as the one-sided path: a read
                // outside a registered region is rejected, not streamed.
                if !nic.mr_allows(rrh.addr, rrh.len as u64) {
                    let ack = AckPkt {
                        credit: CreditGrant::ZERO,
                        msg,
                        greq_id: Some(dfs.greq_id),
                        status: Status::Rejected,
                    };
                    self.defer(nic, ctx, t_val, AfterCpu::AckClient { dst: src, ack });
                    return;
                }
                self.stats.borrow_mut().rpc_reads += 1;
                self.note_cpu_validated(nic, dfs.greq_id, t_val);
                let t_post = nic.cpu.exec(t_val, costs.post_send);
                self.defer(
                    nic,
                    ctx,
                    t_post,
                    AfterCpu::StreamRead {
                        dst: src,
                        msg,
                        addr: rrh.addr,
                        len: rrh.len,
                    },
                );
            }
            RpcBody::MetaLookupReq { file } => {
                self.stats.borrow_mut().meta_lookups += 1;
                let now = ctx.now();
                let costs = nic.cpu.costs.clone();
                let t = nic.cpu.exec(now + costs.poll_notify, costs.rpc_dispatch);
                let _ = t;
                nic.send_rpc(
                    ctx,
                    src,
                    RpcBody::MetaLookupResp { file, ok: true },
                    Bytes::new(),
                );
            }
            RpcBody::MetaLookupResp { .. } => {}
        }
    }
}

impl NicApp for StorageApp {
    fn on_rpc(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        msg: MsgId,
        body: RpcBody,
        data: Bytes,
    ) {
        // Write/read service goes through the per-tenant scheduler when
        // QoS is on; metadata lookups stay out of band (they are latency
        // critical and tiny).
        let qos_eligible = matches!(body, RpcBody::WriteReq { .. } | RpcBody::ReadReq { .. })
            && self.qos.is_some();
        if !qos_eligible {
            self.dispatch_rpc(nic, ctx, src, msg, body, data);
            return;
        }
        let (tenant, cost) = match &body {
            RpcBody::WriteReq { dfs, wrh, .. } => (dfs.tenant, wrh.len.max(1) as u64),
            RpcBody::ReadReq { dfs, rrh } => (dfs.tenant, rrh.len.max(1) as u64),
            _ => unreachable!("eligibility checked above"),
        };
        self.qos.as_mut().expect("checked").sched.push(
            tenant,
            cost,
            QueuedRpc {
                src,
                msg,
                body,
                data,
            },
        );
        self.pump_qos(nic, ctx);
    }

    fn on_read_done(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, token: u64) {
        // RPC+RDMA data fetch completed: acknowledge the client.
        let Some(idx) = self.fetches.iter().position(|(t, _)| *t == token) else {
            return;
        };
        let (_, f) = self.fetches.remove(idx);
        let now = ctx.now();
        let t_ack = nic.cpu.exec(now, nic.cpu.costs.post_send);
        let ack = AckPkt {
            credit: CreditGrant::ZERO,
            msg: f.msg,
            greq_id: Some(f.greq),
            status: Status::Ok,
        };
        self.defer(nic, ctx, t_ack, AfterCpu::AckClient { dst: f.client, ack });
    }

    fn on_host_notify(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, note: HostNotify) {
        if note.tag & EVT_CLEANUP == EVT_CLEANUP {
            self.stats.borrow_mut().cleanup_events += 1;
            return;
        }
        if note.tag & EVT_GATHER == EVT_GATHER {
            // The sPIN header handler already authenticated the request;
            // hand it straight to the NIC core's gather engine (the host
            // CPU never touches the data path).
            let id = note.tag & 0xFFFF_FFFF;
            let pending = nic
                .pspin_mut()
                .and_then(|d| d.context_state_mut())
                .and_then(|s| s.downcast_mut::<DfsNicState>())
                .and_then(|s| s.take_pending_gather(id));
            if let Some(g) = pending {
                nic.start_gather(ctx, g.client, g.msg, g.greq, g.grh);
            }
            return;
        }
        if note.tag & EVT_EC_FALLBACK == EVT_EC_FALLBACK {
            // The NIC staged intermediate parities; finish on the CPU.
            let stripe = note.tag & 0xFFFF_FFFF;
            let info = nic
                .pspin_mut()
                .and_then(|d| d.context_state_mut())
                .and_then(|s| s.downcast_mut::<DfsNicState>())
                .and_then(|s| s.fallback_stripe_info(stripe));
            let Some((k, chunk_len, final_addr, greq, client)) = info else {
                return;
            };
            self.stats.borrow_mut().fallback_aggregations += 1;
            // XOR k staged buffers into the final parity chunk.
            let mem = nic.memory();
            {
                let mut m = mem.borrow_mut();
                let mut acc = vec![0u8; chunk_len as usize];
                for j in 0..k {
                    let staged = m.read(
                        final_addr + (1 + j as u64) * chunk_len as u64,
                        chunk_len as usize,
                    );
                    for (a, b) in acc.iter_mut().zip(staged) {
                        *a ^= b;
                    }
                }
                m.write(final_addr, &acc);
            }
            if let Some(st) = nic
                .pspin_mut()
                .and_then(|d| d.context_state_mut())
                .and_then(|s| s.downcast_mut::<DfsNicState>())
            {
                st.complete_fallback(stripe);
            }
            let now = ctx.now();
            let costs = nic.cpu.costs.clone();
            let xor_cost = nic.cpu.memcpy_cost(k as u64 * chunk_len as u64);
            let t = nic
                .cpu
                .exec(now + costs.poll_notify, xor_cost + costs.post_send);
            self.defer(nic, ctx, t, AfterCpu::FinishFallback);
            // Stash ack info alongside.
            let ack = AckPkt {
                credit: CreditGrant::ZERO,
                msg: MsgId::new(nic.node() as u32, greq),
                greq_id: Some(greq),
                status: Status::Ok,
            };
            self.defer(nic, ctx, t, AfterCpu::AckClient { dst: client, ack });
        }
    }

    fn on_timer(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, tag: u64) {
        let Some(idx) = self.deferred.iter().position(|(t, _)| *t == tag) else {
            return;
        };
        let (_, what) = self.deferred.remove(idx);
        match what {
            AfterCpu::AckClient { dst, ack } => {
                nic.send_ack(ctx, dst, ack);
            }
            AfterCpu::ForwardChunk { dst, body, data } => {
                nic.send_rpc(ctx, dst, body, data);
            }
            AfterCpu::FetchData {
                client,
                src_addr,
                len,
                local_addr,
                token,
            } => {
                let rrh = ReadReqHeader {
                    addr: src_addr,
                    len,
                };
                nic.send_read(ctx, client, rrh, None, local_addr, token);
            }
            AfterCpu::StreamRead {
                dst,
                msg,
                addr,
                len,
            } => {
                nic.respond_read(ctx, dst, msg, addr, len);
            }
            AfterCpu::FinishFallback => {
                // Bookkeeping only; the paired AckClient does the talking.
            }
            AfterCpu::ServiceDone => {
                if let Some(q) = self.qos.as_mut() {
                    q.active = q.active.saturating_sub(1);
                }
                self.pump_qos(nic, ctx);
            }
        }
    }
}
