//! The background repair driver: drains the control plane's prioritized
//! repair queue by executing one [`Job::Repair`] at a time through a
//! client node's NIC.
//!
//! This is the paper's building-block thesis applied to recovery: the
//! repair traffic is ordinary data-path traffic — capability-validated
//! one-sided reads for the surviving shards, NIC-validated writes for the
//! re-protected chunks — decoupled from the clients that take the
//! degraded-read hits (Lustre OST recovery / AsyncFS-style asynchronous
//! background work). The driver is deliberately synchronous per task so
//! fault-injection harnesses can kill nodes *between* tasks and observe
//! convergence deterministically.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nadfs_simnet::{Dur, Time};
use nadfs_wire::Status;

use crate::client::{Job, RepairOutcome, RepairResult, RepairSlot};
use crate::cluster::SimCluster;
use crate::control::RepairTask;

/// What a full drain of the repair queue did.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Every task completion, in execution order (retries appear once per
    /// attempt).
    pub outcomes: Vec<RepairResult>,
    /// Tasks whose extent was re-protected (rebuilt or cloned).
    pub repaired: usize,
    /// Tasks that found every shard healthy (transient failure, or an
    /// earlier repair already covered them).
    pub already_healthy: usize,
    /// Tasks with a typed unrepairable reason (no redundancy left, no
    /// spare node). These are dropped, not retried.
    pub unrepairable: usize,
    /// Attempts that aborted on a data-path failure (each may have been
    /// retried up to the driver's attempt budget).
    pub aborted_attempts: usize,
    /// Tasks abandoned after exhausting the attempt budget.
    pub gave_up: usize,
    /// Total data-path bytes moved by committed repairs.
    pub bytes_moved: u64,
    /// Simulated milliseconds the driver idled to honor its bandwidth
    /// cap (zero when no cap is configured or the cap never bound).
    pub throttled_ms: u64,
}

impl RepairReport {
    /// True when the drain left nothing behind: no task gave up, so every
    /// queued extent is either re-protected, healthy, or provably
    /// unrepairable.
    pub fn converged(&self) -> bool {
        self.gave_up == 0
    }
}

/// Drains the repair queue through one client's driver.
pub struct RepairDriver {
    client: usize,
    /// Attempt budget per task (transient aborts requeue until spent).
    pub max_attempts: u32,
    /// Per-operation simulation deadline in simulated milliseconds.
    pub op_deadline_ms: u64,
    /// Windowed bandwidth cap: at most this many committed repair bytes
    /// per [`Self::throttle_window_ms`] of simulated time. Once a window's
    /// budget is spent the driver idles the cluster to the window
    /// boundary before pulling the next task, so foreground traffic runs
    /// against at most `bandwidth_cap / window` of background repair
    /// bandwidth. `None` (the default) disables throttling.
    pub bandwidth_cap: Option<u64>,
    /// Length of the throttle window in simulated milliseconds.
    pub throttle_window_ms: u64,
    attempts: HashMap<RepairTask, u32>,
    next_token: u64,
    window_start: Option<Time>,
    window_bytes: u64,
    throttled_ms: u64,
}

impl RepairDriver {
    /// A driver that executes repairs through client `client`'s NIC.
    pub fn new(client: usize) -> RepairDriver {
        RepairDriver {
            client,
            max_attempts: 3,
            op_deadline_ms: 10_000,
            bandwidth_cap: None,
            throttle_window_ms: 10,
            attempts: HashMap::new(),
            next_token: 0x5250_0000,
            window_start: None,
            window_bytes: 0,
            throttled_ms: 0,
        }
    }

    /// If the current throttle window's byte budget is spent, idle the
    /// cluster to the window boundary; roll the window forward either way.
    fn throttle(&mut self, cluster: &mut SimCluster) {
        let Some(cap) = self.bandwidth_cap else {
            return;
        };
        let window = Dur::from_ms(self.throttle_window_ms.max(1));
        let now = cluster.engine.now();
        let start = *self.window_start.get_or_insert(now);
        if now >= start + window {
            // The window elapsed on its own (slow repairs, foreground
            // interleaving): start a fresh one at the current time.
            self.window_start = Some(now);
            self.window_bytes = 0;
            return;
        }
        if self.window_bytes >= cap {
            let end = start + window;
            cluster.engine.run_until(end);
            let idled = cluster.engine.now().max(end);
            self.throttled_ms += (idled - now).0 / Dur::from_ms(1).0;
            self.window_start = Some(idled);
            self.window_bytes = 0;
        }
    }

    /// Pop and execute the highest-priority task, running the simulation
    /// until it completes. Transient aborts are requeued (up to the
    /// attempt budget); `None` means the queue is empty.
    pub fn step(&mut self, cluster: &mut SimCluster) -> Option<RepairResult> {
        self.throttle(cluster);
        let task = cluster.control.borrow_mut().pop_repair()?;
        let token = self.next_token;
        self.next_token += 1;
        let slot: RepairSlot = Rc::new(RefCell::new(None));
        cluster.submit(
            self.client,
            Job::Repair {
                task,
                token,
                slot: Some(slot.clone()),
            },
        );
        cluster.start();
        let result = cluster
            .run_until_slot(&slot, self.op_deadline_ms)
            .unwrap_or_else(|| RepairResult {
                // The simulation drained without completing the task
                // (e.g. a dead cluster): synthesize a typed abort so the
                // caller still sees the attempt.
                token,
                client: cluster.client_nodes[self.client],
                task,
                status: Status::Rejected,
                outcome: RepairOutcome::Aborted(Status::Rejected),
                start: cluster.engine.now(),
                end: cluster.engine.now(),
                bytes_moved: 0,
            });
        self.window_bytes += result.bytes_moved;
        if matches!(result.outcome, RepairOutcome::Aborted(_)) {
            let n = self.attempts.entry(task).or_insert(0);
            *n += 1;
            if *n < self.max_attempts {
                cluster.control.borrow_mut().requeue_repair(task);
            } else {
                // Attempt budget exhausted: the task is dead — release
                // its compaction pin so the extent map can shrink again.
                cluster.control.borrow_mut().abandon_repair(task);
            }
        }
        Some(result)
    }

    /// Drain the queue to empty, aggregating a report. The queue can grow
    /// mid-drain (new failures, degraded-read promotions, requeues); the
    /// attempt budget bounds the loop.
    pub fn drain(&mut self, cluster: &mut SimCluster) -> RepairReport {
        let mut report = RepairReport::default();
        let throttled_before = self.throttled_ms;
        while let Some(r) = self.step(cluster) {
            match &r.outcome {
                RepairOutcome::Rebuilt { .. } | RepairOutcome::Cloned { .. } => {
                    report.repaired += 1;
                    report.bytes_moved += r.bytes_moved;
                }
                RepairOutcome::AlreadyHealthy => report.already_healthy += 1,
                RepairOutcome::Unrepairable(_) => report.unrepairable += 1,
                RepairOutcome::Aborted(_) => {
                    report.aborted_attempts += 1;
                    if self.attempts.get(&r.task).copied().unwrap_or(0) >= self.max_attempts {
                        report.gave_up += 1;
                    }
                }
            }
            report.outcomes.push(r);
        }
        report.throttled_ms = self.throttled_ms - throttled_before;
        report
    }

    /// Total simulated milliseconds this driver has idled for throttling.
    pub fn throttled_ms(&self) -> u64 {
        self.throttled_ms
    }

    /// Attempts made so far on `task` (aborted executions only; a task
    /// that never aborted reports 0). Lets external drain loops — e.g.
    /// the fault-injection harness interleaving kills between tasks —
    /// apply the same gave-up accounting as [`Self::drain`].
    pub fn attempts_for(&self, task: RepairTask) -> u32 {
        self.attempts.get(&task).copied().unwrap_or(0)
    }
}
