//! The file-handle client API: `FsClient` / `FileHandle`.
//!
//! This is the facade the next layers program against — the shape
//! production DFS clients expose (Lustre object-handle I/O, AsyncFS /
//! SwitchFS-style clients that resolve layouts and then do striped
//! data-plane I/O): `open`/`create` resolve a path to a handle, and
//! `write_at`/`read_at`/`stat`/`close` move real bytes through the
//! simulated cluster underneath.
//!
//! Each operation is submitted to the owning client's driver as a typed
//! job carrying a oneshot completion slot ([`crate::client::WriteSlot`] /
//! [`crate::client::ReadSlot`]); the facade then drives the event
//! simulator in bounded slices until the slot fills. Completions are
//! per-op and typed — no digging through the shared [`ResultSink`]
//! grab-bags — and reads return the payload with a checksum so callers
//! can verify end-to-end integrity against the write's checksum.
//!
//! [`ResultSink`]: crate::client::ResultSink

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use nadfs_meta::{InodeAttr, InodeKind, LayoutSpec, MetaError};
use nadfs_simnet::{MetricsSnapshot, NodeId};
use nadfs_wire::Status;

use crate::client::{Job, ReadCompletion, ReadProtocol, WriteProtocol, WriteResult};
use crate::cluster::{SimCluster, StorageMode};
use crate::control::{FileMeta, FilePolicy};
use crate::repair::{RepairDriver, RepairReport};

/// Why a file-system operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// The metadata service rejected the operation.
    Meta(MetaError),
    /// The data path completed with a non-Ok status (authentication
    /// failure, rejection, unrecoverable data loss).
    Io(Status),
    /// The simulation hit its deadline before the operation completed.
    TimedOut,
    /// The handle was already closed.
    Closed,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Meta(e) => write!(f, "metadata error: {e}"),
            FsError::Io(s) => write!(f, "i/o failed: {s:?}"),
            FsError::TimedOut => write!(f, "operation timed out"),
            FsError::Closed => write!(f, "file handle is closed"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<MetaError> for FsError {
    fn from(e: MetaError) -> FsError {
        FsError::Meta(e)
    }
}

/// An open file: the resolved identity plus the protocols its I/O uses.
/// Handles are plain values — all I/O goes through [`FsClient`], which
/// owns the cluster.
#[derive(Clone, Debug)]
pub struct FileHandle {
    file: u64,
    path: String,
    /// Protocol used by `write_at` (defaults chosen from the file's
    /// policy and the cluster's storage mode; override freely).
    pub write_protocol: WriteProtocol,
    /// Protocol used by `read_at`.
    pub read_protocol: ReadProtocol,
    closed: bool,
}

impl FileHandle {
    /// The file id (its inode number).
    pub fn id(&self) -> u64 {
        self.file
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// This handle with a different read protocol (builder-style; the
    /// field is public too).
    pub fn with_read_protocol(mut self, p: ReadProtocol) -> FileHandle {
        self.read_protocol = p;
        self
    }
}

/// The client-side file system facade over a built [`SimCluster`].
pub struct FsClient {
    /// The cluster underneath (public: tests and examples inspect
    /// telemetry, storage memories, and the control plane directly).
    pub cluster: SimCluster,
    client: usize,
    next_token: u64,
    /// Per-operation simulation deadline in simulated milliseconds.
    pub op_deadline_ms: u64,
}

impl FsClient {
    /// Wrap a cluster, driving operations through client 0.
    pub fn new(cluster: SimCluster) -> FsClient {
        FsClient::for_client(cluster, 0)
    }

    /// Wrap a cluster, driving operations through client `client`.
    pub fn for_client(cluster: SimCluster, client: usize) -> FsClient {
        assert!(client < cluster.plans.len(), "no such client");
        FsClient {
            cluster,
            client,
            next_token: 1,
            op_deadline_ms: 10_000,
        }
    }

    /// Release the underlying cluster.
    pub fn into_cluster(self) -> SimCluster {
        self.cluster
    }

    /// Group this client into QoS tenant `t` (default: its own node id).
    /// Subsequent DFS requests carry `t` in their headers and are
    /// scheduled under that tenant's weight at the storage nodes.
    pub fn set_tenant(&self, t: nadfs_simnet::TenantId) {
        self.cluster.set_client_tenant(self.client, t);
    }

    /// Create every missing directory along `path`.
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), FsError> {
        let now = self.now_ns();
        self.cluster.control.borrow_mut().mkdir_p(path, now)?;
        Ok(())
    }

    /// Create a plain file at `path` with the given striping.
    pub fn create(&mut self, path: &str, spec: LayoutSpec) -> Result<FileHandle, FsError> {
        self.create_with_policy(path, spec, FilePolicy::Plain)
    }

    /// Create a file with an explicit resiliency policy (replication or
    /// erasure coding).
    pub fn create_with_policy(
        &mut self,
        path: &str,
        spec: LayoutSpec,
        policy: FilePolicy,
    ) -> Result<FileHandle, FsError> {
        let meta = self
            .cluster
            .control
            .borrow_mut()
            .create_file_at(path, spec, policy)?;
        Ok(self.handle_for(path, &meta))
    }

    /// Open an existing file by path.
    pub fn open(&mut self, path: &str) -> Result<FileHandle, FsError> {
        let (attr, meta) = {
            let mut control = self.cluster.control.borrow_mut();
            let (attr, _layout) = control.lookup_entry(path)?;
            if attr.kind != InodeKind::File {
                return Err(FsError::Meta(MetaError::IsADirectory));
            }
            let meta = control.lookup(attr.ino)?.clone();
            (attr, meta)
        };
        let _ = attr;
        Ok(self.handle_for(path, &meta))
    }

    /// Write `data` at `offset` (`pwrite` semantics: overwrites in place,
    /// extends the file past EOF). Returns the typed completion; non-Ok
    /// completions surface as [`FsError::Io`].
    pub fn write_at(
        &mut self,
        h: &FileHandle,
        offset: u64,
        data: &[u8],
    ) -> Result<WriteResult, FsError> {
        self.write_job(h, Some(offset), data)
    }

    /// Append `data` at the file's placement cursor.
    pub fn append(&mut self, h: &FileHandle, data: &[u8]) -> Result<WriteResult, FsError> {
        self.write_job(h, None, data)
    }

    fn write_job(
        &mut self,
        h: &FileHandle,
        offset: Option<u64>,
        data: &[u8],
    ) -> Result<WriteResult, FsError> {
        if h.closed {
            return Err(FsError::Closed);
        }
        let slot: Rc<RefCell<Option<WriteResult>>> = Rc::new(RefCell::new(None));
        self.cluster.submit(
            self.client,
            Job::WriteAt {
                file: h.file,
                offset,
                data: Bytes::from(data.to_vec()),
                protocol: h.write_protocol,
                slot: Some(slot.clone()),
            },
        );
        let result = self.run_until_filled(&slot)?;
        if result.status == Status::Ok {
            Ok(result)
        } else {
            Err(FsError::Io(result.status))
        }
    }

    /// Read `len` bytes at `offset`. Short reads past EOF come back with
    /// `completion.len < len` (like `pread`); degraded reads reconstruct
    /// through surviving shards and report `degraded_stripes > 0`.
    pub fn read_at(
        &mut self,
        h: &FileHandle,
        offset: u64,
        len: u32,
    ) -> Result<ReadCompletion, FsError> {
        if h.closed {
            return Err(FsError::Closed);
        }
        let token = self.next_token;
        self.next_token += 1;
        let slot: Rc<RefCell<Option<ReadCompletion>>> = Rc::new(RefCell::new(None));
        self.cluster.submit(
            self.client,
            Job::Read {
                file: h.file,
                offset,
                len,
                protocol: h.read_protocol,
                token,
                slot: Some(slot.clone()),
            },
        );
        let completion = self.run_until_filled(&slot)?;
        if completion.status == Status::Ok {
            Ok(completion)
        } else {
            Err(FsError::Io(completion.status))
        }
    }

    /// Current attributes, with this client's buffered write-back attr
    /// updates flushed first so the size is authoritative.
    pub fn stat(&mut self, h: &FileHandle) -> Result<InodeAttr, FsError> {
        if h.closed {
            return Err(FsError::Closed);
        }
        self.flush_writeback();
        let (attr, _) = self.cluster.control.borrow().peek_entry(&h.path)?;
        Ok(attr)
    }

    /// Close the handle: flush buffered attribute updates and consume it.
    pub fn close(&mut self, mut h: FileHandle) -> Result<(), FsError> {
        if h.closed {
            return Err(FsError::Closed);
        }
        self.flush_writeback();
        h.closed = true;
        Ok(())
    }

    /// Mark the `idx`-th storage node failed: subsequent reads route
    /// around it (replica failover / degraded EC reconstruction).
    pub fn fail_storage_node(&mut self, idx: usize) {
        let node = self.cluster.storage_nodes[idx] as u32;
        self.cluster.control.borrow_mut().mark_node_failed(node);
    }

    /// Bring the `idx`-th storage node back.
    pub fn recover_storage_node(&mut self, idx: usize) {
        let node = self.cluster.storage_nodes[idx] as u32;
        self.cluster.control.borrow_mut().mark_node_recovered(node);
    }

    /// Extents currently awaiting background re-protection.
    pub fn repair_backlog(&self) -> usize {
        self.cluster.control.borrow().repair_queue.len()
    }

    /// This client's read-cache counters (hits, misses, invalidations,
    /// readahead volume).
    pub fn read_cache_stats(&self) -> crate::cache::ReadCacheStats {
        self.cluster.read_caches[self.client].borrow().stats
    }

    /// Drop every cached byte in this client's read cache (e.g. to force
    /// the uncached path for a measurement). Stats and generation floors
    /// survive.
    pub fn drop_read_cache(&mut self) {
        self.cluster.read_caches[self.client].borrow_mut().clear();
    }

    /// Drain the repair queue through this client's NIC: every queued
    /// extent is re-protected to spare nodes (or typed unrepairable) and
    /// its map updated so subsequent reads resolve non-degraded.
    pub fn drain_repairs(&mut self) -> RepairReport {
        let mut driver = RepairDriver::new(self.client);
        driver.op_deadline_ms = self.op_deadline_ms;
        driver.drain(&mut self.cluster)
    }

    fn flush_writeback(&mut self) {
        let dirty = self.cluster.client_caches[self.client]
            .borrow_mut()
            .take_dirty();
        if !dirty.is_empty() {
            let _ = self.cluster.control.borrow_mut().flush_attrs(&dirty);
        }
    }

    fn now_ns(&self) -> u64 {
        self.cluster.engine.now().as_ns() as u64
    }

    fn handle_for(&self, path: &str, meta: &FileMeta) -> FileHandle {
        let mode = self.cluster.spec.mode;
        FileHandle {
            file: meta.id,
            path: path.to_string(),
            write_protocol: default_write_protocol(mode, &meta.policy),
            read_protocol: default_read_protocol(mode),
            closed: false,
        }
    }

    /// Drive the simulator in bounded slices until the oneshot fills.
    fn run_until_filled<T: Clone>(&mut self, slot: &Rc<RefCell<Option<T>>>) -> Result<T, FsError> {
        self.cluster.start(); // re-kick idle client drivers
        self.cluster
            .run_until_slot(slot, self.op_deadline_ms)
            .ok_or(FsError::TimedOut)
    }

    /// The client node id driving this facade's operations.
    pub fn client_node(&self) -> NodeId {
        self.cluster.client_nodes[self.client]
    }

    /// One coherent [`MetricsSnapshot`] of the whole cluster: op latency
    /// histograms and per-phase breakdowns from the span book, plus every
    /// component stats struct under stable names. Schema is pinned by
    /// [`nadfs_simnet::SNAPSHOT_SCHEMA`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.cluster.metrics_snapshot()
    }

    /// Chrome trace-event JSON (Perfetto / `chrome://tracing` loadable)
    /// of all completed op spans and the simulator trace ring, on the
    /// simulated clock with one track per component.
    pub fn export_chrome_trace(&self) -> String {
        self.cluster.export_chrome_trace()
    }

    /// Number of op spans still open (an op in flight — or leaked).
    pub fn open_spans(&self) -> usize {
        self.cluster.obs.borrow().spans.open_count()
    }
}

/// The fastest write protocol the cluster's storage mode supports for a
/// file of this policy (the mapping tests and examples start from).
pub fn default_write_protocol(mode: StorageMode, policy: &FilePolicy) -> WriteProtocol {
    match (mode, policy) {
        (StorageMode::Spin, FilePolicy::Plain) => WriteProtocol::Spin,
        (StorageMode::Spin, FilePolicy::Replicated { .. }) => WriteProtocol::SpinReplicated,
        (StorageMode::Spin, FilePolicy::ErasureCoded { .. }) => {
            WriteProtocol::SpinTriec { interleave: true }
        }
        (StorageMode::FirmwareEc, FilePolicy::ErasureCoded { .. }) => WriteProtocol::InecTriec,
        (_, FilePolicy::Replicated { .. }) => WriteProtocol::CpuBcast { chunk: 64 << 10 },
        // Plain-mode plain files: CPU-validated RPC writes (policy still
        // enforced, just on the host).
        (_, FilePolicy::Plain) => WriteProtocol::Rpc,
        // EC on a cluster with no EC engine has no offload path; the
        // firmware protocol still lands the data chunks (parity stays
        // unwritten), so degraded reads require a capable mode.
        (_, FilePolicy::ErasureCoded { .. }) => WriteProtocol::InecTriec,
    }
}

/// One-sided reads everywhere: validation happens on the storage NIC in
/// every mode (the service key is installed cluster-wide).
pub fn default_read_protocol(_mode: StorageMode) -> ReadProtocol {
    ReadProtocol::Rdma
}
