//! Analytical models from the paper: NIC descriptor memory (Fig 4,
//! §III-B), the HPU line-rate budget (Fig 16 right, §VI-C), and the DFS
//! survey (Table III).

use nadfs_simnet::Bandwidth;
use nadfs_wire::sizes;

// ---------------------------------------------------------------------
// Fig 4 / §III-B: descriptor memory
// ---------------------------------------------------------------------

/// NIC memory available for write descriptors (§III-B: 4×1 MiB L1 plus
/// 4 MiB L2, minus 2 MiB of DFS-wide state = 6 MiB).
pub const DESCRIPTOR_BUDGET_BYTES: u64 = 6 << 20;

/// Pure descriptor memory for `n` concurrent writes: 77 B each (§III-B).
pub fn descriptor_memory_bytes(n_writes: u64) -> u64 {
    n_writes * sizes::WRITE_DESCRIPTOR as u64
}

/// Maximum concurrent writes the budget sustains (§III-B: "~82 K").
pub fn max_concurrent_writes() -> u64 {
    DESCRIPTOR_BUDGET_BYTES / sizes::WRITE_DESCRIPTOR as u64
}

/// Worst-case NIC memory for `n` concurrent writes of `size` bytes,
/// including per-packet bookkeeping state (4 B per expected packet of the
/// message, tracking arrival/commit status).
///
/// Interpretation note (recorded in EXPERIMENTS.md): the paper's Fig 4
/// shows size-dependent curves but §III-B's text quantifies only the 77 B
/// descriptor and the 6 MiB budget; pure descriptor memory is
/// size-independent. We reproduce the quantified claims exactly
/// ([`descriptor_memory_bytes`], [`max_concurrent_writes`]) and model the
/// size dependence as worst-case per-packet state, which recovers the
/// figure's qualitative shape (larger writes need more state per open
/// request).
pub fn worst_case_memory_bytes(n_writes: u64, size: u64) -> u64 {
    let payload = (sizes::MTU - sizes::RDMA_HEADER) as u64;
    let pkts = size.div_ceil(payload).max(1);
    n_writes * (sizes::WRITE_DESCRIPTOR as u64 + 4 * pkts)
}

// ---------------------------------------------------------------------
// Fig 16 right / §VI-C: HPUs needed to sustain line rate
// ---------------------------------------------------------------------

/// Packet inter-arrival time at `rate` with `pkt_bytes` packets, in ns.
pub fn packet_interarrival_ns(rate: Bandwidth, pkt_bytes: u32) -> f64 {
    rate.tx_time(pkt_bytes as u64).as_ns()
}

/// Number of HPUs needed so that handlers of mean duration `handler_ns`
/// keep up with line rate (Fig 16 right).
pub fn hpus_for_line_rate(handler_ns: f64, rate: Bandwidth, pkt_bytes: u32) -> u64 {
    let inter = packet_interarrival_ns(rate, pkt_bytes);
    (handler_ns / inter).ceil() as u64
}

/// Per-handler time budget given an HPU count (§VI-C: "with 2 KiB packets
/// and 32 HPUs, each handler should not last more than ~1310 ns").
pub fn handler_budget_ns(n_hpus: u64, rate: Bandwidth, pkt_bytes: u32) -> f64 {
    n_hpus as f64 * packet_interarrival_ns(rate, pkt_bytes)
}

// ---------------------------------------------------------------------
// Table III: DFS characteristics survey
// ---------------------------------------------------------------------

/// Degree of support reported in Table III.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Support {
    Yes,
    Partial,
    No,
}

impl Support {
    pub fn glyph(self) -> &'static str {
        match self {
            Support::Yes => "yes",
            Support::Partial => "partial",
            Support::No => "no",
        }
    }
}

/// One row of Table III.
#[derive(Clone, Debug)]
pub struct DfsSurveyRow {
    pub name: &'static str,
    pub rdma: Support,
    pub auth: Support,
    pub replication: Support,
    pub erasure_coding: Support,
    pub notes: &'static str,
}

/// The survey exactly as printed in Table III of the paper.
pub fn dfs_survey() -> Vec<DfsSurveyRow> {
    use Support::{No, Partial, Yes};
    vec![
        DfsSurveyRow {
            name: "Lustre",
            rdma: Partial,
            auth: Yes,
            replication: No,
            erasure_coding: No,
            notes: "RPC+RDMA",
        },
        DfsSurveyRow {
            name: "IBM Spectrum Scale",
            rdma: No,
            auth: Yes,
            replication: Yes,
            erasure_coding: Yes,
            notes: "",
        },
        DfsSurveyRow {
            name: "BeeGFS",
            rdma: Partial,
            auth: Yes,
            replication: Yes,
            erasure_coding: No,
            notes: "RDMA compatible",
        },
        DfsSurveyRow {
            name: "Ceph",
            rdma: No,
            auth: Yes,
            replication: Yes,
            erasure_coding: Yes,
            notes: "",
        },
        DfsSurveyRow {
            name: "HDFS",
            rdma: Partial,
            auth: Yes,
            replication: Yes,
            erasure_coding: Yes,
            notes: "RPC+RDMA",
        },
        DfsSurveyRow {
            name: "Intel DAOS",
            rdma: Partial,
            auth: Yes,
            replication: Yes,
            erasure_coding: Yes,
            notes: "RPC+RDMA",
        },
        DfsSurveyRow {
            name: "MadFS",
            rdma: Yes,
            auth: Yes,
            replication: No,
            erasure_coding: No,
            notes: "",
        },
        DfsSurveyRow {
            name: "WekaIO Matrix",
            rdma: Yes,
            auth: Yes,
            replication: No,
            erasure_coding: Yes,
            notes: "",
        },
        DfsSurveyRow {
            name: "PanFS",
            rdma: Partial,
            auth: Yes,
            replication: No,
            erasure_coding: Yes,
            notes: "RPC+RDMA",
        },
        DfsSurveyRow {
            name: "OrangeFS",
            rdma: Partial,
            auth: Yes,
            replication: Yes,
            erasure_coding: No,
            notes: "RPC+RDMA",
        },
        DfsSurveyRow {
            name: "Gluster",
            rdma: Partial,
            auth: Yes,
            replication: Yes,
            erasure_coding: Yes,
            notes: "",
        },
        DfsSurveyRow {
            name: "Orion",
            rdma: Yes,
            auth: No,
            replication: Yes,
            erasure_coding: No,
            notes: "Client-based replication",
        },
        DfsSurveyRow {
            name: "Octopus",
            rdma: Partial,
            auth: Yes,
            replication: No,
            erasure_coding: No,
            notes: "RPC+RDMA",
        },
        DfsSurveyRow {
            name: "FileMR",
            rdma: Yes,
            auth: Yes,
            replication: Yes,
            erasure_coding: No,
            notes: "",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claims_82k_concurrent_writes() {
        // 6 MiB / 77 B = 81 707: the paper rounds to "~82 K".
        let n = max_concurrent_writes();
        assert_eq!(n, 81_707);
        assert!((n as f64 - 82_000.0).abs() / 82_000.0 < 0.005);
    }

    #[test]
    fn descriptor_memory_is_linear() {
        assert_eq!(descriptor_memory_bytes(0), 0);
        assert_eq!(descriptor_memory_bytes(1000), 77_000);
    }

    #[test]
    fn worst_case_memory_orders_by_size() {
        let n = 500;
        let small = worst_case_memory_bytes(n, 4 << 10);
        let mid = worst_case_memory_bytes(n, 64 << 10);
        let large = worst_case_memory_bytes(n, 1 << 20);
        assert!(small < mid && mid < large);
        assert!(small >= descriptor_memory_bytes(n));
    }

    #[test]
    fn handler_budget_matches_paper_quote() {
        // §VI-C: 2 KiB packets, 32 HPUs, 400 Gbit/s → ~1310 ns.
        let b = handler_budget_ns(32, Bandwidth::from_gbit_per_sec(400), 2048);
        assert!((b - 1310.7).abs() < 1.0, "{b}");
    }

    #[test]
    fn hpus_for_ec_handlers() {
        // §VI-C: "for RS(6,3), a PsPIN configuration with 512 HPUs would
        // allow sustaining 400 Gbit/s" — our Table II duration of ~23 us
        // computes to 562; the paper quotes the next power of two below
        // its own figure's curve. Accept the half-open band.
        let n = hpus_for_line_rate(23_018.0, Bandwidth::from_gbit_per_sec(400), 2048);
        assert!((512..=640).contains(&n), "{n}");
        // 100 Gbit/s needs 4x fewer.
        let n100 = hpus_for_line_rate(23_018.0, Bandwidth::from_gbit_per_sec(100), 2048);
        assert!(n100 <= n / 3);
    }

    #[test]
    fn survey_has_14_rows_like_table_iii() {
        let s = dfs_survey();
        assert_eq!(s.len(), 14);
        assert!(s.iter().any(|r| r.name == "Ceph"));
        assert_eq!(
            s.iter().find(|r| r.name == "Orion").expect("row").auth,
            Support::No
        );
    }
}
