//! The DFS client driver: issues writes under every protocol the paper
//! evaluates and records completion latencies.
//!
//! One `ClientApp` runs above each client node's NIC. Jobs are taken from a
//! shared plan queue (filled by tests/benchmark harnesses before the run);
//! a configurable window of requests is kept in flight. Completion
//! semantics per protocol follow §IV-§VI (see [`WriteProtocol`]).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use nadfs_rdma::{NicApp, NicCore};
use nadfs_simnet::{Ctx, Dur, NodeId, Time};
use nadfs_wire::{
    AckPkt, Capability, DfsHeader, DfsOp, EcInfo, EcRole, Frame, HlConfigPkt, MsgId, Resiliency,
    Rights, RpcBody, Status, WriteReqHeader,
};

use crate::control::{FilePolicy, SharedControl, WritePlacement};

/// Timer tag: start pulling jobs from the plan.
pub const KICK: u64 = 0;
const RETRY_BASE: u64 = 0x5254_0000_0000_0000;
const ISSUE_BASE: u64 = 0x4953_0000_0000_0000;

/// Write protocols (the paper's comparison axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteProtocol {
    /// Speed-of-light: single RDMA write, no policy enforcement (§IV).
    Raw,
    /// Single RDMA write through sPIN handlers (validation on the NIC).
    Spin,
    /// SEND carrying the data; storage CPU validates, copies, stores (§IV).
    Rpc,
    /// SEND request; storage CPU validates then RDMA-reads the data (§IV).
    RpcRdma,
    /// Client writes each replica itself (k writes, full trust) (§V).
    RdmaFlat,
    /// Pre-posted triggered-WQE ring with remote WQE configuration (§V).
    HyperLoop { chunk: u32 },
    /// Storage CPUs forward along the file's broadcast schedule, chunked
    /// and pipelined (CPU-Ring / CPU-PBT depending on the file policy).
    CpuBcast { chunk: u32 },
    /// One write; sPIN handlers forward per packet (sPIN-Ring / sPIN-PBT
    /// depending on the file policy) (§V).
    SpinReplicated,
    /// Per-packet streaming TriEC on PsPIN (§VI-B). `interleave` controls
    /// the client-side packet interleaving of §VI-B-1 (the ablation).
    SpinTriec { interleave: bool },
    /// Per-chunk firmware TriEC on conventional RDMA NICs (§VI-A).
    InecTriec,
}

/// One unit of client work.
#[derive(Clone, Debug)]
pub enum Job {
    Write {
        file: u64,
        size: u32,
        protocol: WriteProtocol,
        seed: u64,
    },
    /// One-sided read of a raw region (verification / read-path latency).
    RawRead {
        node: NodeId,
        addr: u64,
        len: u32,
        token: u64,
    },
}

/// Completion record.
#[derive(Clone, Debug)]
pub struct WriteResult {
    pub greq: u64,
    pub client: NodeId,
    pub protocol: WriteProtocol,
    pub size: u32,
    pub start: Time,
    pub end: Time,
    pub status: Status,
    pub retries: u32,
    /// Placement used (lets tests verify stored bytes).
    pub placement: WritePlacement,
}

#[derive(Clone, Debug)]
pub struct ReadResult {
    pub token: u64,
    pub end: Time,
}

/// Shared sink for completions.
#[derive(Default)]
pub struct ResultSink {
    pub writes: Vec<WriteResult>,
    pub reads: Vec<ReadResult>,
}

pub type SharedResults = Rc<RefCell<ResultSink>>;
pub type SharedPlan = Rc<RefCell<VecDeque<Job>>>;

enum Phase {
    /// Waiting for HyperLoop config acks; then the data write goes out.
    HlConfiguring { acks_left: u32 },
    /// Data in flight; counting completion acks.
    Data,
}

struct Pending {
    job: Job,
    placement: WritePlacement,
    start: Time,
    acks_needed: u32,
    acks_got: u32,
    phase: Phase,
    retries: u32,
    status: Status,
    /// Message ids belonging to this request (for greq-less acks).
    msgs: Vec<MsgId>,
}

/// The client node software.
pub struct ClientApp {
    control: SharedControl,
    results: SharedResults,
    plan: SharedPlan,
    window: usize,
    in_flight: HashMap<u64, Pending>,
    msg_to_greq: HashMap<MsgId, u64>,
    caps: HashMap<u64, Capability>,
    /// Deliberately corrupt capabilities (security tests).
    pub forge_capabilities: bool,
    /// Abandon writes after the first packet (cleanup-handler tests):
    /// every Nth job is abandoned when set.
    pub abandon_every: Option<u64>,
    jobs_started: u64,
    read_tokens: HashMap<u64, u64>,
    retry_stash: Vec<(u64, Job, WritePlacement, u32)>,
    issue_stash: Vec<(u64, Job, WritePlacement, Time)>,
}

impl ClientApp {
    pub fn new(
        control: SharedControl,
        results: SharedResults,
        plan: SharedPlan,
        window: usize,
    ) -> ClientApp {
        ClientApp {
            control,
            results,
            plan,
            window,
            in_flight: HashMap::new(),
            msg_to_greq: HashMap::new(),
            caps: HashMap::new(),
            forge_capabilities: false,
            abandon_every: None,
            jobs_started: 0,
            read_tokens: HashMap::new(),
            retry_stash: Vec::new(),
            issue_stash: Vec::new(),
        }
    }

    fn capability(&mut self, nic: &NicCore, file: u64) -> Capability {
        let client = nic.node() as u32;
        let control = &self.control;
        let cap = *self
            .caps
            .entry(file)
            .or_insert_with(|| {
                control
                    .borrow_mut()
                    .issue_capability(client, file, Rights::RW, u64::MAX / 2)
            });
        if self.forge_capabilities {
            // Tamper: claim more rights without re-signing.
            let mut evil = cap;
            evil.expires_at_ns = u64::MAX;
            evil
        } else {
            cap
        }
    }

    fn dfs_header(&mut self, nic: &NicCore, file: u64, greq: u64) -> DfsHeader {
        DfsHeader {
            greq_id: greq,
            op: DfsOp::Write,
            client: nic.node() as u32,
            capability: self.capability(nic, file),
        }
    }

    fn payload(seed: u64, len: u32) -> Bytes {
        // Deterministic, seed-dependent content (splitmix-ish stream).
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut v = Vec::with_capacity(len as usize);
        while v.len() < len as usize {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            v.extend_from_slice(&z.to_le_bytes());
        }
        v.truncate(len as usize);
        Bytes::from(v)
    }

    fn fill(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>) {
        while self.in_flight.len() + self.issue_stash.len() < self.window {
            let Some(job) = self.plan.borrow_mut().pop_front() else {
                return;
            };
            self.start_job(nic, ctx, job);
        }
    }

    fn start_job(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, job: Job) {
        self.jobs_started += 1;
        match job {
            Job::Write { file, size, .. } => {
                // The measured latency starts when the driver decides to
                // write; the verbs post (doorbell, WQE build) delays actual
                // injection — a real cost every protocol pays.
                let placement = self.control.borrow_mut().place_write(file, size);
                let start = ctx.now();
                let t_post = nic.cpu.exec(start, nic.cpu.costs.post_send);
                let tag = ISSUE_BASE | placement.greq;
                self.issue_stash
                    .push((tag, job_clone(&job), placement, start));
                nic.set_timer(ctx, t_post.since(start), tag);
            }
            Job::RawRead {
                node,
                addr,
                len,
                token,
            } => {
                let rrh = nadfs_wire::ReadReqHeader { addr, len };
                let local = nic.memory().borrow_mut().alloc(len as u64);
                self.read_tokens.insert(token, token);
                nic.send_read(ctx, node, rrh, None, local, token);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_write(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        job: Job,
        file: u64,
        size: u32,
        protocol: WriteProtocol,
        seed: u64,
        placement: WritePlacement,
        retries: u32,
        start: Time,
    ) {
        let greq = placement.greq;
        let data = Self::payload(seed, size);
        let abandon = self
            .abandon_every
            .map(|n| self.jobs_started % n == 0)
            .unwrap_or(false);
        let mut pending = Pending {
            job,
            placement: placement.clone(),
            start,
            acks_needed: 1,
            acks_got: 0,
            phase: Phase::Data,
            retries,
            status: Status::Ok,
            msgs: Vec::new(),
        };
        let policy = self
            .control
            .borrow()
            .lookup(file)
            .expect("file exists")
            .policy
            .clone();

        match protocol {
            WriteProtocol::Raw => {
                let wrh = WriteReqHeader {
                    target_addr: placement.primary.addr,
                    len: size,
                    resiliency: Resiliency::None,
                };
                let msg =
                    nic.send_write(ctx, placement.primary.node as NodeId, None, wrh, data);
                pending.msgs.push(msg);
            }
            WriteProtocol::Spin => {
                let dfs = self.dfs_header(nic, file, greq);
                let wrh = WriteReqHeader {
                    target_addr: placement.primary.addr,
                    len: size,
                    resiliency: Resiliency::None,
                };
                if abandon {
                    let (msg, mut frames) = nic.build_write_frames(Some(dfs), wrh, data);
                    frames.truncate(1);
                    nic.send_frames(ctx, placement.primary.node as NodeId, frames);
                    pending.msgs.push(msg);
                    pending.acks_needed = u32::MAX; // never completes
                } else {
                    let msg = nic.send_write(
                        ctx,
                        placement.primary.node as NodeId,
                        Some(dfs),
                        wrh,
                        data,
                    );
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::Rpc | WriteProtocol::RpcRdma => {
                let inline = protocol == WriteProtocol::Rpc;
                let dfs = self.dfs_header(nic, file, greq);
                let wrh = WriteReqHeader {
                    target_addr: placement.primary.addr,
                    len: size,
                    resiliency: Resiliency::None,
                };
                let src_addr = if inline {
                    0
                } else {
                    // Stage the data in client memory for the storage-side
                    // RDMA read.
                    let a = nic.memory().borrow_mut().alloc(size as u64);
                    nic.memory().borrow_mut().write(a, &data);
                    a
                };
                let body = RpcBody::WriteReq {
                    dfs,
                    wrh,
                    inline_data: inline,
                    src_addr,
                    chunk_off: 0,
                    full_len: size,
                };
                let msg = nic.send_rpc(
                    ctx,
                    placement.primary.node as NodeId,
                    body,
                    if inline { data } else { Bytes::new() },
                );
                pending.msgs.push(msg);
            }
            WriteProtocol::RdmaFlat => {
                // One independent write per replica; full client trust.
                pending.acks_needed = placement.replicas.len() as u32;
                for coord in &placement.replicas {
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len: size,
                        resiliency: Resiliency::None,
                    };
                    let msg =
                        nic.send_write(ctx, coord.node as NodeId, None, wrh, data.clone());
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::HyperLoop { chunk } => {
                // Phase 1: configure the ring (k parallel WQE writes).
                let k = placement.replicas.len();
                pending.phase = Phase::HlConfiguring {
                    acks_left: k as u32,
                };
                pending.acks_needed = 1; // the tail data ack
                for (i, coord) in placement.replicas.iter().enumerate() {
                    let cfg = HlConfigPkt {
                        msg: MsgId::new(0, 0),
                        greq_id: greq,
                        local_addr: coord.addr,
                        total_len: size,
                        chunk,
                        next: placement.replicas.get(i + 1).copied(),
                        ack_client: i == k - 1,
                        frag: 0,
                        total_frags: 1,
                    };
                    let msg = nic.send_hl_config(ctx, coord.node as NodeId, cfg);
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::CpuBcast { chunk } => {
                let FilePolicy::Replicated { strategy, .. } = policy else {
                    panic!("CpuBcast requires a replicated file");
                };
                let dfs = self.dfs_header(nic, file, greq);
                let k = placement.replicas.len() as u32;
                pending.acks_needed = k;
                let chunk = chunk.max(1).min(size.max(1));
                let mut off = 0u32;
                while off < size || (size == 0 && off == 0) {
                    let len = chunk.min(size - off);
                    let wrh = WriteReqHeader {
                        target_addr: placement.primary.addr + off as u64,
                        len,
                        resiliency: Resiliency::Replicate {
                            strategy,
                            vrank: 0,
                            coords: placement.replicas.clone(),
                        },
                    };
                    let body = RpcBody::WriteReq {
                        dfs,
                        wrh,
                        inline_data: true,
                        src_addr: 0,
                        chunk_off: off,
                        full_len: size,
                    };
                    let msg = nic.send_rpc(
                        ctx,
                        placement.primary.node as NodeId,
                        body,
                        data.slice(off as usize..(off + len) as usize),
                    );
                    pending.msgs.push(msg);
                    off += len;
                    if size == 0 {
                        break;
                    }
                }
            }
            WriteProtocol::SpinReplicated => {
                let FilePolicy::Replicated { strategy, .. } = policy else {
                    panic!("SpinReplicated requires a replicated file");
                };
                let dfs = self.dfs_header(nic, file, greq);
                pending.acks_needed = placement.replicas.len() as u32;
                let wrh = WriteReqHeader {
                    target_addr: placement.primary.addr,
                    len: size,
                    resiliency: Resiliency::Replicate {
                        strategy,
                        vrank: 0,
                        coords: placement.replicas.clone(),
                    },
                };
                let msg =
                    nic.send_write(ctx, placement.primary.node as NodeId, Some(dfs), wrh, data);
                pending.msgs.push(msg);
            }
            WriteProtocol::SpinTriec { .. } | WriteProtocol::InecTriec => {
                let FilePolicy::ErasureCoded { scheme } = policy else {
                    panic!("TriEC requires an erasure-coded file");
                };
                let interleave = match protocol {
                    WriteProtocol::SpinTriec { interleave } => interleave,
                    _ => false,
                };
                let dfs = self.dfs_header(nic, file, greq);
                let k = scheme.k as usize;
                let m = scheme.m as usize;
                pending.acks_needed = (k + m) as u32;
                let chunk_len = placement.chunk_len;
                // Split the block into k chunks (zero-pad the tail).
                let mut per_chunk_frames: Vec<(NodeId, Vec<Frame>)> = Vec::with_capacity(k);
                for (j, coord) in placement.data_chunks.iter().enumerate() {
                    let startb = (j as u32 * chunk_len).min(size) as usize;
                    let endb = ((j as u32 + 1) * chunk_len).min(size) as usize;
                    let mut chunk_data = data.slice(startb..endb).to_vec();
                    chunk_data.resize(chunk_len as usize, 0);
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len: chunk_len,
                        resiliency: Resiliency::ErasureCode(EcInfo {
                            scheme,
                            role: EcRole::Data { chunk_idx: j as u8 },
                            stripe: greq,
                            parity_coords: placement.parities.clone(),
                        }),
                    };
                    let (msg, frames) =
                        nic.build_write_frames(Some(dfs), wrh, Bytes::from(chunk_data));
                    pending.msgs.push(msg);
                    per_chunk_frames.push((coord.node as NodeId, frames));
                }
                if interleave {
                    // §VI-B-1: interleave packets across chunks so the
                    // parity node can aggregate as streams progress.
                    let mut mixed = Vec::new();
                    let max_len = per_chunk_frames
                        .iter()
                        .map(|(_, f)| f.len())
                        .max()
                        .unwrap_or(0);
                    for i in 0..max_len {
                        for (dst, frames) in &per_chunk_frames {
                            if let Some(f) = frames.get(i) {
                                mixed.push((*dst, f.clone()));
                            }
                        }
                    }
                    nic.send_mixed(ctx, mixed);
                } else {
                    for (dst, frames) in per_chunk_frames {
                        nic.send_frames(ctx, dst, frames);
                    }
                }
            }
        }
        for m in &pending.msgs {
            self.msg_to_greq.insert(*m, greq);
        }
        self.in_flight.insert(greq, pending);
    }

    fn finish(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, greq: u64) {
        let p = self.in_flight.remove(&greq).expect("pending");
        for m in &p.msgs {
            self.msg_to_greq.remove(m);
        }
        let Job::Write {
            size, protocol, ..
        } = p.job
        else {
            return;
        };
        // The application observes completion one poll interval after the
        // ack reaches the NIC (CQ polling cost, charged to every protocol).
        let end = ctx.now() + nic.cpu.costs.poll_notify;
        self.results.borrow_mut().writes.push(WriteResult {
            greq,
            client: nic.node(),
            protocol,
            size,
            start: p.start,
            end,
            status: p.status,
            retries: p.retries,
            placement: p.placement,
        });
        self.fill(nic, ctx);
    }
}

fn job_clone(j: &Job) -> Job {
    j.clone()
}

impl NicApp for ClientApp {
    fn on_ack(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, _src: NodeId, ack: AckPkt) {
        let greq = ack
            .greq_id
            .filter(|g| self.in_flight.contains_key(g))
            .or_else(|| self.msg_to_greq.get(&ack.msg).copied());
        let Some(greq) = greq else {
            return; // stale (e.g. ack after cleanup-driven completion)
        };
        let Some(p) = self.in_flight.get_mut(&greq) else {
            return;
        };
        match ack.status {
            Status::Busy => {
                // Descriptor exhaustion: retry the whole request later
                // (§III-B: "the request is denied, and the client will
                // retry later").
                let p = self.in_flight.remove(&greq).expect("pending");
                for m in &p.msgs {
                    self.msg_to_greq.remove(m);
                }
                let retries = p.retries + 1;
                let Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                } = p.job
                else {
                    return;
                };
                let job = Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                };
                // Re-place and retry after a backoff.
                let placement = self.control.borrow_mut().place_write(file, size);
                let tag = RETRY_BASE | placement.greq;
                self.retry_stash.push((tag, job, placement, retries));
                nic.set_timer(ctx, Dur::from_us(5 * retries as u64), tag);
            }
            Status::AuthFailed | Status::Rejected => {
                p.status = ack.status;
                p.acks_got += 1;
                // A rejection terminates the request immediately.
                let needed = p.acks_got.max(1);
                p.acks_needed = needed;
                if p.acks_got >= needed {
                    self.finish(nic, ctx, greq);
                }
            }
            Status::Ok => match &mut p.phase {
                Phase::HlConfiguring { acks_left } => {
                    *acks_left -= 1;
                    if *acks_left == 0 {
                        // Ring armed: push the data to the head node.
                        p.phase = Phase::Data;
                        let Job::Write { size, seed, .. } = p.job else {
                            return;
                        };
                        let head = p.placement.replicas[0];
                        let wrh = WriteReqHeader {
                            target_addr: head.addr,
                            len: size,
                            resiliency: Resiliency::None,
                        };
                        let data = Self::payload(seed, size);
                        let msg =
                            nic.send_write(ctx, head.node as NodeId, None, wrh, data);
                        p.msgs.push(msg);
                        let greq2 = greq;
                        self.msg_to_greq.insert(msg, greq2);
                    }
                }
                Phase::Data => {
                    p.acks_got += 1;
                    if p.acks_got >= p.acks_needed {
                        self.finish(nic, ctx, greq);
                    }
                }
            },
        }
    }

    fn on_read_done(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, token: u64) {
        self.read_tokens.remove(&token);
        self.results.borrow_mut().reads.push(ReadResult {
            token,
            end: ctx.now(),
        });
        self.fill(nic, ctx);
    }

    fn on_timer(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == KICK {
            self.fill(nic, ctx);
            return;
        }
        if tag & RETRY_BASE == RETRY_BASE {
            if let Some(idx) = self.retry_stash.iter().position(|(t, ..)| *t == tag) {
                let (_, job, placement, retries) = self.retry_stash.remove(idx);
                let Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                } = job
                else {
                    return;
                };
                self.issue_write(
                    nic,
                    ctx,
                    Job::Write {
                        file,
                        size,
                        protocol,
                        seed,
                    },
                    file,
                    size,
                    protocol,
                    seed,
                    placement,
                    retries,
                    ctx.now(),
                );
            }
            return;
        }
        if tag & ISSUE_BASE == ISSUE_BASE {
            if let Some(idx) = self.issue_stash.iter().position(|(t, ..)| *t == tag) {
                let (_, job, placement, start) = self.issue_stash.remove(idx);
                let Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                } = job
                else {
                    return;
                };
                self.issue_write(
                    nic,
                    ctx,
                    Job::Write {
                        file,
                        size,
                        protocol,
                        seed,
                    },
                    file,
                    size,
                    protocol,
                    seed,
                    placement,
                    0,
                    start,
                );
            }
        }
    }
}
