//! The DFS client driver: issues writes under every protocol the paper
//! evaluates and records completion latencies.
//!
//! One `ClientApp` runs above each client node's NIC. Jobs are taken from a
//! shared plan queue (filled by tests/benchmark harnesses before the run);
//! a configurable window of requests is kept in flight. Completion
//! semantics per protocol follow §IV-§VI (see [`WriteProtocol`]).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use nadfs_meta::{CachedEntry, LayoutSpec, MetaCache, MetaError};
use nadfs_rdma::{NicApp, NicCore};
use nadfs_simnet::{Ctx, Dur, NodeId, Time};
use nadfs_wire::{
    AckPkt, Capability, DfsHeader, DfsOp, EcInfo, EcRole, Frame, HlConfigPkt, MsgId, Resiliency,
    Rights, RpcBody, Status, WriteReqHeader,
};

use crate::config::MetaCosts;
use crate::control::{FilePolicy, SharedControl, WritePlacement};

/// Timer tag: start pulling jobs from the plan.
pub const KICK: u64 = 0;
const RETRY_BASE: u64 = 0x5254_0000_0000_0000;
const ISSUE_BASE: u64 = 0x4953_0000_0000_0000;
const META_BASE: u64 = 0x4D45_0000_0000_0000;

/// Buffered write-back attr updates are flushed to the control plane once
/// this many files are dirty (one round-trip for the whole batch).
const WRITEBACK_BATCH: usize = 8;

/// Write protocols (the paper's comparison axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteProtocol {
    /// Speed-of-light: single RDMA write, no policy enforcement (§IV).
    Raw,
    /// Single RDMA write through sPIN handlers (validation on the NIC).
    Spin,
    /// SEND carrying the data; storage CPU validates, copies, stores (§IV).
    Rpc,
    /// SEND request; storage CPU validates then RDMA-reads the data (§IV).
    RpcRdma,
    /// Client writes each replica itself (k writes, full trust) (§V).
    RdmaFlat,
    /// Pre-posted triggered-WQE ring with remote WQE configuration (§V).
    HyperLoop { chunk: u32 },
    /// Storage CPUs forward along the file's broadcast schedule, chunked
    /// and pipelined (CPU-Ring / CPU-PBT depending on the file policy).
    CpuBcast { chunk: u32 },
    /// One write; sPIN handlers forward per packet (sPIN-Ring / sPIN-PBT
    /// depending on the file policy) (§V).
    SpinReplicated,
    /// Per-packet streaming TriEC on PsPIN (§VI-B). `interleave` controls
    /// the client-side packet interleaving of §VI-B-1 (the ablation).
    SpinTriec { interleave: bool },
    /// Per-chunk firmware TriEC on conventional RDMA NICs (§VI-A).
    InecTriec,
}

/// A metadata operation issued by a client (paths are absolute).
#[derive(Clone, Debug)]
pub enum MetaOp {
    Mkdir { path: String },
    Create { path: String, spec: LayoutSpec },
    Lookup { path: String },
    Readdir { path: String },
    Rename { from: String, to: String },
    Unlink { path: String },
}

impl MetaOp {
    pub fn kind(&self) -> MetaOpKind {
        match self {
            MetaOp::Mkdir { .. } => MetaOpKind::Mkdir,
            MetaOp::Create { .. } => MetaOpKind::Create,
            MetaOp::Lookup { .. } => MetaOpKind::Lookup,
            MetaOp::Readdir { .. } => MetaOpKind::Readdir,
            MetaOp::Rename { .. } => MetaOpKind::Rename,
            MetaOp::Unlink { .. } => MetaOpKind::Unlink,
        }
    }
}

/// Which metadata operation a [`MetaResult`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetaOpKind {
    Mkdir,
    Create,
    Lookup,
    Readdir,
    Rename,
    Unlink,
}

/// One unit of client work.
#[derive(Clone, Debug)]
pub enum Job {
    Write {
        file: u64,
        size: u32,
        protocol: WriteProtocol,
        seed: u64,
    },
    /// One-sided read of a raw region (verification / read-path latency).
    RawRead {
        node: NodeId,
        addr: u64,
        len: u32,
        token: u64,
    },
    /// A metadata operation (namespace traffic).
    Meta { op: MetaOp, token: u64 },
}

/// Completion record.
#[derive(Clone, Debug)]
pub struct WriteResult {
    pub greq: u64,
    pub client: NodeId,
    pub protocol: WriteProtocol,
    pub size: u32,
    pub start: Time,
    pub end: Time,
    pub status: Status,
    pub retries: u32,
    /// Placement used (lets tests verify stored bytes).
    pub placement: WritePlacement,
}

#[derive(Clone, Debug)]
pub struct ReadResult {
    pub token: u64,
    pub end: Time,
}

/// Completion record of one metadata operation.
#[derive(Clone, Debug)]
pub struct MetaResult {
    pub token: u64,
    pub client: NodeId,
    pub op: MetaOpKind,
    pub start: Time,
    pub end: Time,
    /// Answered from the client cache (no control round-trip).
    pub cache_hit: bool,
    /// Typed outcome: metadata misses surface as failed jobs.
    pub result: Result<(), MetaError>,
}

/// Shared sink for completions.
#[derive(Default)]
pub struct ResultSink {
    pub writes: Vec<WriteResult>,
    pub reads: Vec<ReadResult>,
    pub metas: Vec<MetaResult>,
}

pub type SharedResults = Rc<RefCell<ResultSink>>;
pub type SharedPlan = Rc<RefCell<VecDeque<Job>>>;

enum Phase {
    /// Waiting for HyperLoop config acks; then the data write goes out.
    HlConfiguring { acks_left: u32 },
    /// Data in flight; counting completion acks.
    Data,
}

struct Pending {
    job: Job,
    placement: WritePlacement,
    start: Time,
    acks_needed: u32,
    acks_got: u32,
    phase: Phase,
    retries: u32,
    status: Status,
    /// Message ids belonging to this request (for greq-less acks).
    msgs: Vec<MsgId>,
}

/// The client node software.
pub struct ClientApp {
    control: SharedControl,
    results: SharedResults,
    plan: SharedPlan,
    window: usize,
    in_flight: HashMap<u64, Pending>,
    msg_to_greq: HashMap<MsgId, u64>,
    caps: HashMap<u64, Capability>,
    /// Deliberately corrupt capabilities (security tests).
    pub forge_capabilities: bool,
    /// Abandon writes after the first packet (cleanup-handler tests):
    /// every Nth job is abandoned when set.
    pub abandon_every: Option<u64>,
    jobs_started: u64,
    read_tokens: HashMap<u64, u64>,
    retry_stash: Vec<(u64, Job, WritePlacement, u32)>,
    issue_stash: Vec<(u64, Job, WritePlacement, Time)>,
    /// Client-side metadata cache (registered with the control plane for
    /// invalidation callbacks at construction).
    pub meta_cache: Rc<RefCell<MetaCache>>,
    /// Disable to measure the uncached baseline (every op round-trips).
    pub cache_enabled: bool,
    /// Latency model for metadata traffic.
    pub meta_costs: MetaCosts,
    meta_in_flight: usize,
    meta_stash: Vec<(u64, PendingMeta)>,
    next_meta_tag: u64,
}

/// A metadata op whose (already-determined) outcome is waiting out its
/// simulated latency.
struct PendingMeta {
    token: u64,
    kind: MetaOpKind,
    start: Time,
    cache_hit: bool,
    result: Result<(), MetaError>,
}

impl ClientApp {
    pub fn new(
        control: SharedControl,
        results: SharedResults,
        plan: SharedPlan,
        window: usize,
    ) -> ClientApp {
        let meta_cache = Rc::new(RefCell::new(MetaCache::new()));
        control.borrow_mut().register_cache(meta_cache.clone());
        ClientApp {
            control,
            results,
            plan,
            window,
            in_flight: HashMap::new(),
            msg_to_greq: HashMap::new(),
            caps: HashMap::new(),
            forge_capabilities: false,
            abandon_every: None,
            jobs_started: 0,
            read_tokens: HashMap::new(),
            retry_stash: Vec::new(),
            issue_stash: Vec::new(),
            meta_cache,
            cache_enabled: true,
            meta_costs: MetaCosts::default(),
            meta_in_flight: 0,
            meta_stash: Vec::new(),
            next_meta_tag: 0,
        }
    }

    fn capability(&mut self, nic: &NicCore, file: u64) -> Capability {
        let client = nic.node() as u32;
        let control = &self.control;
        let cap = *self.caps.entry(file).or_insert_with(|| {
            control
                .borrow_mut()
                .issue_capability(client, file, Rights::RW, u64::MAX / 2)
        });
        if self.forge_capabilities {
            // Tamper: claim more rights without re-signing.
            let mut evil = cap;
            evil.expires_at_ns = u64::MAX;
            evil
        } else {
            cap
        }
    }

    fn dfs_header(&mut self, nic: &NicCore, file: u64, greq: u64) -> DfsHeader {
        DfsHeader {
            greq_id: greq,
            op: DfsOp::Write,
            client: nic.node() as u32,
            capability: self.capability(nic, file),
        }
    }

    fn payload(seed: u64, len: u32) -> Bytes {
        // Deterministic, seed-dependent content (splitmix-ish stream).
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut v = Vec::with_capacity(len as usize);
        while v.len() < len as usize {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            v.extend_from_slice(&z.to_le_bytes());
        }
        v.truncate(len as usize);
        Bytes::from(v)
    }

    fn fill(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>) {
        while self.in_flight.len() + self.issue_stash.len() + self.meta_in_flight < self.window {
            let Some(job) = self.plan.borrow_mut().pop_front() else {
                return;
            };
            self.start_job(nic, ctx, job);
        }
    }

    /// Record a write that failed in the metadata service before any byte
    /// moved: the job completes immediately with `Rejected` instead of
    /// silently vanishing.
    fn fail_write_job(
        &mut self,
        nic: &NicCore,
        ctx: &Ctx<'_>,
        size: u32,
        protocol: WriteProtocol,
        retries: u32,
        start: Time,
    ) {
        let greq = self.control.borrow_mut().alloc_greq();
        self.results.borrow_mut().writes.push(WriteResult {
            greq,
            client: nic.node(),
            protocol,
            size,
            start,
            end: ctx.now(),
            status: Status::Rejected,
            retries,
            placement: WritePlacement::rejected(greq),
        });
    }

    fn start_job(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, job: Job) {
        self.jobs_started += 1;
        match job {
            Job::Write {
                file,
                size,
                protocol,
                ..
            } => {
                // The measured latency starts when the driver decides to
                // write; the verbs post (doorbell, WQE build) delays actual
                // injection — a real cost every protocol pays.
                let placed = self.control.borrow_mut().place_write(file, size);
                let start = ctx.now();
                let placement = match placed {
                    Ok(p) => p,
                    Err(_) => {
                        // Typed metadata miss: the job fails, the client
                        // moves on.
                        self.fail_write_job(nic, ctx, size, protocol, 0, start);
                        return;
                    }
                };
                let t_post = nic.cpu.exec(start, nic.cpu.costs.post_send);
                let tag = ISSUE_BASE | placement.greq;
                self.issue_stash
                    .push((tag, job_clone(&job), placement, start));
                nic.set_timer(ctx, t_post.since(start), tag);
            }
            Job::RawRead {
                node,
                addr,
                len,
                token,
            } => {
                let rrh = nadfs_wire::ReadReqHeader { addr, len };
                let local = nic.memory().borrow_mut().alloc(len as u64);
                self.read_tokens.insert(token, token);
                nic.send_read(ctx, node, rrh, None, local, token);
            }
            Job::Meta { op, token } => {
                self.start_meta(nic, ctx, op, token);
            }
        }
    }

    /// Flush buffered write-back attrs (one control round-trip for the
    /// whole batch). Returns true if a flush happened.
    fn flush_writeback(&mut self) -> bool {
        let dirty = self.meta_cache.borrow_mut().take_dirty();
        if dirty.is_empty() {
            return false;
        }
        let _ = self.control.borrow_mut().flush_attrs(&dirty);
        true
    }

    /// Execute a metadata op against cache + control plane. State changes
    /// apply immediately; the completion is reported after the op's
    /// simulated latency (cache probe vs. control round-trip).
    fn start_meta(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, op: MetaOp, token: u64) {
        let start = ctx.now();
        let now_ns = start.as_ns() as u64;
        let costs = self.meta_costs.clone();
        let mut cost = Dur::ZERO;
        let mut cache_hit = false;
        let result: Result<(), MetaError> = match &op {
            MetaOp::Lookup { path } => {
                // A lookup must observe our own buffered appends: flush
                // write-back state first (counts as its own round-trip).
                if self.cache_enabled && self.meta_cache.borrow().dirty_count() > 0 {
                    self.flush_writeback();
                    cost += costs.control_rtt;
                }
                let cached = if self.cache_enabled {
                    self.meta_cache.borrow_mut().get(path)
                } else {
                    None
                };
                match cached {
                    Some(_) => {
                        cache_hit = true;
                        cost += costs.cache_probe;
                        Ok(())
                    }
                    None => {
                        cost += costs.control_rtt;
                        match self.control.borrow_mut().lookup_entry(path) {
                            Ok((attr, layout)) => {
                                if self.cache_enabled {
                                    self.meta_cache.borrow_mut().insert(
                                        path.clone(),
                                        CachedEntry::from_attr(&attr, layout),
                                    );
                                }
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    }
                }
            }
            MetaOp::Mkdir { path } => {
                cost = cost + costs.control_rtt + costs.mutate_service;
                self.control.borrow_mut().mkdir(path, now_ns).map(|_| ())
            }
            MetaOp::Create { path, spec } => {
                cost = cost + costs.control_rtt + costs.mutate_service;
                let created =
                    self.control
                        .borrow_mut()
                        .create_file_at(path, *spec, FilePolicy::Plain);
                match created {
                    Ok(_) => {
                        if self.cache_enabled {
                            // Write-allocate: the create response already
                            // carries everything a later lookup needs, so
                            // fill the cache without another counted
                            // round-trip.
                            if let Ok((attr, layout)) = self.control.borrow().peek_entry(path) {
                                self.meta_cache
                                    .borrow_mut()
                                    .insert(path.clone(), CachedEntry::from_attr(&attr, layout));
                            }
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            MetaOp::Readdir { path } => {
                cost += costs.control_rtt;
                match self.control.borrow_mut().readdir(path) {
                    Ok(entries) => {
                        if self.cache_enabled {
                            // Version check (defense in depth): a readdir
                            // response reveals current child versions —
                            // evict any cached child it proves stale.
                            let mut cache = self.meta_cache.borrow_mut();
                            let base = path.trim_end_matches('/');
                            for (name, attr) in &entries {
                                cache.note_version(&format!("{base}/{name}"), attr.version);
                            }
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            MetaOp::Rename { from, to } => {
                cost = cost + costs.control_rtt + costs.mutate_service;
                self.control.borrow_mut().rename(from, to, now_ns)
            }
            MetaOp::Unlink { path } => {
                cost = cost + costs.control_rtt + costs.mutate_service;
                self.control.borrow_mut().unlink(path, now_ns).map(|_| ())
            }
        };
        let tag = META_BASE | self.next_meta_tag;
        self.next_meta_tag += 1;
        self.meta_in_flight += 1;
        self.meta_stash.push((
            tag,
            PendingMeta {
                token,
                kind: op.kind(),
                start,
                cache_hit,
                result,
            },
        ));
        nic.set_timer(ctx, cost, tag);
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_write(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        job: Job,
        file: u64,
        size: u32,
        protocol: WriteProtocol,
        seed: u64,
        placement: WritePlacement,
        retries: u32,
        start: Time,
    ) {
        let greq = placement.greq;
        let data = Self::payload(seed, size);
        let abandon = self
            .abandon_every
            .map(|n| self.jobs_started.is_multiple_of(n))
            .unwrap_or(false);
        let mut pending = Pending {
            job,
            placement: placement.clone(),
            start,
            acks_needed: 1,
            acks_got: 0,
            phase: Phase::Data,
            retries,
            status: Status::Ok,
            msgs: Vec::new(),
        };
        let policy = self.control.borrow().lookup(file).map(|m| m.policy.clone());
        let policy = match policy {
            Ok(p) => p,
            Err(_) => {
                // The file vanished between placement and issue (e.g. an
                // unlink raced a retry): fail the job, don't panic. The
                // slot this job held must be refilled — issue_write runs
                // from a timer, so no caller does it for us.
                self.fail_write_job(nic, ctx, size, protocol, retries, start);
                self.fill(nic, ctx);
                return;
            }
        };

        match protocol {
            WriteProtocol::Raw => {
                if placement.stripes.len() > 1 {
                    send_striped(&mut pending, nic, ctx, &placement, &data, None);
                } else {
                    let wrh = WriteReqHeader {
                        target_addr: placement.primary.addr,
                        len: size,
                        resiliency: Resiliency::None,
                    };
                    let msg =
                        nic.send_write(ctx, placement.primary.node as NodeId, None, wrh, data);
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::Spin => {
                let dfs = self.dfs_header(nic, file, greq);
                if abandon {
                    // Abandon after the first packet of the first (or
                    // only) extent; remaining extents never leave the
                    // client, modeling a mid-stream client failure.
                    let (target, len) = match placement.stripes.first() {
                        Some(st) => (st.coord, st.len),
                        None => (placement.primary, size),
                    };
                    let wrh = WriteReqHeader {
                        target_addr: target.addr,
                        len,
                        resiliency: Resiliency::None,
                    };
                    let (msg, mut frames) =
                        nic.build_write_frames(Some(dfs), wrh, data.slice(..len as usize));
                    frames.truncate(1);
                    nic.send_frames(ctx, target.node as NodeId, frames);
                    pending.msgs.push(msg);
                    pending.acks_needed = u32::MAX; // never completes
                } else if placement.stripes.len() > 1 {
                    send_striped(&mut pending, nic, ctx, &placement, &data, Some(dfs));
                } else {
                    let wrh = WriteReqHeader {
                        target_addr: placement.primary.addr,
                        len: size,
                        resiliency: Resiliency::None,
                    };
                    let msg =
                        nic.send_write(ctx, placement.primary.node as NodeId, Some(dfs), wrh, data);
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::Rpc | WriteProtocol::RpcRdma => {
                let inline = protocol == WriteProtocol::Rpc;
                let dfs = self.dfs_header(nic, file, greq);
                // One independent RPC per stripe extent (a width-1 layout
                // is a single extent at `primary`): each extent's bytes
                // must land at that extent's address, never overrun the
                // first extent's allocation.
                let extents: Vec<(nadfs_wire::ReplicaCoord, u32)> = if placement.stripes.len() > 1 {
                    placement.stripes.iter().map(|s| (s.coord, s.len)).collect()
                } else {
                    vec![(placement.primary, size)]
                };
                pending.acks_needed = extents.len() as u32;
                let mut off = 0usize;
                for (coord, len) in extents {
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len,
                        resiliency: Resiliency::None,
                    };
                    let slice = data.slice(off..off + len as usize);
                    let src_addr = if inline {
                        0
                    } else {
                        // Stage the extent in client memory for the
                        // storage-side RDMA read.
                        let a = nic.memory().borrow_mut().alloc(len as u64);
                        nic.memory().borrow_mut().write(a, &slice);
                        a
                    };
                    let body = RpcBody::WriteReq {
                        dfs,
                        wrh,
                        inline_data: inline,
                        src_addr,
                        chunk_off: 0,
                        full_len: len,
                    };
                    let msg = nic.send_rpc(
                        ctx,
                        coord.node as NodeId,
                        body,
                        if inline { slice } else { Bytes::new() },
                    );
                    pending.msgs.push(msg);
                    off += len as usize;
                }
            }
            WriteProtocol::RdmaFlat => {
                // One independent write per replica; full client trust.
                pending.acks_needed = placement.replicas.len() as u32;
                for coord in &placement.replicas {
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len: size,
                        resiliency: Resiliency::None,
                    };
                    let msg = nic.send_write(ctx, coord.node as NodeId, None, wrh, data.clone());
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::HyperLoop { chunk } => {
                // Phase 1: configure the ring (k parallel WQE writes).
                let k = placement.replicas.len();
                pending.phase = Phase::HlConfiguring {
                    acks_left: k as u32,
                };
                pending.acks_needed = 1; // the tail data ack
                for (i, coord) in placement.replicas.iter().enumerate() {
                    let cfg = HlConfigPkt {
                        msg: MsgId::new(0, 0),
                        greq_id: greq,
                        local_addr: coord.addr,
                        total_len: size,
                        chunk,
                        next: placement.replicas.get(i + 1).copied(),
                        ack_client: i == k - 1,
                        frag: 0,
                        total_frags: 1,
                    };
                    let msg = nic.send_hl_config(ctx, coord.node as NodeId, cfg);
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::CpuBcast { chunk } => {
                let FilePolicy::Replicated { strategy, .. } = policy else {
                    panic!("CpuBcast requires a replicated file");
                };
                let dfs = self.dfs_header(nic, file, greq);
                let k = placement.replicas.len() as u32;
                pending.acks_needed = k;
                let chunk = chunk.max(1).min(size.max(1));
                let mut off = 0u32;
                while off < size || (size == 0 && off == 0) {
                    let len = chunk.min(size - off);
                    let wrh = WriteReqHeader {
                        target_addr: placement.primary.addr + off as u64,
                        len,
                        resiliency: Resiliency::Replicate {
                            strategy,
                            vrank: 0,
                            coords: placement.replicas.clone(),
                        },
                    };
                    let body = RpcBody::WriteReq {
                        dfs,
                        wrh,
                        inline_data: true,
                        src_addr: 0,
                        chunk_off: off,
                        full_len: size,
                    };
                    let msg = nic.send_rpc(
                        ctx,
                        placement.primary.node as NodeId,
                        body,
                        data.slice(off as usize..(off + len) as usize),
                    );
                    pending.msgs.push(msg);
                    off += len;
                    if size == 0 {
                        break;
                    }
                }
            }
            WriteProtocol::SpinReplicated => {
                let FilePolicy::Replicated { strategy, .. } = policy else {
                    panic!("SpinReplicated requires a replicated file");
                };
                let dfs = self.dfs_header(nic, file, greq);
                pending.acks_needed = placement.replicas.len() as u32;
                let wrh = WriteReqHeader {
                    target_addr: placement.primary.addr,
                    len: size,
                    resiliency: Resiliency::Replicate {
                        strategy,
                        vrank: 0,
                        coords: placement.replicas.clone(),
                    },
                };
                let msg =
                    nic.send_write(ctx, placement.primary.node as NodeId, Some(dfs), wrh, data);
                pending.msgs.push(msg);
            }
            WriteProtocol::SpinTriec { .. } | WriteProtocol::InecTriec => {
                let FilePolicy::ErasureCoded { scheme } = policy else {
                    panic!("TriEC requires an erasure-coded file");
                };
                let interleave = match protocol {
                    WriteProtocol::SpinTriec { interleave } => interleave,
                    _ => false,
                };
                let dfs = self.dfs_header(nic, file, greq);
                let k = scheme.k as usize;
                let m = scheme.m as usize;
                pending.acks_needed = (k + m) as u32;
                let chunk_len = placement.chunk_len;
                // Split the block into k chunks. Full chunks are zero-copy
                // windows into the block; only a ragged tail chunk needs
                // staging (zero-padded), and that buffer comes from the
                // NIC's recycled ring.
                let mut per_chunk_frames: Vec<(NodeId, Vec<Frame>)> = Vec::with_capacity(k);
                for (j, coord) in placement.data_chunks.iter().enumerate() {
                    let startb = (j as u32 * chunk_len).min(size) as usize;
                    let endb = ((j as u32 + 1) * chunk_len).min(size) as usize;
                    let chunk_data = if endb - startb == chunk_len as usize {
                        data.slice(startb..endb)
                    } else {
                        let mut staged = nic.buf_pool().borrow_mut().get(chunk_len as usize);
                        staged[..endb - startb].copy_from_slice(&data[startb..endb]);
                        Bytes::from(staged)
                    };
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len: chunk_len,
                        resiliency: Resiliency::ErasureCode(EcInfo {
                            scheme,
                            role: EcRole::Data { chunk_idx: j as u8 },
                            stripe: greq,
                            parity_coords: placement.parities.clone(),
                        }),
                    };
                    let (msg, frames) = nic.build_write_frames(Some(dfs), wrh, chunk_data);
                    pending.msgs.push(msg);
                    per_chunk_frames.push((coord.node as NodeId, frames));
                }
                if interleave {
                    // §VI-B-1: interleave packets across chunks so the
                    // parity node can aggregate as streams progress.
                    let mut mixed = Vec::new();
                    let max_len = per_chunk_frames
                        .iter()
                        .map(|(_, f)| f.len())
                        .max()
                        .unwrap_or(0);
                    for i in 0..max_len {
                        for (dst, frames) in &per_chunk_frames {
                            if let Some(f) = frames.get(i) {
                                mixed.push((*dst, f.clone()));
                            }
                        }
                    }
                    nic.send_mixed(ctx, mixed);
                } else {
                    for (dst, frames) in per_chunk_frames {
                        nic.send_frames(ctx, dst, frames);
                    }
                }
            }
        }
        for m in &pending.msgs {
            self.msg_to_greq.insert(*m, greq);
        }
        self.in_flight.insert(greq, pending);
    }

    fn finish(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, greq: u64) {
        let p = self.in_flight.remove(&greq).expect("pending");
        for m in &p.msgs {
            self.msg_to_greq.remove(m);
        }
        let Job::Write {
            file,
            size,
            protocol,
            ..
        } = p.job
        else {
            return;
        };
        // The application observes completion one poll interval after the
        // ack reaches the NIC (CQ polling cost, charged to every protocol).
        let end = ctx.now() + nic.cpu.costs.poll_notify;
        if p.status == Status::Ok {
            if self.cache_enabled {
                // Write-back metadata: absorb the size/mtime update
                // locally; a batch flush pays one round-trip for many
                // writes.
                self.meta_cache
                    .borrow_mut()
                    .buffer_append(file, size as u64, end.as_ns() as u64);
                if self.meta_cache.borrow().dirty_count() >= WRITEBACK_BATCH {
                    self.flush_writeback();
                }
            } else {
                // Write-through: an uncached client pays one attr-update
                // round-trip per write (and never goes stale).
                let _ = self.control.borrow_mut().flush_attrs(&[(
                    file,
                    nadfs_meta::DirtyAttr {
                        appended: size as u64,
                        mtime_ns: end.as_ns() as u64,
                    },
                )]);
            }
        }
        self.results.borrow_mut().writes.push(WriteResult {
            greq,
            client: nic.node(),
            protocol,
            size,
            start: p.start,
            end,
            status: p.status,
            retries: p.retries,
            placement: p.placement,
        });
        self.fill(nic, ctx);
    }
}

fn job_clone(j: &Job) -> Job {
    j.clone()
}

/// Fan a striped plain write out as one write per stripe extent (with the
/// DFS header when going through the NIC handlers), acked independently.
fn send_striped(
    pending: &mut Pending,
    nic: &mut NicCore,
    ctx: &mut Ctx<'_>,
    placement: &WritePlacement,
    data: &Bytes,
    dfs: Option<DfsHeader>,
) {
    pending.acks_needed = placement.stripes.len() as u32;
    let mut off = 0usize;
    for st in &placement.stripes {
        let wrh = WriteReqHeader {
            target_addr: st.coord.addr,
            len: st.len,
            resiliency: Resiliency::None,
        };
        let msg = nic.send_write(
            ctx,
            st.coord.node as NodeId,
            dfs,
            wrh,
            data.slice(off..off + st.len as usize),
        );
        pending.msgs.push(msg);
        off += st.len as usize;
    }
}

impl NicApp for ClientApp {
    fn on_ack(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, _src: NodeId, ack: AckPkt) {
        let greq = ack
            .greq_id
            .filter(|g| self.in_flight.contains_key(g))
            .or_else(|| self.msg_to_greq.get(&ack.msg).copied());
        let Some(greq) = greq else {
            return; // stale (e.g. ack after cleanup-driven completion)
        };
        let Some(p) = self.in_flight.get_mut(&greq) else {
            return;
        };
        match ack.status {
            Status::Busy => {
                // Descriptor exhaustion: retry the whole request later
                // (§III-B: "the request is denied, and the client will
                // retry later").
                let p = self.in_flight.remove(&greq).expect("pending");
                for m in &p.msgs {
                    self.msg_to_greq.remove(m);
                }
                let retries = p.retries + 1;
                let Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                } = p.job
                else {
                    return;
                };
                let job = Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                };
                // Re-place the same logical extent (fresh addresses, no
                // cursor advance) and retry after a backoff. If the file
                // is gone by now (unlinked under us), the job fails.
                let prev_offset = p.placement.offset;
                let placed = self
                    .control
                    .borrow_mut()
                    .replace_write(file, size, prev_offset);
                let placement = match placed {
                    Ok(p) => p,
                    Err(_) => {
                        self.fail_write_job(nic, ctx, size, protocol, retries, ctx.now());
                        self.fill(nic, ctx);
                        return;
                    }
                };
                let tag = RETRY_BASE | placement.greq;
                self.retry_stash.push((tag, job, placement, retries));
                nic.set_timer(ctx, Dur::from_us(5 * retries as u64), tag);
            }
            Status::AuthFailed | Status::Rejected => {
                p.status = ack.status;
                p.acks_got += 1;
                // A rejection terminates the request immediately.
                let needed = p.acks_got.max(1);
                p.acks_needed = needed;
                if p.acks_got >= needed {
                    self.finish(nic, ctx, greq);
                }
            }
            Status::Ok => match &mut p.phase {
                Phase::HlConfiguring { acks_left } => {
                    *acks_left -= 1;
                    if *acks_left == 0 {
                        // Ring armed: push the data to the head node.
                        p.phase = Phase::Data;
                        let Job::Write { size, seed, .. } = p.job else {
                            return;
                        };
                        let head = p.placement.replicas[0];
                        let wrh = WriteReqHeader {
                            target_addr: head.addr,
                            len: size,
                            resiliency: Resiliency::None,
                        };
                        let data = Self::payload(seed, size);
                        let msg = nic.send_write(ctx, head.node as NodeId, None, wrh, data);
                        p.msgs.push(msg);
                        let greq2 = greq;
                        self.msg_to_greq.insert(msg, greq2);
                    }
                }
                Phase::Data => {
                    p.acks_got += 1;
                    if p.acks_got >= p.acks_needed {
                        self.finish(nic, ctx, greq);
                    }
                }
            },
        }
    }

    fn on_read_done(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, token: u64) {
        self.read_tokens.remove(&token);
        self.results.borrow_mut().reads.push(ReadResult {
            token,
            end: ctx.now(),
        });
        self.fill(nic, ctx);
    }

    fn on_timer(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == KICK {
            self.fill(nic, ctx);
            return;
        }
        if tag & META_BASE == META_BASE {
            if let Some(idx) = self.meta_stash.iter().position(|(t, _)| *t == tag) {
                let (_, pm) = self.meta_stash.remove(idx);
                self.meta_in_flight -= 1;
                self.results.borrow_mut().metas.push(MetaResult {
                    token: pm.token,
                    client: nic.node(),
                    op: pm.kind,
                    start: pm.start,
                    end: ctx.now(),
                    cache_hit: pm.cache_hit,
                    result: pm.result,
                });
                self.fill(nic, ctx);
            }
            return;
        }
        if tag & RETRY_BASE == RETRY_BASE {
            if let Some(idx) = self.retry_stash.iter().position(|(t, ..)| *t == tag) {
                let (_, job, placement, retries) = self.retry_stash.remove(idx);
                let Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                } = job
                else {
                    return;
                };
                self.issue_write(
                    nic,
                    ctx,
                    Job::Write {
                        file,
                        size,
                        protocol,
                        seed,
                    },
                    file,
                    size,
                    protocol,
                    seed,
                    placement,
                    retries,
                    ctx.now(),
                );
            }
            return;
        }
        if tag & ISSUE_BASE == ISSUE_BASE {
            if let Some(idx) = self.issue_stash.iter().position(|(t, ..)| *t == tag) {
                let (_, job, placement, start) = self.issue_stash.remove(idx);
                let Job::Write {
                    file,
                    size,
                    protocol,
                    seed,
                } = job
                else {
                    return;
                };
                self.issue_write(
                    nic,
                    ctx,
                    Job::Write {
                        file,
                        size,
                        protocol,
                        seed,
                    },
                    file,
                    size,
                    protocol,
                    seed,
                    placement,
                    0,
                    start,
                );
            }
        }
    }
}
