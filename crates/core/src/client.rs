//! The DFS client driver: issues writes under every protocol the paper
//! evaluates and records completion latencies.
//!
//! One `ClientApp` runs above each client node's NIC. Jobs are taken from a
//! shared plan queue (filled by tests/benchmark harnesses before the run);
//! a configurable window of requests is kept in flight. Completion
//! semantics per protocol follow §IV-§VI (see [`WriteProtocol`]).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use nadfs_gfec::ReedSolomon;
use nadfs_meta::{CachedEntry, LayoutSpec, MetaCache, MetaError, ReadPiece};
use nadfs_rdma::{NicApp, NicCore};
use nadfs_simnet::telemetry::phase;
use nadfs_simnet::{
    Ctx, Dur, NodeId, ObsHub, OpKind, SharedObs, SharedTrace, SpanId, TenantId, Time, Trace,
    TENANT_REPAIR,
};
use nadfs_wire::{
    payload_checksum, AckPkt, Capability, DfsHeader, DfsOp, EcInfo, EcRole, Frame, GatherCopy,
    GatherReadHeader, GatherReconstruct, GatherSegment, HlConfigPkt, MsgId, ReadReqHeader,
    ReplicaCoord, Resiliency, Rights, RpcBody, RsScheme, Status, WriteReqHeader, MAX_GATHER_SEGS,
};

use crate::cache::ReadCache;
use crate::config::MetaCosts;
use crate::control::{FilePolicy, RepairPlan, RepairTask, SharedControl, WritePlacement};

/// Timer tag: start pulling jobs from the plan.
pub const KICK: u64 = 0;
const RETRY_BASE: u64 = 0x5254_0000_0000_0000;
const ISSUE_BASE: u64 = 0x4953_0000_0000_0000;
const META_BASE: u64 = 0x4D45_0000_0000_0000;
const READ_FIN_BASE: u64 = 0x5246_0000_0000_0000;
const READ_SUB_BASE: u64 = 0x5244_0000_0000_0000;
const READ_ISSUE_BASE: u64 = 0x5249_0000_0000_0000;
const CACHE_FIN_BASE: u64 = 0x4348_0000_0000_0000;
const REPAIR_FIN_BASE: u64 = 0x5046_0000_0000_0000;
const REPAIR_SUB_BASE: u64 = 0x5052_0000_0000_0000;

/// Buffered write-back attr updates are flushed to the control plane once
/// this many files are dirty (one round-trip for the whole batch).
const WRITEBACK_BATCH: usize = 8;

/// Write protocols (the paper's comparison axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteProtocol {
    /// Speed-of-light: single RDMA write, no policy enforcement (§IV).
    Raw,
    /// Single RDMA write through sPIN handlers (validation on the NIC).
    Spin,
    /// SEND carrying the data; storage CPU validates, copies, stores (§IV).
    Rpc,
    /// SEND request; storage CPU validates then RDMA-reads the data (§IV).
    RpcRdma,
    /// Client writes each replica itself (k writes, full trust) (§V).
    RdmaFlat,
    /// Pre-posted triggered-WQE ring with remote WQE configuration (§V).
    HyperLoop { chunk: u32 },
    /// Storage CPUs forward along the file's broadcast schedule, chunked
    /// and pipelined (CPU-Ring / CPU-PBT depending on the file policy).
    CpuBcast { chunk: u32 },
    /// One write; sPIN handlers forward per packet (sPIN-Ring / sPIN-PBT
    /// depending on the file policy) (§V).
    SpinReplicated,
    /// Per-packet streaming TriEC on PsPIN (§VI-B). `interleave` controls
    /// the client-side packet interleaving of §VI-B-1 (the ablation).
    SpinTriec { interleave: bool },
    /// Per-chunk firmware TriEC on conventional RDMA NICs (§VI-A).
    InecTriec,
}

/// A metadata operation issued by a client (paths are absolute).
#[derive(Clone, Debug)]
pub enum MetaOp {
    Mkdir { path: String },
    Create { path: String, spec: LayoutSpec },
    Lookup { path: String },
    Readdir { path: String },
    Rename { from: String, to: String },
    Unlink { path: String },
}

impl MetaOp {
    pub fn kind(&self) -> MetaOpKind {
        match self {
            MetaOp::Mkdir { .. } => MetaOpKind::Mkdir,
            MetaOp::Create { .. } => MetaOpKind::Create,
            MetaOp::Lookup { .. } => MetaOpKind::Lookup,
            MetaOp::Readdir { .. } => MetaOpKind::Readdir,
            MetaOp::Rename { .. } => MetaOpKind::Rename,
            MetaOp::Unlink { .. } => MetaOpKind::Unlink,
        }
    }
}

/// Which metadata operation a [`MetaResult`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetaOpKind {
    Mkdir,
    Create,
    Lookup,
    Readdir,
    Rename,
    Unlink,
}

/// How a file-level read travels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadProtocol {
    /// Per-extent fan-out of one-sided RDMA reads, capability-validated on
    /// the storage NIC (the read-side analog of the sPIN write path).
    Rdma,
    /// SEND request per extent; the storage CPU validates, then streams
    /// the bytes back (the CPU baseline).
    Rpc,
    /// NIC-offloaded gather: one request per storage node; sPIN handlers
    /// validate once, the NIC collects the node's segments (fetching
    /// remote survivors NIC-to-NIC and reconstructing degraded stripes on
    /// the firmware EC engine), and streams them back as a single flow.
    Offloaded,
}

/// Client-side read-path counters, shared out of the engine so the
/// cluster can export them after the app moves into the simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientReadStats {
    /// Degraded stripes reconstructed on the client CPU (fan-out paths).
    pub reconstructed_stripes: u64,
    /// Gather requests sent (offloaded protocol).
    pub offloaded_reads: u64,
    /// Degraded stripes delegated to on-NIC reconstruction.
    pub offloaded_degraded_stripes: u64,
    /// Background readahead-tail ops spawned by the async split.
    pub background_readaheads: u64,
}

pub type SharedClientReadStats = Rc<RefCell<ClientReadStats>>;

/// One unit of client work.
#[derive(Clone, Debug)]
pub enum Job {
    /// Legacy write with a seed-generated payload (the workload/benchmark
    /// adapter; real data goes through [`Job::WriteAt`]).
    Write {
        file: u64,
        size: u32,
        protocol: WriteProtocol,
        seed: u64,
    },
    /// Handle-API write: explicit bytes at an explicit offset (`None` =
    /// append at the cursor). The typed completion lands in `slot`.
    WriteAt {
        file: u64,
        offset: Option<u64>,
        data: Bytes,
        protocol: WriteProtocol,
        slot: Option<WriteSlot>,
    },
    /// File-level ranged read: layout resolution, per-stripe fan-out,
    /// client-side reassembly, degraded reconstruction when a storage
    /// node is marked failed.
    Read {
        file: u64,
        offset: u64,
        len: u32,
        protocol: ReadProtocol,
        token: u64,
        slot: Option<ReadSlot>,
    },
    /// Execute one background repair task: fetch surviving shards,
    /// rebuild, write the re-protected shards to their spare nodes, and
    /// commit the extent-map update. Submitted by the repair driver.
    Repair {
        task: RepairTask,
        token: u64,
        slot: Option<RepairSlot>,
    },
    /// One-sided read of a raw region (verification / read-path latency).
    RawRead {
        node: NodeId,
        addr: u64,
        len: u32,
        token: u64,
    },
    /// A metadata operation (namespace traffic).
    Meta { op: MetaOp, token: u64 },
}

/// Completion record.
#[derive(Clone, Debug)]
pub struct WriteResult {
    pub greq: u64,
    pub client: NodeId,
    pub protocol: WriteProtocol,
    pub size: u32,
    pub start: Time,
    pub end: Time,
    pub status: Status,
    pub retries: u32,
    /// Checksum of the payload as sent (reads can verify against it).
    pub checksum: u64,
    /// Placement used (lets tests verify stored bytes).
    pub placement: WritePlacement,
}

/// Raw-region read completion (the legacy `Job::RawRead`).
#[derive(Clone, Debug)]
pub struct ReadResult {
    pub token: u64,
    pub end: Time,
    /// Bytes fetched.
    pub len: u32,
    /// Checksum of the fetched bytes (read-back verification).
    pub checksum: u64,
}

/// Typed completion of one file-level read.
#[derive(Clone, Debug)]
pub struct ReadCompletion {
    pub token: u64,
    pub client: NodeId,
    pub file: u64,
    pub protocol: ReadProtocol,
    pub offset: u64,
    /// Bytes actually returned (requests past EOF come back short).
    pub len: u32,
    pub start: Time,
    pub end: Time,
    pub status: Status,
    /// Stripes served through degraded reconstruction.
    pub degraded_stripes: u32,
    /// Served from the client read cache (no resolve, no fan-out).
    pub from_cache: bool,
    /// Checksum of `data` (compare against the writes' checksums).
    pub checksum: u64,
    pub data: Bytes,
}

/// Oneshot completion slot: the driver fills it exactly once when the op
/// completes; the submitter polls it between sim slices. This is the
/// typed per-op channel the `FsClient` facade uses instead of digging
/// through the shared [`ResultSink`].
pub type ReadSlot = Rc<RefCell<Option<ReadCompletion>>>;
pub type WriteSlot = Rc<RefCell<Option<WriteResult>>>;
pub type RepairSlot = Rc<RefCell<Option<RepairResult>>>;

/// What a finished repair task did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Erasure-coded shards (data or parity, by shard index) were
    /// reconstructed from k survivors and re-homed to spares.
    Rebuilt { shards: Vec<usize> },
    /// Lost replicas (by replica index) were cloned from a survivor.
    Cloned { replicas: Vec<usize> },
    /// Nothing referenced a failed node by the time the task ran.
    AlreadyHealthy,
    /// The extent cannot be re-protected (typed reason): plain extent on
    /// a failed node, more than m EC shards lost, or no spare node.
    Unrepairable(MetaError),
    /// The data path failed mid-repair (NACK, auth failure, busy): the
    /// driver may requeue and retry.
    Aborted(Status),
}

/// Typed completion of one repair task.
#[derive(Clone, Debug)]
pub struct RepairResult {
    pub token: u64,
    pub client: NodeId,
    pub task: RepairTask,
    pub status: Status,
    pub outcome: RepairOutcome,
    pub start: Time,
    pub end: Time,
    /// Data-path bytes this repair moved (shards fetched + written).
    pub bytes_moved: u64,
}

/// Completion record of one metadata operation.
#[derive(Clone, Debug)]
pub struct MetaResult {
    pub token: u64,
    pub client: NodeId,
    pub op: MetaOpKind,
    pub start: Time,
    pub end: Time,
    /// Answered from the client cache (no control round-trip).
    pub cache_hit: bool,
    /// Typed outcome: metadata misses surface as failed jobs.
    pub result: Result<(), MetaError>,
}

/// Shared sink for completions.
#[derive(Default)]
pub struct ResultSink {
    pub writes: Vec<WriteResult>,
    pub reads: Vec<ReadResult>,
    /// File-level read completions (every one is also delivered through
    /// its oneshot slot, when the job carried one).
    pub file_reads: Vec<ReadCompletion>,
    pub metas: Vec<MetaResult>,
    /// Repair-task completions (also delivered through oneshot slots).
    pub repairs: Vec<RepairResult>,
}

pub type SharedResults = Rc<RefCell<ResultSink>>;
pub type SharedPlan = Rc<RefCell<VecDeque<Job>>>;

enum Phase {
    /// Waiting for HyperLoop config acks; then the data write goes out.
    HlConfiguring { acks_left: u32 },
    /// Data in flight; counting completion acks.
    Data,
}

struct Pending {
    job: Job,
    placement: WritePlacement,
    /// The payload (kept for HyperLoop's deferred data phase).
    data: Bytes,
    checksum: u64,
    start: Time,
    acks_needed: u32,
    acks_got: u32,
    phase: Phase,
    retries: u32,
    status: Status,
    /// Message ids belonging to this request (for greq-less acks).
    msgs: Vec<MsgId>,
}

/// One degraded erasure-coded stripe within an in-flight read: the k
/// surviving shards land in `scratch`; reconstruction fills the `copy`
/// ranges of the destination buffer.
struct DegradedFetch {
    scheme: RsScheme,
    chunk_len: u32,
    /// Client-memory staging base: fetched shard `s` lands at
    /// `scratch + s * chunk_len` (slot order follows `fetched`).
    scratch: u64,
    /// Shard index (0..k+m) of each fetched slot.
    fetched: Vec<usize>,
    copy: Vec<nadfs_meta::ChunkCopy>,
}

/// One in-flight file-level read (fan-out issued, awaiting pieces).
struct PendingReadOp {
    token: u64,
    file: u64,
    protocol: ReadProtocol,
    offset: u64,
    /// Clamped length being *fetched* (caller's range plus any readahead
    /// window, clamped to the committed size).
    len: u32,
    /// Bytes of the fetch actually delivered to the caller (`<= len`;
    /// the rest is readahead that only populates the cache).
    serve_len: u32,
    /// Length the fetch asked the resolver for, pre-clamp: when
    /// `len < fetch_want` the clamp proved the committed EOF.
    fetch_want: u32,
    /// Extent-map generation of the plan — the staleness tag the cache
    /// fill carries.
    generation: u64,
    /// Destination buffer in client memory.
    dest: u64,
    start: Time,
    subs_left: u32,
    status: Status,
    degraded: Vec<DegradedFetch>,
    /// Degraded stripes the offloaded path delegated to on-NIC
    /// reconstruction (reported in the completion; no client rebuild).
    offloaded_degraded: u32,
    /// A readahead-tail op: fills the cache, delivers no completion, and
    /// does not occupy a window slot.
    background: bool,
    /// Request message ids (for NACK routing and cleanup).
    msgs: Vec<MsgId>,
    /// Sub-fetch tokens (for map cleanup: a NACKed piece never fires
    /// `on_read_done`, so its token entry must be reaped at completion).
    subs: Vec<u64>,
    slot: Option<ReadSlot>,
    /// Wire-level request id the fan-out travels under (span correlation).
    greq: u64,
    span: SpanId,
}

/// The wire program a read op injects once its doorbell cost elapses.
enum ReadIssue {
    /// Per-piece fan-out: (node, remote addr, len, local addr) fetches.
    Fanout(Vec<(NodeId, u64, u32, u64)>),
    /// Offloaded gathers: one request per storage node (or per degraded
    /// stripe); each streams back as a single NIC-validated flow.
    Gather(Vec<(NodeId, GatherReadHeader)>),
}

/// One file-level read request (original parameters + its open span):
/// the unit the miss path consumes, and what parks on an in-flight
/// background readahead covering its range.
struct ReadReq {
    token: u64,
    file: u64,
    offset: u64,
    len: u32,
    protocol: ReadProtocol,
    slot: Option<ReadSlot>,
    span: SpanId,
    start: Time,
}

/// A read answered from the client read cache, waiting out its simulated
/// probe + copy latency before the completion is delivered.
struct PendingCacheHit {
    token: u64,
    file: u64,
    protocol: ReadProtocol,
    offset: u64,
    data: Bytes,
    start: Time,
    slot: Option<ReadSlot>,
    span: SpanId,
}

/// One in-flight repair task: surviving shards stream into `scratch`,
/// rebuilt shards fan out as writes to their spare coordinates, and the
/// extent-map update commits once every write acknowledges.
struct PendingRepair {
    token: u64,
    task: RepairTask,
    plan: RepairPlan,
    /// Client-memory staging base for fetched shards (fetch-slot order).
    scratch: u64,
    start: Time,
    fetch_left: u32,
    write_acks_left: u32,
    /// False while fetching survivors; true once spare writes are out.
    writing: bool,
    bytes_moved: u64,
    msgs: Vec<MsgId>,
    subs: Vec<u64>,
    slot: Option<RepairSlot>,
    /// Wire-level request ids the task used (fetch + spare writes), all
    /// correlated to the span for storage-side phase marks.
    greqs: Vec<u64>,
    span: SpanId,
}

/// The client node software.
pub struct ClientApp {
    control: SharedControl,
    results: SharedResults,
    plan: SharedPlan,
    window: usize,
    in_flight: HashMap<u64, Pending>,
    msg_to_greq: HashMap<MsgId, u64>,
    caps: HashMap<u64, Capability>,
    /// Deliberately corrupt capabilities (security tests).
    pub forge_capabilities: bool,
    /// Abandon writes after the first packet (cleanup-handler tests):
    /// every Nth job is abandoned when set.
    pub abandon_every: Option<u64>,
    jobs_started: u64,
    /// Raw-read token → (local address, length) for checksum at completion.
    read_tokens: HashMap<u64, (u64, u32)>,
    retry_stash: Vec<(u64, Job, WritePlacement, u32)>,
    issue_stash: Vec<(u64, Job, WritePlacement, Time)>,
    /// In-flight file reads by internal op id.
    reads_in_flight: HashMap<u64, PendingReadOp>,
    /// Sub-fetch token → op id.
    read_sub_to_op: HashMap<u64, u64>,
    /// Request message → op id (NACK routing).
    read_msg_to_op: HashMap<MsgId, u64>,
    next_read_op: u64,
    next_read_sub: u64,
    /// Deferred read completions waiting out the reconstruction CPU cost.
    read_fin_stash: Vec<(u64, u64)>,
    /// Read fan-outs waiting out the verbs-post (doorbell) cost:
    /// (tag, op id, wire program, DFS header).
    read_issue_stash: Vec<(u64, u64, ReadIssue, DfsHeader)>,
    /// Cached READ capabilities by file.
    read_caps: HashMap<u64, Capability>,
    /// Expiry stamped into issued READ capabilities (tests set this into
    /// the past to exercise capability-expired reads).
    pub read_cap_expires_at_ns: u64,
    /// Cached RS codecs for client-side degraded reconstruction.
    rs_cache: HashMap<(u8, u8), ReedSolomon>,
    /// Shared read-path counters (exported by the cluster's metrics
    /// snapshot; the handle survives the app moving into the engine).
    pub read_stats: SharedClientReadStats,
    /// Background readahead ops currently in `reads_in_flight` (they do
    /// not occupy window slots).
    background_reads: usize,
    /// Reads parked on an in-flight background readahead whose range
    /// covers theirs (background op id → waiters): instead of a duplicate
    /// resolve + fan-out they resume from the cache when the fill lands.
    ra_waiters: HashMap<u64, Vec<ReadReq>>,
    /// Parked reads (they hold their window slot while waiting).
    parked_reads: usize,
    /// In-flight repair tasks by internal op id.
    repairs_in_flight: HashMap<u64, PendingRepair>,
    /// Repair shard-fetch token → repair op id.
    repair_sub_to_op: HashMap<u64, u64>,
    /// Repair request/write message → repair op id (NACKs and acks).
    repair_msg_to_op: HashMap<MsgId, u64>,
    next_repair_op: u64,
    /// Repairs waiting out the reconstruction CPU cost before their
    /// spare writes go out.
    repair_fin_stash: Vec<(u64, u64)>,
    /// Client-side metadata cache (registered with the control plane for
    /// invalidation callbacks at construction).
    pub meta_cache: Rc<RefCell<MetaCache>>,
    /// Disable to measure the uncached baseline (every op round-trips).
    pub cache_enabled: bool,
    /// Client-side read cache + readahead, keyed by the extent-map
    /// generation (registered with the control plane for generation
    /// callbacks at construction).
    pub read_cache: Rc<RefCell<ReadCache>>,
    /// Disable to measure the uncached read path (every `read_at` pays a
    /// resolve plus the full fan-out).
    pub read_cache_enabled: bool,
    /// Cache-hit completions waiting out the probe + copy latency.
    cache_fin_stash: Vec<(u64, PendingCacheHit)>,
    next_cache_tag: u64,
    /// Latency model for metadata traffic.
    pub meta_costs: MetaCosts,
    meta_in_flight: usize,
    meta_stash: Vec<(u64, PendingMeta)>,
    next_meta_tag: u64,
    /// When true, a storm of [`Job::Meta`] ops shares one
    /// [`OpKind::MetaBulk`] span carrying op-count attribution in its
    /// label instead of minting one span per op, so bulk namespace
    /// workloads cannot saturate the completed-span ring.
    pub bulk_meta_spans: bool,
    /// Open bulk span (0 when none is active).
    bulk_meta_span: SpanId,
    /// Ops attributed to the open bulk span.
    bulk_meta_ops: u64,
    /// Failed ops among them (a bulk span closes `ok` only if all passed).
    bulk_meta_errs: u64,
    /// Observability hub: op spans + metrics. Constructed disabled; the
    /// cluster build replaces it with the shared, enabled hub.
    pub obs: SharedObs,
    /// Shared trace ring: control-plane calls this client makes (resolve,
    /// commit, repair planning) are annotated on the `control` track.
    pub trace: SharedTrace,
    /// Tenant id stamped into DFS headers for QoS scheduling at storage
    /// nodes. `None` means "use the node id" (each client its own tenant);
    /// the handle is shared with the cluster so tests can regroup clients
    /// after the app has moved into the engine. Repair traffic overrides
    /// this with [`TENANT_REPAIR`].
    pub tenant: Rc<Cell<Option<TenantId>>>,
}

/// A metadata op whose (already-determined) outcome is waiting out its
/// simulated latency.
struct PendingMeta {
    token: u64,
    kind: MetaOpKind,
    start: Time,
    cache_hit: bool,
    result: Result<(), MetaError>,
    span: SpanId,
}

impl ClientApp {
    pub fn new(
        control: SharedControl,
        results: SharedResults,
        plan: SharedPlan,
        window: usize,
    ) -> ClientApp {
        let meta_cache = Rc::new(RefCell::new(MetaCache::new()));
        control.borrow_mut().register_cache(meta_cache.clone());
        let read_cache = Rc::new(RefCell::new(ReadCache::default()));
        control.borrow_mut().register_read_cache(read_cache.clone());
        ClientApp {
            control,
            results,
            plan,
            window,
            in_flight: HashMap::new(),
            msg_to_greq: HashMap::new(),
            caps: HashMap::new(),
            forge_capabilities: false,
            abandon_every: None,
            jobs_started: 0,
            read_tokens: HashMap::new(),
            retry_stash: Vec::new(),
            issue_stash: Vec::new(),
            reads_in_flight: HashMap::new(),
            read_sub_to_op: HashMap::new(),
            read_msg_to_op: HashMap::new(),
            next_read_op: 0,
            next_read_sub: 0,
            read_fin_stash: Vec::new(),
            read_issue_stash: Vec::new(),
            read_caps: HashMap::new(),
            read_cap_expires_at_ns: u64::MAX / 2,
            rs_cache: HashMap::new(),
            read_stats: Rc::new(RefCell::new(ClientReadStats::default())),
            background_reads: 0,
            ra_waiters: HashMap::new(),
            parked_reads: 0,
            repairs_in_flight: HashMap::new(),
            repair_sub_to_op: HashMap::new(),
            repair_msg_to_op: HashMap::new(),
            next_repair_op: 0,
            repair_fin_stash: Vec::new(),
            meta_cache,
            cache_enabled: true,
            read_cache,
            read_cache_enabled: true,
            cache_fin_stash: Vec::new(),
            next_cache_tag: 0,
            meta_costs: MetaCosts::default(),
            meta_in_flight: 0,
            meta_stash: Vec::new(),
            next_meta_tag: 0,
            bulk_meta_spans: false,
            bulk_meta_span: 0,
            bulk_meta_ops: 0,
            bulk_meta_errs: 0,
            obs: ObsHub::disabled(),
            trace: Trace::disabled(),
            tenant: Rc::new(Cell::new(None)),
        }
    }

    /// Open a span for one client op. The label closure only runs when
    /// spans are enabled, so disabled hubs cost one branch.
    fn span_begin<F: FnOnce() -> String>(
        &self,
        kind: OpKind,
        nic: &NicCore,
        at: Time,
        label: F,
    ) -> SpanId {
        let mut obs = self.obs.borrow_mut();
        if !obs.spans.enabled() {
            return 0;
        }
        let track = format!("client-{}", nic.node());
        obs.spans.begin(kind, track, label(), at)
    }

    fn span_mark(&self, id: SpanId, name: &'static str, at: Time) {
        if id != 0 {
            self.obs.borrow_mut().spans.mark(id, name, at);
        }
    }

    fn span_end(&self, id: SpanId, at: Time, ok: bool) {
        if id != 0 {
            self.obs.borrow_mut().end_span(id, at, ok);
        }
    }

    /// Close the open bulk-meta span once the storm drains: no meta op in
    /// flight and none left in the plan. Stamps the final op count into
    /// the label so the single span still attributes the whole batch.
    fn finish_bulk_meta_span(&mut self, ctx: &Ctx<'_>) {
        if self.bulk_meta_span == 0
            || self.meta_in_flight > 0
            || self
                .plan
                .borrow()
                .iter()
                .any(|j| matches!(j, Job::Meta { .. }))
        {
            return;
        }
        let id = std::mem::take(&mut self.bulk_meta_span);
        let n = std::mem::take(&mut self.bulk_meta_ops);
        let errs = std::mem::take(&mut self.bulk_meta_errs);
        self.obs
            .borrow_mut()
            .spans
            .relabel(id, format!("meta-bulk n={n}"));
        self.span_end(id, ctx.now(), errs == 0);
    }

    /// Associate a wire-level request id with a span so storage-side
    /// validation can mark phases on it.
    fn span_correlate(&self, greq: u64, id: SpanId) {
        if id != 0 {
            self.obs.borrow_mut().spans.correlate(greq, id);
        }
    }

    fn span_decorrelate(&self, greq: u64) -> SpanId {
        self.obs.borrow_mut().spans.decorrelate(greq).unwrap_or(0)
    }

    fn span_of(&self, greq: u64) -> SpanId {
        self.obs.borrow().spans.corr_span(greq).unwrap_or(0)
    }

    fn capability(&mut self, nic: &NicCore, file: u64) -> Capability {
        let client = nic.node() as u32;
        let control = &self.control;
        let cap = *self.caps.entry(file).or_insert_with(|| {
            control
                .borrow_mut()
                .issue_capability(client, file, Rights::RW, u64::MAX / 2)
        });
        if self.forge_capabilities {
            // Tamper: claim more rights without re-signing.
            let mut evil = cap;
            evil.expires_at_ns = u64::MAX;
            evil
        } else {
            cap
        }
    }

    /// Tenant id for outgoing DFS traffic: the configured group if one was
    /// set, else the node id (every client is its own tenant by default).
    fn effective_tenant(&self, nic: &NicCore) -> TenantId {
        self.tenant.get().unwrap_or(nic.node() as TenantId)
    }

    fn dfs_header(&mut self, nic: &NicCore, file: u64, greq: u64) -> DfsHeader {
        DfsHeader {
            greq_id: greq,
            op: DfsOp::Write,
            client: nic.node() as u32,
            tenant: self.effective_tenant(nic),
            capability: self.capability(nic, file),
        }
    }

    /// DFS header for a read: a READ capability (cached per file), issued
    /// with the client's configured expiry so tests can exercise expired
    /// tickets.
    fn read_dfs_header(&mut self, nic: &NicCore, file: u64, greq: u64) -> DfsHeader {
        let client = nic.node() as u32;
        let expires = self.read_cap_expires_at_ns;
        let control = &self.control;
        let cap = *self.read_caps.entry(file).or_insert_with(|| {
            control
                .borrow_mut()
                .issue_capability(client, file, Rights::READ, expires)
        });
        DfsHeader {
            greq_id: greq,
            op: DfsOp::Read,
            client,
            tenant: self.effective_tenant(nic),
            capability: cap,
        }
    }

    fn payload(seed: u64, len: u32) -> Bytes {
        // Deterministic, seed-dependent content (splitmix-ish stream).
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut v = Vec::with_capacity(len as usize);
        while v.len() < len as usize {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            v.extend_from_slice(&z.to_le_bytes());
        }
        v.truncate(len as usize);
        Bytes::from(v)
    }

    fn fill(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>) {
        while self.in_flight.len()
            + self.issue_stash.len()
            + self.meta_in_flight
            + self
                .reads_in_flight
                .len()
                .saturating_sub(self.background_reads)
            + self.parked_reads
            + self.cache_fin_stash.len()
            + self.repairs_in_flight.len()
            < self.window
        {
            let Some(job) = self.plan.borrow_mut().pop_front() else {
                return;
            };
            self.start_job(nic, ctx, job);
        }
    }

    /// Record a write that failed in the metadata service before any byte
    /// moved: the job completes immediately with `Rejected` instead of
    /// silently vanishing.
    #[allow(clippy::too_many_arguments)]
    fn fail_write_job(
        &mut self,
        nic: &NicCore,
        ctx: &Ctx<'_>,
        size: u32,
        protocol: WriteProtocol,
        retries: u32,
        start: Time,
        slot: Option<WriteSlot>,
        span: SpanId,
    ) {
        self.span_end(span, ctx.now(), false);
        let greq = self.control.borrow_mut().alloc_greq();
        let result = WriteResult {
            greq,
            client: nic.node(),
            protocol,
            size,
            start,
            end: ctx.now(),
            status: Status::Rejected,
            retries,
            checksum: 0,
            placement: WritePlacement::rejected(greq),
        };
        if let Some(slot) = slot {
            *slot.borrow_mut() = Some(result.clone());
        }
        self.results.borrow_mut().writes.push(result);
    }

    fn start_job(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, job: Job) {
        self.jobs_started += 1;
        match job {
            Job::Write {
                file,
                size,
                protocol,
                ..
            } => {
                // The measured latency starts when the driver decides to
                // write; the verbs post (doorbell, WQE build) delays actual
                // injection — a real cost every protocol pays.
                let placed = self.control.borrow_mut().place_write(file, size);
                let start = ctx.now();
                let span = self.span_begin(OpKind::Write, nic, start, || {
                    format!("write f{file} {size}B")
                });
                let placement = match placed {
                    Ok(p) => p,
                    Err(_) => {
                        // Typed metadata miss: the job fails, the client
                        // moves on.
                        self.fail_write_job(nic, ctx, size, protocol, 0, start, None, span);
                        return;
                    }
                };
                self.span_mark(span, phase::RESOLVED, start);
                self.span_correlate(placement.greq, span);
                self.trace.borrow_mut().emit_with(start, "control", || {
                    format!("place-write f{file} {size}B greq={}", placement.greq)
                });
                let t_post = nic.cpu.exec(start, nic.cpu.costs.post_send);
                let tag = ISSUE_BASE | placement.greq;
                self.issue_stash
                    .push((tag, job_clone(&job), placement, start));
                nic.set_timer(ctx, t_post.since(start), tag);
            }
            Job::WriteAt {
                file,
                offset,
                ref data,
                protocol,
                ref slot,
            } => {
                let len = data.len() as u32;
                let placed = match offset {
                    None => self.control.borrow_mut().place_write(file, len),
                    Some(o) => self.control.borrow_mut().place_write_at(file, len, o),
                };
                let start = ctx.now();
                let span = self.span_begin(OpKind::Write, nic, start, || {
                    format!("write f{file} {len}B")
                });
                let placement = match placed {
                    Ok(p) => p,
                    Err(_) => {
                        self.fail_write_job(nic, ctx, len, protocol, 0, start, slot.clone(), span);
                        return;
                    }
                };
                self.span_mark(span, phase::RESOLVED, start);
                self.span_correlate(placement.greq, span);
                self.trace.borrow_mut().emit_with(start, "control", || {
                    format!("place-write f{file} {len}B greq={}", placement.greq)
                });
                let t_post = nic.cpu.exec(start, nic.cpu.costs.post_send);
                let tag = ISSUE_BASE | placement.greq;
                self.issue_stash
                    .push((tag, job_clone(&job), placement, start));
                nic.set_timer(ctx, t_post.since(start), tag);
            }
            Job::Read {
                file,
                offset,
                len,
                protocol,
                token,
                slot,
            } => {
                self.start_read(nic, ctx, file, offset, len, protocol, token, slot);
            }
            Job::Repair { task, token, slot } => {
                self.start_repair(nic, ctx, task, token, slot);
            }
            Job::RawRead {
                node,
                addr,
                len,
                token,
            } => {
                let rrh = ReadReqHeader { addr, len };
                let local = nic.memory().borrow_mut().alloc(len as u64);
                self.read_tokens.insert(token, (local, len));
                nic.send_read(ctx, node, rrh, None, local, token);
            }
            Job::Meta { op, token } => {
                self.start_meta(nic, ctx, op, token);
            }
        }
    }

    /// Flush buffered write-back attrs (one control round-trip for the
    /// whole batch). Returns true if a flush happened.
    fn flush_writeback(&mut self) -> bool {
        let dirty = self.meta_cache.borrow_mut().take_dirty();
        if dirty.is_empty() {
            return false;
        }
        let _ = self.control.borrow_mut().flush_attrs(&dirty);
        true
    }

    /// Execute a metadata op against cache + control plane. State changes
    /// apply immediately; the completion is reported after the op's
    /// simulated latency (cache probe vs. control round-trip).
    fn start_meta(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, op: MetaOp, token: u64) {
        let start = ctx.now();
        let span = if self.bulk_meta_spans {
            if self.bulk_meta_span == 0 {
                self.bulk_meta_span =
                    self.span_begin(OpKind::MetaBulk, nic, start, || "meta-bulk".to_string());
            }
            self.bulk_meta_ops += 1;
            0
        } else {
            self.span_begin(OpKind::Meta, nic, start, || format!("meta {:?}", op.kind()))
        };
        let now_ns = start.as_ns() as u64;
        let costs = self.meta_costs.clone();
        let mut cost = Dur::ZERO;
        let mut cache_hit = false;
        let result: Result<(), MetaError> = match &op {
            MetaOp::Lookup { path } => {
                // A lookup must observe our own buffered appends: flush
                // write-back state first (counts as its own round-trip).
                if self.cache_enabled && self.meta_cache.borrow().dirty_count() > 0 {
                    self.flush_writeback();
                    cost += costs.control_rtt;
                }
                let cached = if self.cache_enabled {
                    self.meta_cache.borrow_mut().get(path)
                } else {
                    None
                };
                match cached {
                    Some(_) => {
                        cache_hit = true;
                        cost += costs.cache_probe;
                        Ok(())
                    }
                    None => {
                        cost += costs.control_rtt;
                        match self.control.borrow_mut().lookup_entry(path) {
                            Ok((attr, layout)) => {
                                if self.cache_enabled {
                                    self.meta_cache.borrow_mut().insert(
                                        path.clone(),
                                        CachedEntry::from_attr(&attr, layout),
                                    );
                                }
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    }
                }
            }
            MetaOp::Mkdir { path } => {
                cost = cost + costs.control_rtt + costs.oplog_append;
                self.control.borrow_mut().mkdir(path, now_ns).map(|_| ())
            }
            MetaOp::Create { path, spec } => {
                cost = cost + costs.control_rtt + costs.oplog_append;
                let created =
                    self.control
                        .borrow_mut()
                        .create_file_at(path, *spec, FilePolicy::Plain);
                match created {
                    Ok(_) => {
                        if self.cache_enabled {
                            // Write-allocate: the create response already
                            // carries everything a later lookup needs, so
                            // fill the cache without another counted
                            // round-trip.
                            if let Ok((attr, layout)) = self.control.borrow().peek_entry(path) {
                                self.meta_cache
                                    .borrow_mut()
                                    .insert(path.clone(), CachedEntry::from_attr(&attr, layout));
                            }
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            MetaOp::Readdir { path } => {
                cost += costs.control_rtt;
                match self.control.borrow_mut().readdir(path) {
                    Ok(entries) => {
                        if self.cache_enabled {
                            // Version check (defense in depth): a readdir
                            // response reveals current child versions —
                            // evict any cached child it proves stale.
                            let mut cache = self.meta_cache.borrow_mut();
                            let base = path.trim_end_matches('/');
                            for (name, attr) in &entries {
                                cache.note_version(&format!("{base}/{name}"), attr.version);
                            }
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            MetaOp::Rename { from, to } => {
                cost = cost + costs.control_rtt + costs.oplog_append;
                self.control.borrow_mut().rename(from, to, now_ns)
            }
            MetaOp::Unlink { path } => {
                cost = cost + costs.control_rtt + costs.oplog_append;
                self.control.borrow_mut().unlink(path, now_ns).map(|_| ())
            }
        };
        // Async metadata updates (AsyncFS-style): a mutation acks after
        // its shard's op-log append — `mutate_service` is shard occupancy
        // paid through the admission model, not ack latency. Every routed
        // op (mutation or resolve miss) queues behind its shard; cache
        // hits never routed, so `admit_last` is a no-op for them.
        let wait = self.control.borrow_mut().admit_last(start.ps());
        cost += Dur::from_ps(wait);
        if cache_hit {
            self.span_mark(span, phase::CACHE_HIT, start);
        }
        let tag = META_BASE | self.next_meta_tag;
        self.next_meta_tag += 1;
        self.meta_in_flight += 1;
        self.meta_stash.push((
            tag,
            PendingMeta {
                token,
                kind: op.kind(),
                start,
                cache_hit,
                result,
                span,
            },
        ));
        nic.set_timer(ctx, cost, tag);
    }

    /// Resolve, fan out, and track one file-level read. A read-cache hit
    /// skips everything — the control-plane resolve, the capability
    /// header, the per-stripe fan-out — and completes from client memory
    /// after a probe + copy latency. A miss resolves the range (plus a
    /// readahead window for sequential streams), fans out one network
    /// fetch per plan piece (one-sided read or RPC read), lands bytes at
    /// their destination offsets in a client-memory buffer, and stages
    /// degraded stripes' surviving shards for reconstruction at
    /// completion time.
    #[allow(clippy::too_many_arguments)]
    fn start_read(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        file: u64,
        offset: u64,
        len: u32,
        protocol: ReadProtocol,
        token: u64,
        slot: Option<ReadSlot>,
    ) {
        let start = ctx.now();
        let span = self.span_begin(OpKind::Read, nic, start, || {
            format!("read f{file} @{offset}+{len}")
        });
        if self.read_cache_enabled {
            let hit = self.read_cache.borrow_mut().lookup(file, offset, len);
            if let Some(hit) = hit {
                self.span_mark(span, phase::CACHE_HIT, start);
                // Served from client memory: no resolve, no fan-out. The
                // completion waits out the cache probe (the copy-out is
                // not charged — the uncached path's completion doesn't
                // charge one either; bytes land by DMA there).
                let cost = self.meta_costs.cache_probe;
                let tag = CACHE_FIN_BASE | self.next_cache_tag;
                self.next_cache_tag += 1;
                self.cache_fin_stash.push((
                    tag,
                    PendingCacheHit {
                        token,
                        file,
                        protocol,
                        offset,
                        data: Bytes::from(hit.data),
                        start,
                        slot,
                        span,
                    },
                ));
                nic.set_timer(ctx, cost, tag);
                return;
            }
            // A range covered by an in-flight background readahead parks
            // here instead of double-fetching: the waiter resumes from
            // the cache (or the full miss path) when the fill lands.
            let covering = self.reads_in_flight.iter().find_map(|(id, op)| {
                (op.background
                    && op.file == file
                    && op.offset <= offset
                    && offset + len as u64 <= op.offset + op.len as u64)
                    .then_some(*id)
            });
            if let Some(op_id) = covering {
                self.span_mark(span, phase::READAHEAD, start);
                self.parked_reads += 1;
                self.ra_waiters.entry(op_id).or_default().push(ReadReq {
                    token,
                    file,
                    offset,
                    len,
                    protocol,
                    slot,
                    span,
                    start,
                });
                return;
            }
        }
        self.start_read_miss(
            nic,
            ctx,
            ReadReq {
                token,
                file,
                offset,
                len,
                protocol,
                slot,
                span,
                start,
            },
        );
    }

    /// The miss path of one read request: control-plane resolve (with
    /// readahead overfetch), async readahead split, destination alloc,
    /// and doorbell-delayed injection. `req.start` is the original
    /// request time (a parked read resumes here with its span open).
    fn start_read_miss(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, req: ReadReq) {
        let ReadReq {
            token,
            file,
            offset,
            len,
            protocol,
            slot,
            span,
            start,
        } = req;
        // Miss: one control-plane resolve, overfetching a readahead
        // window when the access continues a sequential stream. A
        // resolve that fails only because the *readahead* tail crossed
        // an unreadable extent retries with the caller's exact range.
        let ra = if self.read_cache_enabled {
            self.read_cache
                .borrow_mut()
                .plan_readahead(file, offset, len)
        } else {
            0
        };
        let mut fetch_want = len.saturating_add(ra);
        let mut plan = self
            .control
            .borrow_mut()
            .resolve_read(file, offset, fetch_want);
        if plan.is_err() && fetch_want > len {
            fetch_want = len;
            plan = self.control.borrow_mut().resolve_read(file, offset, len);
        }
        // The resolve queued behind its metadata shard: the fan-out below
        // cannot start until the shard served it.
        let resolve_wait = Dur::from_ps(self.control.borrow_mut().admit_last(ctx.now().ps()));
        let plan = match plan {
            Ok(p) => p,
            Err(_) => {
                // Unknown file, failed-node range, unrecoverable stripe:
                // the read completes Rejected with no data.
                self.span_end(span, ctx.now(), false);
                let completion = ReadCompletion {
                    token,
                    client: nic.node(),
                    file,
                    protocol,
                    offset,
                    len: 0,
                    start,
                    end: ctx.now(),
                    status: Status::Rejected,
                    degraded_stripes: 0,
                    from_cache: false,
                    checksum: 0,
                    data: Bytes::new(),
                };
                if let Some(slot) = &slot {
                    *slot.borrow_mut() = Some(completion.clone());
                }
                self.results.borrow_mut().file_reads.push(completion);
                return;
            }
        };
        // Async readahead split: when the plan extends past the caller's
        // range, the tail pieces are fetched by a background op that only
        // fills the cache — the triggering miss completes without waiting
        // on readahead traffic. The piece holding the caller's last byte
        // cannot be split, so the boundary is that piece's end.
        let serve_len = plan.len.min(len);
        let mut critical_len = plan.len;
        if plan.len > serve_len {
            let mut boundary = serve_len;
            for piece in &plan.pieces {
                let (s, e) = piece_bounds(piece);
                if s < serve_len {
                    boundary = boundary.max(e);
                }
            }
            if boundary < plan.len {
                critical_len = boundary;
            }
        }
        let (critical_pieces, tail_pieces): (Vec<ReadPiece>, Vec<ReadPiece>) = plan
            .pieces
            .iter()
            .cloned()
            .partition(|p| piece_bounds(p).0 < critical_len);
        let dest = nic.memory().borrow_mut().alloc(plan.len.max(1) as u64);
        let greq = self.control.borrow_mut().alloc_greq();
        let dfs = self.read_dfs_header(nic, file, greq);
        self.span_mark(span, phase::RESOLVED, ctx.now());
        self.span_correlate(greq, span);
        self.trace.borrow_mut().emit_with(ctx.now(), "control", || {
            format!("resolve-read f{file} @{offset}+{fetch_want} greq={greq}")
        });
        let op = PendingReadOp {
            token,
            file,
            protocol,
            offset,
            len: critical_len,
            serve_len,
            // When a tail split off, the critical fetch is not EOF-clamped
            // (the tail op inherits the clamp evidence).
            fetch_want: if critical_len < plan.len {
                critical_len
            } else {
                fetch_want
            },
            generation: plan.generation,
            dest,
            start,
            subs_left: 0,
            status: Status::Ok,
            degraded: Vec::new(),
            offloaded_degraded: 0,
            background: false,
            msgs: Vec::new(),
            subs: Vec::new(),
            slot,
            greq,
            span,
        };
        // The verbs post (doorbell, WQE build) delays actual injection —
        // the same per-job cost the write path charges. The exec base is
        // the current time plus the resolve's shard-queue wait, not
        // `start`: a parked read resumes here after its original request
        // time.
        let t_post = nic
            .cpu
            .exec(ctx.now() + resolve_wait, nic.cpu.costs.post_send);
        self.spawn_read_op(nic, ctx, op, &critical_pieces, 0, dfs, t_post);
        if !tail_pieces.is_empty() {
            self.span_mark(span, phase::READAHEAD, ctx.now());
            let tail_len = plan.len - critical_len;
            let tail_off = offset + critical_len as u64;
            let tail_greq = self.control.borrow_mut().alloc_greq();
            let tail_dfs = self.read_dfs_header(nic, file, tail_greq);
            let tail_span = self.span_begin(OpKind::Read, nic, ctx.now(), || {
                format!("readahead f{file} @{tail_off}+{tail_len}")
            });
            self.span_mark(tail_span, phase::READAHEAD, ctx.now());
            self.span_correlate(tail_greq, tail_span);
            let tail_op = PendingReadOp {
                token: 0,
                file,
                protocol,
                offset: tail_off,
                len: tail_len,
                serve_len: 0,
                fetch_want: fetch_want - critical_len,
                generation: plan.generation,
                dest: dest + critical_len as u64,
                start: ctx.now(),
                subs_left: 0,
                status: Status::Ok,
                degraded: Vec::new(),
                offloaded_degraded: 0,
                background: true,
                msgs: Vec::new(),
                subs: Vec::new(),
                slot: None,
                greq: tail_greq,
                span: tail_span,
            };
            self.read_stats.borrow_mut().background_readaheads += 1;
            // Second doorbell for the background fan-out, chained after
            // the critical one on the same CPU.
            let t_tail = nic.cpu.exec(t_post, nic.cpu.costs.post_send);
            self.spawn_read_op(
                nic,
                ctx,
                tail_op,
                &tail_pieces,
                critical_len,
                tail_dfs,
                t_tail,
            );
        }
    }

    /// Register one read op (critical or background readahead), build its
    /// wire program, and arm the doorbell timer that injects it.
    #[allow(clippy::too_many_arguments)]
    fn spawn_read_op(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        mut op: PendingReadOp,
        pieces: &[ReadPiece],
        rebase: u32,
        dfs: DfsHeader,
        issue_at: Time,
    ) {
        let op_id = self.next_read_op;
        self.next_read_op += 1;
        let issue = self.build_read_issue(nic, &mut op, pieces, rebase);
        if op.background {
            self.background_reads += 1;
        }
        self.reads_in_flight.insert(op_id, op);
        let tag = READ_ISSUE_BASE | op_id;
        self.read_issue_stash.push((tag, op_id, issue, dfs));
        nic.set_timer(ctx, issue_at.since(ctx.now()), tag);
    }

    /// Build the wire program for one read op: per-piece fetches for the
    /// fan-out protocols, or per-node gather requests for the offloaded
    /// path (a degraded stripe becomes one gather to the first survivor's
    /// node, which reconstructs on its firmware EC engine). `rebase`
    /// shifts plan-relative offsets into a background tail op's own
    /// destination window.
    fn build_read_issue(
        &mut self,
        nic: &NicCore,
        op: &mut PendingReadOp,
        pieces: &[ReadPiece],
        rebase: u32,
    ) -> ReadIssue {
        if op.protocol == ReadProtocol::Offloaded {
            let mut gathers: Vec<(NodeId, GatherReadHeader)> = Vec::new();
            // Per-node batches of healthy segments (split past the cap).
            let mut direct: Vec<(NodeId, Vec<GatherSegment>, u64)> = Vec::new();
            for piece in pieces {
                match piece {
                    ReadPiece::Hole { .. } => {} // fresh buffer reads zero
                    ReadPiece::Direct {
                        coord,
                        len,
                        dest_off,
                    } => {
                        let node = coord.node as NodeId;
                        let seg = GatherSegment {
                            coord: *coord,
                            len: *len,
                            dest_off: *dest_off - rebase,
                            shard: 0,
                        };
                        match direct
                            .iter_mut()
                            .find(|(n, segs, _)| *n == node && segs.len() < MAX_GATHER_SEGS)
                        {
                            Some((_, segs, total)) => {
                                segs.push(seg);
                                *total += *len as u64;
                            }
                            None => direct.push((node, vec![seg], *len as u64)),
                        }
                    }
                    ReadPiece::Degraded {
                        scheme,
                        chunk_len,
                        fetch,
                        copy,
                        ..
                    } => {
                        let coordinator = fetch[0].1.node as NodeId;
                        let segments = fetch
                            .iter()
                            .map(|(shard, coord)| GatherSegment {
                                coord: *coord,
                                len: *chunk_len,
                                dest_off: 0,
                                shard: *shard as u8,
                            })
                            .collect();
                        let gcopy: Vec<GatherCopy> = copy
                            .iter()
                            .map(|c| GatherCopy {
                                chunk: c.chunk as u8,
                                chunk_off: c.chunk_off,
                                len: c.len,
                                dest_off: c.dest_off - rebase,
                            })
                            .collect();
                        let total: u64 = gcopy.iter().map(|c| c.len as u64).sum();
                        op.offloaded_degraded += 1;
                        self.read_stats.borrow_mut().offloaded_degraded_stripes += 1;
                        gathers.push((
                            coordinator,
                            GatherReadHeader {
                                total_len: total as u32,
                                segments,
                                reconstruct: Some(GatherReconstruct {
                                    scheme: *scheme,
                                    chunk_len: *chunk_len,
                                    copy: gcopy,
                                }),
                            },
                        ));
                    }
                }
            }
            for (node, segments, total) in direct {
                gathers.push((
                    node,
                    GatherReadHeader {
                        total_len: total as u32,
                        segments,
                        reconstruct: None,
                    },
                ));
            }
            return ReadIssue::Gather(gathers);
        }
        let mut fetches: Vec<(NodeId, u64, u32, u64)> = Vec::new(); // (node, addr, len, local)
        for piece in pieces {
            match piece {
                ReadPiece::Hole { .. } => {} // fresh buffer reads zero
                ReadPiece::Direct {
                    coord,
                    len,
                    dest_off,
                } => {
                    fetches.push((
                        coord.node as NodeId,
                        coord.addr,
                        *len,
                        op.dest + (*dest_off - rebase) as u64,
                    ));
                }
                ReadPiece::Degraded {
                    scheme,
                    chunk_len,
                    fetch,
                    copy,
                    ..
                } => {
                    let scratch = nic
                        .memory()
                        .borrow_mut()
                        .alloc(fetch.len() as u64 * *chunk_len as u64);
                    for (slot_i, (_, coord)) in fetch.iter().enumerate() {
                        fetches.push((
                            coord.node as NodeId,
                            coord.addr,
                            *chunk_len,
                            scratch + slot_i as u64 * *chunk_len as u64,
                        ));
                    }
                    let mut rcopy = copy.clone();
                    for c in &mut rcopy {
                        c.dest_off -= rebase;
                    }
                    op.degraded.push(DegradedFetch {
                        scheme: *scheme,
                        chunk_len: *chunk_len,
                        scratch,
                        fetched: fetch.iter().map(|(i, _)| *i).collect(),
                        copy: rcopy,
                    });
                }
            }
        }
        ReadIssue::Fanout(fetches)
    }

    /// Inject the wire program of a read whose doorbell cost has elapsed.
    fn issue_read_fanout(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        op_id: u64,
        issue: ReadIssue,
        dfs: DfsHeader,
    ) {
        let Some((protocol, dest)) = self
            .reads_in_flight
            .get(&op_id)
            .map(|op| (op.protocol, op.dest))
        else {
            return;
        };
        match issue {
            ReadIssue::Fanout(fetches) => {
                for (node, addr, flen, local) in fetches {
                    let sub = READ_SUB_BASE | self.next_read_sub;
                    self.next_read_sub += 1;
                    self.read_sub_to_op.insert(sub, op_id);
                    let rrh = ReadReqHeader { addr, len: flen };
                    let msg = match protocol {
                        ReadProtocol::Rdma | ReadProtocol::Offloaded => {
                            nic.send_read(ctx, node, rrh, Some(dfs), local, sub)
                        }
                        ReadProtocol::Rpc => {
                            let msg = nic.send_rpc(
                                ctx,
                                node,
                                RpcBody::ReadReq { dfs, rrh },
                                Bytes::new(),
                            );
                            nic.expect_read_resp(msg, local, sub);
                            msg
                        }
                    };
                    self.read_msg_to_op.insert(msg, op_id);
                    let op = self.reads_in_flight.get_mut(&op_id).expect("just checked");
                    op.msgs.push(msg);
                    op.subs.push(sub);
                    op.subs_left += 1;
                }
            }
            ReadIssue::Gather(gathers) => {
                for (node, grh) in gathers {
                    let sub = READ_SUB_BASE | self.next_read_sub;
                    self.next_read_sub += 1;
                    self.read_sub_to_op.insert(sub, op_id);
                    // Segment offsets in the header are relative to the
                    // op's destination window; the streamed flow lands
                    // there packet by packet.
                    let msg = nic.send_gather(ctx, node, dfs, grh, dest, sub);
                    self.read_msg_to_op.insert(msg, op_id);
                    let op = self.reads_in_flight.get_mut(&op_id).expect("just checked");
                    op.msgs.push(msg);
                    op.subs.push(sub);
                    op.subs_left += 1;
                    self.read_stats.borrow_mut().offloaded_reads += 1;
                }
            }
        }
        let span = self
            .reads_in_flight
            .get(&op_id)
            .map(|op| op.span)
            .unwrap_or(0);
        self.span_mark(span, phase::FANNED_OUT, ctx.now());
        if self
            .reads_in_flight
            .get(&op_id)
            .is_some_and(|op| op.subs_left == 0)
        {
            // Zero-length or all-holes read: complete immediately.
            self.complete_read(nic, ctx, op_id);
        }
    }

    /// All pieces landed (or failed): reconstruct any degraded stripes,
    /// assemble the payload, and deliver the typed completion.
    fn complete_read(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, op_id: u64) {
        let Some(op) = self.reads_in_flight.remove(&op_id) else {
            return;
        };
        for m in &op.msgs {
            self.read_msg_to_op.remove(m);
        }
        for s in &op.subs {
            self.read_sub_to_op.remove(s);
        }
        let mut status = op.status;
        let mut degraded_stripes = op.offloaded_degraded;
        if status == Status::Ok {
            for d in &op.degraded {
                if self.reconstruct_stripe(nic, &op, d).is_err() {
                    status = Status::Rejected;
                    break;
                }
                degraded_stripes += 1;
            }
        }
        if op.background {
            // Readahead tail: populate the cache, deliver nothing. The
            // caller's miss already completed without waiting on this.
            self.background_reads = self.background_reads.saturating_sub(1);
            if status == Status::Ok && self.read_cache_enabled {
                let fetched = nic.memory().borrow().read(op.dest, op.len as usize);
                let mut rc = self.read_cache.borrow_mut();
                rc.fill(op.file, op.generation, op.offset, &fetched, op.fetch_want);
                rc.stats.readahead_bytes += (op.len - op.serve_len) as u64;
            }
            self.span_decorrelate(op.greq);
            self.span_end(op.span, ctx.now(), status == Status::Ok);
            // Reads that parked on this fill resume now: from the cache
            // when the fill landed, else through the full miss path.
            for w in self.ra_waiters.remove(&op_id).unwrap_or_default() {
                self.parked_reads = self.parked_reads.saturating_sub(1);
                self.resume_parked_read(nic, ctx, w);
            }
            self.fill(nic, ctx);
            return;
        }
        let (data, checksum, len) = if status == Status::Ok {
            let mut fetched = nic.memory().borrow().read(op.dest, op.len as usize);
            if self.read_cache_enabled {
                // Everything fetched — the caller's range, the readahead
                // tail, and any degraded-reconstructed bytes — populates
                // the cache under the plan's generation, so this client
                // never re-fetches (or re-reconstructs) it while the
                // generation holds. An EOF-clamped fetch also teaches the
                // cache where the committed size is.
                let mut rc = self.read_cache.borrow_mut();
                rc.fill(op.file, op.generation, op.offset, &fetched, op.fetch_want);
                rc.stats.readahead_bytes += (op.len - op.serve_len) as u64;
            }
            // Shed the readahead tail before handing the payload out:
            // slicing (or truncating without shrinking) would pin the
            // whole overfetch allocation for as long as the completion
            // lives, and ResultSink retains every completion for the run.
            if op.len > op.serve_len {
                fetched.truncate(op.serve_len as usize);
                fetched.shrink_to_fit();
            }
            let bytes = Bytes::from(fetched);
            let sum = payload_checksum(&bytes);
            (bytes, sum, op.serve_len)
        } else {
            (Bytes::new(), 0, 0)
        };
        // The application observes completion one poll interval later
        // (CQ polling cost, same as the write path).
        let end = ctx.now() + nic.cpu.costs.poll_notify;
        self.span_decorrelate(op.greq);
        if degraded_stripes > 0 {
            self.span_mark(op.span, phase::DEGRADED, ctx.now());
        }
        self.span_mark(op.span, phase::REASSEMBLED, ctx.now());
        self.span_end(op.span, end, status == Status::Ok);
        let completion = ReadCompletion {
            token: op.token,
            client: nic.node(),
            file: op.file,
            protocol: op.protocol,
            offset: op.offset,
            len,
            start: op.start,
            end,
            status,
            degraded_stripes,
            from_cache: false,
            checksum,
            data,
        };
        if let Some(slot) = &op.slot {
            *slot.borrow_mut() = Some(completion.clone());
        }
        self.results.borrow_mut().file_reads.push(completion);
        self.fill(nic, ctx);
    }

    /// A read parked on a background readahead resumes: the fill it
    /// waited on usually makes it a cache hit (delivered under its
    /// original span and start time); a failed or gone-stale fill falls
    /// back to the full miss path.
    fn resume_parked_read(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, w: ReadReq) {
        let hit = if self.read_cache_enabled {
            self.read_cache.borrow_mut().lookup(w.file, w.offset, w.len)
        } else {
            None
        };
        if let Some(hit) = hit {
            self.span_mark(w.span, phase::CACHE_HIT, ctx.now());
            let cost = self.meta_costs.cache_probe;
            let tag = CACHE_FIN_BASE | self.next_cache_tag;
            self.next_cache_tag += 1;
            self.cache_fin_stash.push((
                tag,
                PendingCacheHit {
                    token: w.token,
                    file: w.file,
                    protocol: w.protocol,
                    offset: w.offset,
                    data: Bytes::from(hit.data),
                    start: w.start,
                    slot: w.slot,
                    span: w.span,
                },
            ));
            nic.set_timer(ctx, cost, tag);
        } else {
            self.start_read_miss(nic, ctx, w);
        }
    }

    /// Rebuild the missing data chunks of one degraded stripe from the
    /// staged survivors and copy the requested ranges into the
    /// destination buffer. Shard buffers come from the NIC's recycled
    /// ring; the decode matrix from the codec's per-pattern cache.
    fn reconstruct_stripe(
        &mut self,
        nic: &NicCore,
        op: &PendingReadOp,
        d: &DegradedFetch,
    ) -> Result<(), nadfs_gfec::RsError> {
        let (k, m) = (d.scheme.k as usize, d.scheme.m as usize);
        let rs = self
            .rs_cache
            .entry((d.scheme.k, d.scheme.m))
            .or_insert_with(|| ReedSolomon::new(k, m).expect("valid RS scheme"));
        let mem = nic.memory();
        let pool = nic.buf_pool();
        let clen = d.chunk_len as usize;
        // Stage the fetched shards into pooled buffers.
        let mut survivor_bufs: Vec<Vec<u8>> = Vec::with_capacity(d.fetched.len());
        for slot_i in 0..d.fetched.len() {
            let mut buf = pool.borrow_mut().get_dirty(clen);
            mem.borrow()
                .read_into(d.scratch + slot_i as u64 * clen as u64, &mut buf);
            survivor_bufs.push(buf);
        }
        let mut shards: Vec<Option<&[u8]>> = vec![None; k + m];
        for (slot_i, &idx) in d.fetched.iter().enumerate() {
            shards[idx] = Some(&survivor_bufs[slot_i]);
        }
        let mut want: Vec<usize> = d.copy.iter().map(|c| c.chunk).collect();
        want.sort_unstable();
        want.dedup();
        let mut outs: Vec<Vec<u8>> = {
            let mut p = pool.borrow_mut();
            want.iter().map(|_| p.get_dirty(clen)).collect()
        };
        let r = rs.reconstruct_into(&shards, &want, &mut outs);
        if r.is_ok() {
            self.read_stats.borrow_mut().reconstructed_stripes += 1;
            let mut memory = mem.borrow_mut();
            for c in &d.copy {
                let o = want.binary_search(&c.chunk).expect("wanted chunk");
                let lo = c.chunk_off as usize;
                memory.write(
                    op.dest + c.dest_off as u64,
                    &outs[o][lo..lo + c.len as usize],
                );
            }
        }
        let mut p = pool.borrow_mut();
        for buf in survivor_bufs.into_iter().chain(outs) {
            p.put(buf);
        }
        r
    }

    /// Deliver a repair completion (success, typed unrepairable, or
    /// abort) and refill the window.
    #[allow(clippy::too_many_arguments)]
    fn deliver_repair(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        token: u64,
        task: RepairTask,
        start: Time,
        status: Status,
        outcome: RepairOutcome,
        bytes_moved: u64,
        slot: Option<RepairSlot>,
        span: SpanId,
    ) {
        let result = RepairResult {
            token,
            client: nic.node(),
            task,
            status,
            outcome,
            start,
            end: ctx.now() + nic.cpu.costs.poll_notify,
            bytes_moved,
        };
        self.span_end(span, result.end, status == Status::Ok);
        if let Some(slot) = &slot {
            *slot.borrow_mut() = Some(result.clone());
        }
        self.results.borrow_mut().repairs.push(result);
        self.fill(nic, ctx);
    }

    /// Start one repair task: plan it against the control plane, then
    /// fan out the surviving-shard fetches over the NIC (capability-
    /// validated one-sided reads — repair traffic is data-path traffic).
    fn start_repair(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        task: RepairTask,
        token: u64,
        slot: Option<RepairSlot>,
    ) {
        let start = ctx.now();
        let span = self.span_begin(OpKind::Repair, nic, start, || {
            format!("repair f{}", task.file)
        });
        let planned = self.control.borrow_mut().plan_repair(task);
        self.trace
            .borrow_mut()
            .emit_with(start, "control", || format!("plan-repair f{}", task.file));
        let plan = match planned {
            Ok(p) => p,
            Err(e) => {
                // Typed: the extent cannot be re-protected (or vanished).
                // The task dies here — release its compaction pin.
                self.control.borrow_mut().abandon_repair(task);
                self.deliver_repair(
                    nic,
                    ctx,
                    token,
                    task,
                    start,
                    Status::Rejected,
                    RepairOutcome::Unrepairable(e),
                    0,
                    slot,
                    span,
                );
                return;
            }
        };
        let fetches: Vec<(ReplicaCoord, u32)> = match &plan {
            RepairPlan::AlreadyHealthy => {
                // Nothing to move, nothing to commit: the task is done —
                // release its compaction pin.
                self.control.borrow_mut().abandon_repair(task);
                self.deliver_repair(
                    nic,
                    ctx,
                    token,
                    task,
                    start,
                    Status::Ok,
                    RepairOutcome::AlreadyHealthy,
                    0,
                    slot,
                    span,
                );
                return;
            }
            RepairPlan::EcRebuild {
                chunk_len, fetch, ..
            } => fetch.iter().map(|&(_, c)| (c, *chunk_len)).collect(),
            RepairPlan::ReplicaClone { len, src, .. } => vec![(*src, *len)],
        };
        let total: u64 = fetches.iter().map(|&(_, l)| l as u64).sum();
        let scratch = nic.memory().borrow_mut().alloc(total.max(1));
        let op_id = self.next_repair_op;
        self.next_repair_op += 1;
        let greq = self.control.borrow_mut().alloc_greq();
        let mut dfs = self.read_dfs_header(nic, task.file, greq);
        dfs.tenant = TENANT_REPAIR;
        self.span_mark(span, phase::RESOLVED, ctx.now());
        self.span_correlate(greq, span);
        let mut op = PendingRepair {
            token,
            task,
            plan,
            scratch,
            start,
            fetch_left: fetches.len() as u32,
            write_acks_left: 0,
            writing: false,
            bytes_moved: 0,
            msgs: Vec::new(),
            subs: Vec::new(),
            slot,
            greqs: vec![greq],
            span,
        };
        let mut off = 0u64;
        for (coord, flen) in fetches {
            let sub = REPAIR_SUB_BASE | self.next_read_sub;
            self.next_read_sub += 1;
            self.repair_sub_to_op.insert(sub, op_id);
            let rrh = ReadReqHeader {
                addr: coord.addr,
                len: flen,
            };
            let msg = nic.send_read(
                ctx,
                coord.node as NodeId,
                rrh,
                Some(dfs),
                scratch + off,
                sub,
            );
            self.repair_msg_to_op.insert(msg, op_id);
            op.msgs.push(msg);
            op.subs.push(sub);
            op.bytes_moved += flen as u64;
            off += flen as u64;
        }
        self.span_mark(span, phase::FANNED_OUT, ctx.now());
        self.repairs_in_flight.insert(op_id, op);
    }

    /// Abort an in-flight repair (a fetch NACKed or a spare write
    /// failed): cancel outstanding reads, drop the tracking state, and
    /// deliver a typed `Aborted` completion the driver can retry.
    fn fail_repair(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, op_id: u64, status: Status) {
        let Some(op) = self.repairs_in_flight.remove(&op_id) else {
            return;
        };
        for m in &op.msgs {
            self.repair_msg_to_op.remove(m);
            nic.cancel_read(*m);
        }
        for s in &op.subs {
            self.repair_sub_to_op.remove(s);
        }
        for g in &op.greqs {
            self.span_decorrelate(*g);
        }
        self.deliver_repair(
            nic,
            ctx,
            op.token,
            op.task,
            op.start,
            status,
            RepairOutcome::Aborted(status),
            0,
            op.slot,
            op.span,
        );
    }

    /// All survivors landed: rebuild the lost shards (CPU cost already
    /// charged via the REPAIR_FIN timer) and write them to their spares.
    fn repair_rebuild_and_write(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, op_id: u64) {
        let Some((task, scratch, plan)) = self
            .repairs_in_flight
            .get(&op_id)
            .map(|op| (op.task, op.scratch, op.plan.clone()))
        else {
            return;
        };
        // (dest coord, bytes) per spare write, built per plan kind.
        let writes: Vec<(ReplicaCoord, Bytes)> = match &plan {
            RepairPlan::AlreadyHealthy => vec![],
            RepairPlan::ReplicaClone { len, dest, .. } => {
                let data = Bytes::from(nic.memory().borrow().read(scratch, *len as usize));
                dest.iter().map(|&(_, c)| (c, data.clone())).collect()
            }
            RepairPlan::EcRebuild {
                scheme,
                chunk_len,
                fetch,
                rebuild,
            } => {
                let (k, m) = (scheme.k as usize, scheme.m as usize);
                let rs = self
                    .rs_cache
                    .entry((scheme.k, scheme.m))
                    .or_insert_with(|| ReedSolomon::new(k, m).expect("valid RS scheme"));
                let clen = *chunk_len as usize;
                let mem = nic.memory();
                let pool = nic.buf_pool();
                let mut survivor_bufs: Vec<Vec<u8>> = Vec::with_capacity(fetch.len());
                for slot_i in 0..fetch.len() {
                    let mut buf = pool.borrow_mut().get_dirty(clen);
                    mem.borrow()
                        .read_into(scratch + slot_i as u64 * clen as u64, &mut buf);
                    survivor_bufs.push(buf);
                }
                let mut shards: Vec<Option<&[u8]>> = vec![None; k + m];
                for (slot_i, (idx, _)) in fetch.iter().enumerate() {
                    shards[*idx] = Some(&survivor_bufs[slot_i]);
                }
                let want: Vec<usize> = {
                    let mut w: Vec<usize> = rebuild.iter().map(|&(s, _)| s).collect();
                    w.sort_unstable();
                    w
                };
                let mut outs: Vec<Vec<u8>> = {
                    let mut p = pool.borrow_mut();
                    want.iter().map(|_| p.get_dirty(clen)).collect()
                };
                let r = rs.reconstruct_into(&shards, &want, &mut outs);
                {
                    let mut p = pool.borrow_mut();
                    for buf in survivor_bufs {
                        p.put(buf);
                    }
                }
                if r.is_err() {
                    let mut p = pool.borrow_mut();
                    for buf in outs {
                        p.put(buf);
                    }
                    // Shard-count/size mismatch is a programming error in
                    // the plan, but surface it as an abort, not a panic.
                    self.fail_repair(nic, ctx, op_id, Status::Rejected);
                    return;
                }
                let mut by_slot: Vec<(ReplicaCoord, Bytes)> = Vec::with_capacity(rebuild.len());
                let mut outs: Vec<Option<Vec<u8>>> = outs.into_iter().map(Some).collect();
                for &(slot, coord) in rebuild {
                    let o = want.binary_search(&slot).expect("wanted shard");
                    let buf = outs[o].take().expect("each shard written once");
                    by_slot.push((coord, Bytes::from(buf)));
                }
                by_slot
            }
        };
        let greq = self.control.borrow_mut().alloc_greq();
        let mut dfs = self.dfs_header(nic, task.file, greq);
        dfs.tenant = TENANT_REPAIR;
        let span = {
            let op = self.repairs_in_flight.get_mut(&op_id).expect("checked");
            op.writing = true;
            op.write_acks_left = writes.len() as u32;
            op.greqs.push(greq);
            op.span
        };
        self.span_mark(span, phase::REBUILT, ctx.now());
        self.span_correlate(greq, span);
        if writes.is_empty() {
            // Defensive: a plan with nothing to write commits directly.
            self.commit_and_complete_repair(nic, ctx, op_id);
            return;
        }
        for (coord, data) in writes {
            let wrh = WriteReqHeader {
                target_addr: coord.addr,
                len: data.len() as u32,
                resiliency: Resiliency::None,
            };
            let len = data.len() as u64;
            let msg = nic.send_write(ctx, coord.node as NodeId, Some(dfs), wrh, data);
            self.repair_msg_to_op.insert(msg, op_id);
            let op = self.repairs_in_flight.get_mut(&op_id).expect("in flight");
            op.msgs.push(msg);
            op.bytes_moved += len;
        }
    }

    /// Every spare write acknowledged: commit the re-homing into the
    /// extent map (generation bump + cache invalidation) and complete.
    fn commit_and_complete_repair(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, op_id: u64) {
        let Some(op) = self.repairs_in_flight.remove(&op_id) else {
            return;
        };
        for m in &op.msgs {
            self.repair_msg_to_op.remove(m);
        }
        for s in &op.subs {
            self.repair_sub_to_op.remove(s);
        }
        for g in &op.greqs {
            self.span_decorrelate(*g);
        }
        let replacements = op.plan.replacements();
        let committed = self.control.borrow_mut().commit_repair(
            op.task,
            &replacements,
            ctx.now().as_ns() as u64,
        );
        self.trace.borrow_mut().emit_with(ctx.now(), "control", || {
            format!("commit-repair f{}", op.task.file)
        });
        let (status, outcome) = match committed {
            Ok(()) => {
                let outcome = match &op.plan {
                    RepairPlan::EcRebuild { rebuild, .. } => RepairOutcome::Rebuilt {
                        shards: rebuild.iter().map(|&(s, _)| s).collect(),
                    },
                    RepairPlan::ReplicaClone { dest, .. } => RepairOutcome::Cloned {
                        replicas: dest.iter().map(|&(s, _)| s).collect(),
                    },
                    RepairPlan::AlreadyHealthy => RepairOutcome::AlreadyHealthy,
                };
                (Status::Ok, outcome)
            }
            // The file vanished mid-repair (unlink/rename-replace): the
            // moved bytes are moot, not an error worth retrying.
            Err(e) => (Status::Rejected, RepairOutcome::Unrepairable(e)),
        };
        if status == Status::Ok {
            self.span_mark(op.span, phase::COMMITTED, ctx.now());
        }
        self.deliver_repair(
            nic,
            ctx,
            op.token,
            op.task,
            op.start,
            status,
            outcome,
            op.bytes_moved,
            op.slot,
            op.span,
        );
    }

    fn issue_write(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        job: Job,
        placement: WritePlacement,
        retries: u32,
        start: Time,
    ) {
        let greq = placement.greq;
        let span = self.span_of(greq);
        let (file, size, protocol, data, slot) = match &job {
            Job::Write {
                file,
                size,
                protocol,
                seed,
            } => (*file, *size, *protocol, Self::payload(*seed, *size), None),
            Job::WriteAt {
                file,
                data,
                protocol,
                slot,
                ..
            } => (
                *file,
                data.len() as u32,
                *protocol,
                data.clone(),
                slot.clone(),
            ),
            _ => return,
        };
        let abandon = self
            .abandon_every
            .map(|n| self.jobs_started.is_multiple_of(n))
            .unwrap_or(false);
        let mut pending = Pending {
            job,
            placement: placement.clone(),
            data: data.clone(),
            checksum: payload_checksum(&data),
            start,
            acks_needed: 1,
            acks_got: 0,
            phase: Phase::Data,
            retries,
            status: Status::Ok,
            msgs: Vec::new(),
        };
        let policy = self.control.borrow().lookup(file).map(|m| m.policy.clone());
        let policy = match policy {
            Ok(p) => p,
            Err(_) => {
                // The file vanished between placement and issue (e.g. an
                // unlink raced a retry): fail the job, don't panic. The
                // slot this job held must be refilled — issue_write runs
                // from a timer, so no caller does it for us.
                self.span_decorrelate(greq);
                self.fail_write_job(nic, ctx, size, protocol, retries, start, slot, span);
                self.fill(nic, ctx);
                return;
            }
        };

        match protocol {
            WriteProtocol::Raw => {
                if placement.stripes.len() > 1 {
                    send_striped(&mut pending, nic, ctx, &placement, &data, None);
                } else {
                    let wrh = WriteReqHeader {
                        target_addr: placement.primary.addr,
                        len: size,
                        resiliency: Resiliency::None,
                    };
                    let msg =
                        nic.send_write(ctx, placement.primary.node as NodeId, None, wrh, data);
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::Spin => {
                let dfs = self.dfs_header(nic, file, greq);
                if abandon {
                    // Abandon after the first packet of the first (or
                    // only) extent; remaining extents never leave the
                    // client, modeling a mid-stream client failure.
                    let (target, len) = match placement.stripes.first() {
                        Some(st) => (st.coord, st.len),
                        None => (placement.primary, size),
                    };
                    let wrh = WriteReqHeader {
                        target_addr: target.addr,
                        len,
                        resiliency: Resiliency::None,
                    };
                    let (msg, mut frames) =
                        nic.build_write_frames(Some(dfs), wrh, data.slice(..len as usize));
                    frames.truncate(1);
                    nic.send_frames(ctx, target.node as NodeId, frames);
                    pending.msgs.push(msg);
                    pending.acks_needed = u32::MAX; // never completes
                } else if placement.stripes.len() > 1 {
                    send_striped(&mut pending, nic, ctx, &placement, &data, Some(dfs));
                } else {
                    let wrh = WriteReqHeader {
                        target_addr: placement.primary.addr,
                        len: size,
                        resiliency: Resiliency::None,
                    };
                    let msg =
                        nic.send_write(ctx, placement.primary.node as NodeId, Some(dfs), wrh, data);
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::Rpc | WriteProtocol::RpcRdma => {
                let inline = protocol == WriteProtocol::Rpc;
                let dfs = self.dfs_header(nic, file, greq);
                // One independent RPC per stripe extent (a width-1 layout
                // is a single extent at `primary`): each extent's bytes
                // must land at that extent's address, never overrun the
                // first extent's allocation.
                let extents: Vec<(nadfs_wire::ReplicaCoord, u32)> = if placement.stripes.len() > 1 {
                    placement.stripes.iter().map(|s| (s.coord, s.len)).collect()
                } else {
                    vec![(placement.primary, size)]
                };
                pending.acks_needed = extents.len() as u32;
                let mut off = 0usize;
                for (coord, len) in extents {
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len,
                        resiliency: Resiliency::None,
                    };
                    let slice = data.slice(off..off + len as usize);
                    let src_addr = if inline {
                        0
                    } else {
                        // Stage the extent in client memory for the
                        // storage-side RDMA read.
                        let a = nic.memory().borrow_mut().alloc(len as u64);
                        nic.memory().borrow_mut().write(a, &slice);
                        a
                    };
                    let body = RpcBody::WriteReq {
                        dfs,
                        wrh,
                        inline_data: inline,
                        src_addr,
                        chunk_off: 0,
                        full_len: len,
                    };
                    let msg = nic.send_rpc(
                        ctx,
                        coord.node as NodeId,
                        body,
                        if inline { slice } else { Bytes::new() },
                    );
                    pending.msgs.push(msg);
                    off += len as usize;
                }
            }
            WriteProtocol::RdmaFlat => {
                // One independent write per replica; full client trust.
                pending.acks_needed = placement.replicas.len() as u32;
                for coord in &placement.replicas {
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len: size,
                        resiliency: Resiliency::None,
                    };
                    let msg = nic.send_write(ctx, coord.node as NodeId, None, wrh, data.clone());
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::HyperLoop { chunk } => {
                // Phase 1: configure the ring (k parallel WQE writes).
                let k = placement.replicas.len();
                pending.phase = Phase::HlConfiguring {
                    acks_left: k as u32,
                };
                pending.acks_needed = 1; // the tail data ack
                for (i, coord) in placement.replicas.iter().enumerate() {
                    let cfg = HlConfigPkt {
                        msg: MsgId::new(0, 0),
                        greq_id: greq,
                        local_addr: coord.addr,
                        total_len: size,
                        chunk,
                        next: placement.replicas.get(i + 1).copied(),
                        ack_client: i == k - 1,
                        frag: 0,
                        total_frags: 1,
                    };
                    let msg = nic.send_hl_config(ctx, coord.node as NodeId, cfg);
                    pending.msgs.push(msg);
                }
            }
            WriteProtocol::CpuBcast { chunk } => {
                let FilePolicy::Replicated { strategy, .. } = policy else {
                    panic!("CpuBcast requires a replicated file");
                };
                let dfs = self.dfs_header(nic, file, greq);
                let k = placement.replicas.len() as u32;
                pending.acks_needed = k;
                let chunk = chunk.max(1).min(size.max(1));
                let mut off = 0u32;
                while off < size || (size == 0 && off == 0) {
                    let len = chunk.min(size - off);
                    let wrh = WriteReqHeader {
                        target_addr: placement.primary.addr + off as u64,
                        len,
                        resiliency: Resiliency::Replicate {
                            strategy,
                            vrank: 0,
                            coords: placement.replicas.clone(),
                        },
                    };
                    let body = RpcBody::WriteReq {
                        dfs,
                        wrh,
                        inline_data: true,
                        src_addr: 0,
                        chunk_off: off,
                        full_len: size,
                    };
                    let msg = nic.send_rpc(
                        ctx,
                        placement.primary.node as NodeId,
                        body,
                        data.slice(off as usize..(off + len) as usize),
                    );
                    pending.msgs.push(msg);
                    off += len;
                    if size == 0 {
                        break;
                    }
                }
            }
            WriteProtocol::SpinReplicated => {
                let FilePolicy::Replicated { strategy, .. } = policy else {
                    panic!("SpinReplicated requires a replicated file");
                };
                let dfs = self.dfs_header(nic, file, greq);
                pending.acks_needed = placement.replicas.len() as u32;
                let wrh = WriteReqHeader {
                    target_addr: placement.primary.addr,
                    len: size,
                    resiliency: Resiliency::Replicate {
                        strategy,
                        vrank: 0,
                        coords: placement.replicas.clone(),
                    },
                };
                let msg =
                    nic.send_write(ctx, placement.primary.node as NodeId, Some(dfs), wrh, data);
                pending.msgs.push(msg);
            }
            WriteProtocol::SpinTriec { .. } | WriteProtocol::InecTriec => {
                let FilePolicy::ErasureCoded { scheme } = policy else {
                    panic!("TriEC requires an erasure-coded file");
                };
                let interleave = match protocol {
                    WriteProtocol::SpinTriec { interleave } => interleave,
                    _ => false,
                };
                let dfs = self.dfs_header(nic, file, greq);
                let k = scheme.k as usize;
                let m = scheme.m as usize;
                pending.acks_needed = (k + m) as u32;
                let chunk_len = placement.chunk_len;
                // Split the block into k chunks. Full chunks are zero-copy
                // windows into the block; only a ragged tail chunk needs
                // staging (zero-padded), and that buffer comes from the
                // NIC's recycled ring.
                let mut per_chunk_frames: Vec<(NodeId, Vec<Frame>)> = Vec::with_capacity(k);
                for (j, coord) in placement.data_chunks.iter().enumerate() {
                    let startb = (j as u32 * chunk_len).min(size) as usize;
                    let endb = ((j as u32 + 1) * chunk_len).min(size) as usize;
                    let chunk_data = if endb - startb == chunk_len as usize {
                        data.slice(startb..endb)
                    } else {
                        let mut staged = nic.buf_pool().borrow_mut().get(chunk_len as usize);
                        staged[..endb - startb].copy_from_slice(&data[startb..endb]);
                        Bytes::from(staged)
                    };
                    let wrh = WriteReqHeader {
                        target_addr: coord.addr,
                        len: chunk_len,
                        resiliency: Resiliency::ErasureCode(EcInfo {
                            scheme,
                            role: EcRole::Data { chunk_idx: j as u8 },
                            stripe: greq,
                            parity_coords: placement.parities.clone(),
                        }),
                    };
                    let (msg, frames) = nic.build_write_frames(Some(dfs), wrh, chunk_data);
                    pending.msgs.push(msg);
                    per_chunk_frames.push((coord.node as NodeId, frames));
                }
                if interleave {
                    // §VI-B-1: interleave packets across chunks so the
                    // parity node can aggregate as streams progress.
                    let mut mixed = Vec::new();
                    let max_len = per_chunk_frames
                        .iter()
                        .map(|(_, f)| f.len())
                        .max()
                        .unwrap_or(0);
                    for i in 0..max_len {
                        for (dst, frames) in &per_chunk_frames {
                            if let Some(f) = frames.get(i) {
                                mixed.push((*dst, f.clone()));
                            }
                        }
                    }
                    nic.send_mixed(ctx, mixed);
                } else {
                    for (dst, frames) in per_chunk_frames {
                        nic.send_frames(ctx, dst, frames);
                    }
                }
            }
        }
        self.span_mark(span, phase::FANNED_OUT, ctx.now());
        for m in &pending.msgs {
            self.msg_to_greq.insert(*m, greq);
        }
        self.in_flight.insert(greq, pending);
    }

    fn finish(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, greq: u64) {
        let p = self.in_flight.remove(&greq).expect("pending");
        let span = self.span_decorrelate(greq);
        for m in &p.msgs {
            self.msg_to_greq.remove(m);
        }
        let (file, size, protocol, slot) = match &p.job {
            Job::Write {
                file,
                size,
                protocol,
                ..
            } => (*file, *size, *protocol, None),
            Job::WriteAt {
                file,
                data,
                protocol,
                slot,
                ..
            } => (*file, data.len() as u32, *protocol, slot.clone()),
            _ => return,
        };
        // The application observes completion one poll interval after the
        // ack reaches the NIC (CQ polling cost, charged to every protocol).
        let end = ctx.now() + nic.cpu.costs.poll_notify;
        if p.status == Status::Ok {
            // The bytes are durable: commit the placement into the file's
            // extent map so reads can find them. The commit reports how
            // far the committed size actually grew — the attr write-back
            // carries that, not the placement-time delta (which would
            // count bytes of earlier placements that never committed).
            let appended = self
                .control
                .borrow_mut()
                .commit_write(file, &p.placement, size);
            self.trace.borrow_mut().emit_with(ctx.now(), "control", || {
                format!("commit-write f{file} {size}B greq={greq}")
            });
            if self.cache_enabled {
                // Write-back metadata: absorb the size/mtime update
                // locally; a batch flush pays one round-trip for many
                // writes.
                self.meta_cache
                    .borrow_mut()
                    .buffer_append(file, appended, end.as_ns() as u64);
                if self.meta_cache.borrow().dirty_count() >= WRITEBACK_BATCH {
                    self.flush_writeback();
                }
            } else {
                // Write-through: an uncached client pays one attr-update
                // round-trip per write (and never goes stale).
                let _ = self.control.borrow_mut().flush_attrs(&[(
                    file,
                    nadfs_meta::DirtyAttr {
                        appended,
                        mtime_ns: end.as_ns() as u64,
                    },
                )]);
            }
            if self.read_cache_enabled {
                // Write-through cache population: a read-after-write is
                // served locally without a resolve or fan-out. The fill
                // carries the post-commit generation, so the commit's own
                // invalidation callback does not immediately evict it.
                let generation = self.control.borrow().extent_generation(file);
                self.read_cache.borrow_mut().fill_from_write(
                    file,
                    generation,
                    p.placement.offset,
                    &p.data,
                );
            }
            self.span_mark(span, phase::COMMITTED, ctx.now());
        }
        self.span_end(span, end, p.status == Status::Ok);
        let result = WriteResult {
            greq,
            client: nic.node(),
            protocol,
            size,
            start: p.start,
            end,
            status: p.status,
            retries: p.retries,
            checksum: p.checksum,
            placement: p.placement,
        };
        if let Some(slot) = slot {
            *slot.borrow_mut() = Some(result.clone());
        }
        self.results.borrow_mut().writes.push(result);
        self.fill(nic, ctx);
    }
}

fn job_clone(j: &Job) -> Job {
    j.clone()
}

/// Plan-relative `[start, end)` byte range one read piece covers.
fn piece_bounds(piece: &ReadPiece) -> (u32, u32) {
    match piece {
        ReadPiece::Hole { dest_off, len } | ReadPiece::Direct { dest_off, len, .. } => {
            (*dest_off, dest_off + len)
        }
        ReadPiece::Degraded { copy, .. } => copy.iter().fold((u32::MAX, 0), |(s, e), c| {
            (s.min(c.dest_off), e.max(c.dest_off + c.len))
        }),
    }
}

/// Fan a striped plain write out as one write per stripe extent (with the
/// DFS header when going through the NIC handlers), acked independently.
fn send_striped(
    pending: &mut Pending,
    nic: &mut NicCore,
    ctx: &mut Ctx<'_>,
    placement: &WritePlacement,
    data: &Bytes,
    dfs: Option<DfsHeader>,
) {
    pending.acks_needed = placement.stripes.len() as u32;
    let mut off = 0usize;
    for st in &placement.stripes {
        let wrh = WriteReqHeader {
            target_addr: st.coord.addr,
            len: st.len,
            resiliency: Resiliency::None,
        };
        let msg = nic.send_write(
            ctx,
            st.coord.node as NodeId,
            dfs,
            wrh,
            data.slice(off..off + st.len as usize),
        );
        pending.msgs.push(msg);
        off += st.len as usize;
    }
}

impl NicApp for ClientApp {
    fn on_ack(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, _src: NodeId, ack: AckPkt) {
        // Read NACK (capability failure / rejected region): the piece will
        // never stream back, so account it and fail the op when the rest
        // of the fan-out settles.
        if let Some(op_id) = self.read_msg_to_op.remove(&ack.msg) {
            nic.cancel_read(ack.msg);
            if let Some(op) = self.reads_in_flight.get_mut(&op_id) {
                if ack.status != Status::Ok {
                    op.status = ack.status;
                }
                op.subs_left = op.subs_left.saturating_sub(1);
                if op.subs_left == 0 {
                    self.complete_read(nic, ctx, op_id);
                }
            }
            return;
        }
        // Repair traffic: a NACKed survivor fetch aborts the task; spare
        // write acks count down toward the extent-map commit.
        if let Some(op_id) = self.repair_msg_to_op.get(&ack.msg).copied() {
            self.repair_msg_to_op.remove(&ack.msg);
            let Some(op) = self.repairs_in_flight.get_mut(&op_id) else {
                return;
            };
            if !op.writing {
                // Fetch phase: the only acks are NACKs (auth failure,
                // rejected region) — the shard will never stream back.
                nic.cancel_read(ack.msg);
                let status = if ack.status == Status::Ok {
                    Status::Rejected
                } else {
                    ack.status
                };
                self.fail_repair(nic, ctx, op_id, status);
            } else if ack.status != Status::Ok {
                self.fail_repair(nic, ctx, op_id, ack.status);
            } else {
                op.write_acks_left = op.write_acks_left.saturating_sub(1);
                if op.write_acks_left == 0 {
                    self.commit_and_complete_repair(nic, ctx, op_id);
                }
            }
            return;
        }
        let greq = ack
            .greq_id
            .filter(|g| self.in_flight.contains_key(g))
            .or_else(|| self.msg_to_greq.get(&ack.msg).copied());
        let Some(greq) = greq else {
            return; // stale (e.g. ack after cleanup-driven completion)
        };
        let Some(p) = self.in_flight.get_mut(&greq) else {
            return;
        };
        match ack.status {
            Status::Busy => {
                // Descriptor exhaustion: retry the whole request later
                // (§III-B: "the request is denied, and the client will
                // retry later").
                let p = self.in_flight.remove(&greq).expect("pending");
                let span = self.span_decorrelate(greq);
                for m in &p.msgs {
                    self.msg_to_greq.remove(m);
                }
                let retries = p.retries + 1;
                let (file, size, protocol, slot) = match &p.job {
                    Job::Write {
                        file,
                        size,
                        protocol,
                        ..
                    } => (*file, *size, *protocol, None),
                    Job::WriteAt {
                        file,
                        data,
                        protocol,
                        slot,
                        ..
                    } => (*file, data.len() as u32, *protocol, slot.clone()),
                    _ => return,
                };
                // Re-place the same logical extent (fresh addresses, no
                // cursor advance) and retry after a backoff. If the file
                // is gone by now (unlinked under us), the job fails.
                // Attr accounting needs no carrying: the write-back uses
                // the committed-size growth `commit_write` reports when
                // the retry eventually lands.
                let prev_offset = p.placement.offset;
                let placed = self
                    .control
                    .borrow_mut()
                    .replace_write(file, size, prev_offset);
                let placement = match placed {
                    Ok(p) => p,
                    Err(_) => {
                        self.fail_write_job(
                            nic,
                            ctx,
                            size,
                            protocol,
                            retries,
                            ctx.now(),
                            slot,
                            span,
                        );
                        self.fill(nic, ctx);
                        return;
                    }
                };
                // The retry travels under a fresh greq: re-key the span.
                self.span_correlate(placement.greq, span);
                self.span_mark(span, phase::RETRIED, ctx.now());
                let tag = RETRY_BASE | placement.greq;
                self.retry_stash.push((tag, p.job, placement, retries));
                nic.set_timer(ctx, Dur::from_us(5 * retries as u64), tag);
            }
            Status::AuthFailed | Status::Rejected => {
                p.status = ack.status;
                p.acks_got += 1;
                // A rejection terminates the request immediately.
                let needed = p.acks_got.max(1);
                p.acks_needed = needed;
                if p.acks_got >= needed {
                    self.finish(nic, ctx, greq);
                }
            }
            Status::Ok => match &mut p.phase {
                Phase::HlConfiguring { acks_left } => {
                    *acks_left -= 1;
                    if *acks_left == 0 {
                        // Ring armed: push the data to the head node.
                        p.phase = Phase::Data;
                        let head = p.placement.replicas[0];
                        let wrh = WriteReqHeader {
                            target_addr: head.addr,
                            len: p.data.len() as u32,
                            resiliency: Resiliency::None,
                        };
                        let data = p.data.clone();
                        let msg = nic.send_write(ctx, head.node as NodeId, None, wrh, data);
                        p.msgs.push(msg);
                        let greq2 = greq;
                        self.msg_to_greq.insert(msg, greq2);
                    }
                }
                Phase::Data => {
                    p.acks_got += 1;
                    if p.acks_got >= p.acks_needed {
                        self.finish(nic, ctx, greq);
                    }
                }
            },
        }
    }

    fn on_read_done(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, token: u64) {
        // Repair survivor fetch?
        if let Some(op_id) = self.repair_sub_to_op.remove(&token) {
            let Some(op) = self.repairs_in_flight.get_mut(&op_id) else {
                return;
            };
            op.fetch_left = op.fetch_left.saturating_sub(1);
            if op.fetch_left > 0 {
                return;
            }
            // Model the rebuild cost: the client CPU walks every fetched
            // byte before the re-protected shards exist.
            let bytes = op.bytes_moved;
            let now = ctx.now();
            let t = nic.cpu.exec(now, nic.cpu.memcpy_cost(bytes));
            let tag = REPAIR_FIN_BASE | op_id;
            self.repair_fin_stash.push((tag, op_id));
            nic.set_timer(ctx, t.since(now), tag);
            return;
        }
        // File-level read piece?
        if let Some(op_id) = self.read_sub_to_op.remove(&token) {
            let ready = {
                let Some(op) = self.reads_in_flight.get_mut(&op_id) else {
                    return;
                };
                op.subs_left = op.subs_left.saturating_sub(1);
                op.subs_left == 0
            };
            if !ready {
                return;
            }
            let op = &self.reads_in_flight[&op_id];
            if op.degraded.is_empty() || op.status != Status::Ok {
                self.complete_read(nic, ctx, op_id);
            } else {
                // Model the reconstruction cost: the client CPU walks k
                // shards per degraded stripe before the data is usable.
                let bytes: u64 = op
                    .degraded
                    .iter()
                    .map(|d| d.scheme.k as u64 * d.chunk_len as u64)
                    .sum();
                let now = ctx.now();
                let t = nic.cpu.exec(now, nic.cpu.memcpy_cost(bytes));
                let tag = READ_FIN_BASE | op_id;
                self.read_fin_stash.push((tag, op_id));
                nic.set_timer(ctx, t.since(now), tag);
            }
            return;
        }
        // Legacy raw-region read.
        let Some((addr, len)) = self.read_tokens.remove(&token) else {
            return;
        };
        let bytes = nic.memory().borrow().read(addr, len as usize);
        self.results.borrow_mut().reads.push(ReadResult {
            token,
            end: ctx.now(),
            len,
            checksum: payload_checksum(&bytes),
        });
        self.fill(nic, ctx);
    }

    fn on_timer(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == KICK {
            self.fill(nic, ctx);
            return;
        }
        if tag & META_BASE == META_BASE {
            if let Some(idx) = self.meta_stash.iter().position(|(t, _)| *t == tag) {
                let (_, pm) = self.meta_stash.remove(idx);
                self.meta_in_flight -= 1;
                self.span_end(pm.span, ctx.now(), pm.result.is_ok());
                if self.bulk_meta_span != 0 && pm.result.is_err() {
                    self.bulk_meta_errs += 1;
                }
                self.results.borrow_mut().metas.push(MetaResult {
                    token: pm.token,
                    client: nic.node(),
                    op: pm.kind,
                    start: pm.start,
                    end: ctx.now(),
                    cache_hit: pm.cache_hit,
                    result: pm.result,
                });
                self.fill(nic, ctx);
                self.finish_bulk_meta_span(ctx);
            }
            return;
        }
        if tag & CACHE_FIN_BASE == CACHE_FIN_BASE {
            if let Some(idx) = self.cache_fin_stash.iter().position(|(t, _)| *t == tag) {
                let (_, hit) = self.cache_fin_stash.remove(idx);
                let slot = hit.slot;
                let end = ctx.now() + nic.cpu.costs.poll_notify;
                self.span_end(hit.span, end, true);
                let completion = ReadCompletion {
                    token: hit.token,
                    client: nic.node(),
                    file: hit.file,
                    protocol: hit.protocol,
                    offset: hit.offset,
                    len: hit.data.len() as u32,
                    start: hit.start,
                    end,
                    status: Status::Ok,
                    degraded_stripes: 0,
                    from_cache: true,
                    checksum: payload_checksum(&hit.data),
                    data: hit.data,
                };
                if let Some(slot) = &slot {
                    *slot.borrow_mut() = Some(completion.clone());
                }
                self.results.borrow_mut().file_reads.push(completion);
                self.fill(nic, ctx);
            }
            return;
        }
        if tag & READ_ISSUE_BASE == READ_ISSUE_BASE {
            if let Some(idx) = self.read_issue_stash.iter().position(|(t, ..)| *t == tag) {
                let (_, op_id, issue, dfs) = self.read_issue_stash.remove(idx);
                self.issue_read_fanout(nic, ctx, op_id, issue, dfs);
            }
            return;
        }
        if tag & READ_FIN_BASE == READ_FIN_BASE {
            if let Some(idx) = self.read_fin_stash.iter().position(|(t, _)| *t == tag) {
                let (_, op_id) = self.read_fin_stash.remove(idx);
                self.complete_read(nic, ctx, op_id);
            }
            return;
        }
        if tag & REPAIR_FIN_BASE == REPAIR_FIN_BASE {
            if let Some(idx) = self.repair_fin_stash.iter().position(|(t, _)| *t == tag) {
                let (_, op_id) = self.repair_fin_stash.remove(idx);
                self.repair_rebuild_and_write(nic, ctx, op_id);
            }
            return;
        }
        if tag & RETRY_BASE == RETRY_BASE {
            if let Some(idx) = self.retry_stash.iter().position(|(t, ..)| *t == tag) {
                let (_, job, placement, retries) = self.retry_stash.remove(idx);
                self.issue_write(nic, ctx, job, placement, retries, ctx.now());
            }
            return;
        }
        if tag & ISSUE_BASE == ISSUE_BASE {
            if let Some(idx) = self.issue_stash.iter().position(|(t, ..)| *t == tag) {
                let (_, job, placement, start) = self.issue_stash.remove(idx);
                self.issue_write(nic, ctx, job, placement, 0, start);
            }
        }
    }
}
