//! Ino → metadata-shard routing.
//!
//! The namespace is hash-partitioned across shards by inode number
//! (SwitchFS-style fine-grained partitioning): a mixing function over the
//! ino picks the owning shard, so directory locality does not funnel a
//! whole subtree onto one shard while the mapping stays stateless — any
//! client or server can compute it with no directory-service round trip.

/// Stateless ino → shard map shared by every control-plane entry point.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    n_shards: usize,
}

impl ShardRouter {
    pub fn new(n_shards: usize) -> ShardRouter {
        ShardRouter {
            n_shards: n_shards.max(1),
        }
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning `ino`. Sequentially-allocated inos (the common
    /// namespace pattern) must spread: a bare `ino % n` would put every
    /// other create on the same shard pair, so mix first.
    pub fn route(&self, ino: u64) -> usize {
        (splitmix64(ino) % self.n_shards as u64) as usize
    }
}

/// splitmix64 finalizer: cheap, stateless, and avalanche-complete — one
/// flipped input bit flips ~half the output bits, which is what makes
/// `% n_shards` uniform over sequential inos.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for ino in 0..100 {
            assert_eq!(r.route(ino), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = ShardRouter::new(4);
        for ino in 0..1000 {
            let s = r.route(ino);
            assert!(s < 4);
            assert_eq!(s, r.route(ino), "stateless and stable");
        }
    }

    #[test]
    fn sequential_inos_spread_across_shards() {
        // The allocation pattern the namespace actually produces: a dense
        // run of sequential inos. Every shard must see a fair share.
        let r = ShardRouter::new(8);
        let mut counts = [0usize; 8];
        for ino in 1..=4096 {
            counts[r.route(ino)] += 1;
        }
        let expect = 4096 / 8;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {s} got {c} of 4096 (expected ~{expect})"
            );
        }
    }
}
