//! Control plane: management and metadata services.
//!
//! Per the paper's operational model (Fig 1a), clients authenticate with
//! the management service, query the metadata service for file layouts, and
//! then talk to storage nodes directly. Control-plane interactions are
//! excluded from the measured write latency ("the write latency is the time
//! spanning from issuing the write request to receiving the respective
//! write response", §IV) — so the services here are shared state consulted
//! synchronously by the drivers, with an optional RPC front used by the
//! full-system examples.
//!
//! The metadata service is a real hierarchical namespace
//! ([`nadfs_meta::MetadataService`]): files live at paths, carry striped
//! layouts (stripe width × chunk size over storage nodes), and every
//! mutation bumps versions that drive client-cache invalidation. The
//! seed's flat `u64 → FileMeta` API survives on top: a file's id *is* its
//! inode number, and [`ControlPlane::create_file`] parks legacy files
//! under `/.volatile/`.
//!
//! The metadata plane is **sharded** (ROADMAP item 1): per-file state is
//! hash-partitioned over N [`shard::MetaShard`]s by a stateless
//! [`router::ShardRouter`], mutations ack after a per-shard op-log append
//! (AsyncFS-style async updates — [`shard`]), and operations whose
//! participants hash to different shards run a two-phase intent/commit
//! protocol the fault harness can kill mid-flight. `ControlPlane` itself
//! is a thin façade over the focused submodules: [`placement`] (where
//! bytes go), [`resolution`] (read planning + compaction), and
//! [`repair_queue`] (background re-protection).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use nadfs_meta::{
    ExtentMap, ExtentRecord, InodeAttr, LayoutSpec, MetaCache, MetaError, MetaEvent,
    MetadataService, ReadPiece, ReadPlan, StripedLayout,
};
use nadfs_simnet::NodeId;
use nadfs_wire::{Capability, MacKey, ReplicaCoord, Rights, RsScheme};

use crate::cache::ReadCache;
use crate::config::MetaCosts;
use crate::storage::SharedStorageStats;

mod placement;
mod repair_queue;
mod resolution;
mod router;
mod shard;

pub use repair_queue::{RepairPlan, RepairQueue, RepairStats, RepairTask};
pub use router::ShardRouter;
pub use shard::{
    CrashPoint, LogEntry, MetaMutation, MetaShard, OpLog, ServiceClass, ShardStats, TxRecovery,
};

// Policies now live with the rest of the file metadata in `nadfs-meta`;
// re-exported here so existing call sites keep working.
pub use nadfs_meta::FilePolicy;

/// A file's metadata, as handed to clients.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// The file id (its inode number in the namespace).
    pub id: u64,
    /// Committed (durable) bytes: advanced when a write's placement is
    /// committed into the extent map, never by placement alone. This is
    /// what `stat` reflects and what read planning clamps against — a
    /// write that is rejected or never acknowledged must not create
    /// phantom EOF state.
    pub size: u64,
    /// The placement cursor: appends place at this offset, and it
    /// advances at *placement* time so pipelined appends never overlap.
    /// Runs ahead of `size` while writes are in flight; a rejected write
    /// leaves a permanent gap between the two (the file is sparse there
    /// if a later write commits past it).
    pub cursor: u64,
    pub policy: FilePolicy,
    /// Index (into the storage-node list) of the stripe's first node.
    pub home: usize,
    /// Where the file's bytes go.
    pub layout: StripedLayout,
}

/// One striped piece of a plain write: a concrete (node, addr) target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeTarget {
    pub coord: ReplicaCoord,
    pub len: u32,
    /// Logical byte offset within the file.
    pub file_offset: u64,
}

/// Placement of one write: where every byte (and parity) goes.
#[derive(Clone, Debug)]
pub struct WritePlacement {
    pub greq: u64,
    /// Primary target (node, address).
    pub primary: ReplicaCoord,
    /// All replica coordinates including the primary, in virtual-rank
    /// order (replication only).
    pub replicas: Vec<ReplicaCoord>,
    /// Data-chunk coordinates (EC only), one per data node.
    pub data_chunks: Vec<ReplicaCoord>,
    /// Parity coordinates (EC only).
    pub parities: Vec<ReplicaCoord>,
    /// EC chunk length (bytes per data chunk).
    pub chunk_len: u32,
    /// Logical file offset this placement writes at.
    pub offset: u64,
    /// Bytes by which this placement advanced the file's placement
    /// cursor (0 for retries and pure overwrites). Informational — the
    /// attr write-back uses the committed-size growth `commit_write`
    /// reports, not this placement-time figure.
    pub appended: u64,
    /// Striped plain-write targets, in file order (width > 1 layouts
    /// only; empty means "single extent at `primary`").
    pub stripes: Vec<StripeTarget>,
}

impl WritePlacement {
    /// Placement for a request that was rejected before placement (the
    /// failed-job record still carries a `WritePlacement`).
    pub fn rejected(greq: u64) -> WritePlacement {
        WritePlacement {
            greq,
            primary: ReplicaCoord { node: 0, addr: 0 },
            replicas: vec![],
            data_chunks: vec![],
            parities: vec![],
            chunk_len: 0,
            offset: 0,
            appended: 0,
            stripes: vec![],
        }
    }
}

/// Chunk/byte tally of stale copies awaiting reclamation on one node.
#[derive(Clone, Copy, Debug, Default)]
struct NodeLedger {
    chunks: u64,
    bytes: u64,
}

/// The control plane: management (authentication) + metadata (namespace,
/// layout, placement) services, fronting the shard set.
pub struct ControlPlane {
    key: MacKey,
    /// The hierarchical namespace + layout service.
    pub meta: MetadataService,
    next_legacy: u64,
    next_greq: u64,
    next_nonce: u64,
    /// Cross-shard transaction id allocator.
    next_txid: u64,
    /// Storage nodes, by fabric node id.
    storage_nodes: Vec<NodeId>,
    /// Bump allocator per storage node for write placement.
    next_addr: HashMap<NodeId, u64>,
    /// Client metadata caches subscribed to invalidation callbacks.
    caches: Vec<Rc<RefCell<MetaCache>>>,
    /// Client read caches subscribed to extent-generation callbacks (the
    /// same event channel; these consume `LayoutChanged`).
    read_caches: Vec<Rc<RefCell<ReadCache>>>,
    /// The metadata shards: partitioned FileMeta/ExtentMap state, op
    /// logs, and the per-shard admission queues.
    shards: Vec<MetaShard>,
    /// Stateless ino → shard map.
    router: ShardRouter,
    /// Shard service times for the admission model (set from the
    /// cluster's cost model; defaults match `MetaCosts::default`).
    service_costs: MetaCosts,
    /// The shard + service class of the most recent routed op — what
    /// [`ControlPlane::admit_last`] charges. Overwritten by every routed
    /// op, so a client admitting right after its call always charges the
    /// op it just made.
    last_route: Option<(usize, ServiceClass)>,
    /// Armed mid-transaction kill switch (fault harness).
    crash_point: Option<CrashPoint>,
    /// Storage nodes currently marked failed (degraded-read routing).
    failed_nodes: HashSet<u32>,
    /// Stale physical copies stranded on failed nodes: shards whose
    /// extents were re-homed (or whose file was unlinked) during the
    /// outage. The live hosted gauges are decremented at re-home/unlink
    /// time; this ledger remembers the dead bytes still physically
    /// occupying the node so recovery reconciliation can reclaim them.
    orphaned: HashMap<u32, NodeLedger>,
    /// Extents awaiting background re-protection.
    pub repair_queue: RepairQueue,
    /// Tasks popped from the queue but not yet committed, requeued, or
    /// abandoned — compaction must not shift record indices under them.
    inflight_repairs: HashSet<RepairTask>,
    /// Rotates spare-node selection so repair placements spread.
    next_spare: usize,
    /// Per-storage-node stats sinks (index-aligned with `storage_nodes`),
    /// attached by the cluster builder so placement decisions are
    /// observable on the nodes they land on.
    storage_stats: Vec<SharedStorageStats>,
    /// Per-file sequential-scan detector over resolve traffic: when a
    /// file's resolves run back-to-back, the control plane publishes
    /// prefetch advisories to every registered read cache.
    scan_tracker: HashMap<u64, (u64, u32)>,
}

pub type SharedControl = Rc<RefCell<ControlPlane>>;

/// The parent path of `path` ("/" for top-level entries and the root).
fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

impl ControlPlane {
    pub fn new(key_seed: u64, storage_nodes: Vec<NodeId>) -> SharedControl {
        Self::new_sharded(key_seed, storage_nodes, 1)
    }

    /// A control plane with `n_shards` metadata shards. One shard
    /// reproduces the unsharded plane exactly (every ino routes to
    /// shard 0); behavior is shard-count-invariant by construction —
    /// only the queueing/throughput model changes.
    pub fn new_sharded(
        key_seed: u64,
        storage_nodes: Vec<NodeId>,
        n_shards: usize,
    ) -> SharedControl {
        let n_shards = n_shards.max(1);
        let next_addr = storage_nodes.iter().map(|&n| (n, 0x10_0000u64)).collect();
        let meta = MetadataService::new(storage_nodes.iter().map(|&n| n as u32).collect());
        Rc::new(RefCell::new(ControlPlane {
            key: MacKey::from_seed(key_seed),
            meta,
            next_legacy: 1,
            next_greq: 1,
            next_nonce: 1,
            next_txid: 1,
            storage_nodes,
            next_addr,
            caches: Vec::new(),
            read_caches: Vec::new(),
            shards: (0..n_shards).map(MetaShard::new).collect(),
            router: ShardRouter::new(n_shards),
            service_costs: MetaCosts::default(),
            last_route: None,
            crash_point: None,
            failed_nodes: HashSet::new(),
            orphaned: HashMap::new(),
            repair_queue: RepairQueue::default(),
            inflight_repairs: HashSet::new(),
            next_spare: 0,
            storage_stats: Vec::new(),
            scan_tracker: HashMap::new(),
        }))
    }

    /// Install the cluster's metadata cost model (shard service times
    /// for the admission model).
    pub fn set_meta_costs(&mut self, costs: MetaCosts) {
        self.service_costs = costs;
    }

    /// The service-shared MAC key (installed into storage-node NIC memory).
    pub fn service_key(&self) -> MacKey {
        self.key
    }

    pub fn storage_nodes(&self) -> &[NodeId] {
        &self.storage_nodes
    }

    /// Subscribe a client cache to invalidation callbacks.
    pub fn register_cache(&mut self, cache: Rc<RefCell<MetaCache>>) {
        self.caches.push(cache);
    }

    /// Subscribe a client read cache to extent-generation callbacks
    /// (commits, overwrites, repair re-homing, unlink).
    pub fn register_read_cache(&mut self, cache: Rc<RefCell<ReadCache>>) {
        self.read_caches.push(cache);
    }

    /// Attach per-node stats sinks (index-aligned with `storage_nodes`).
    pub fn attach_storage_stats(&mut self, stats: Vec<SharedStorageStats>) {
        assert_eq!(stats.len(), self.storage_nodes.len());
        self.storage_stats = stats;
    }

    // ---- shard accessors (the partitioned state's only doorway) ----

    /// The metadata shard owning `ino`.
    pub fn shard_of(&self, ino: u64) -> usize {
        self.router.route(ino)
    }

    fn file(&self, ino: u64) -> Option<&FileMeta> {
        self.shards[self.router.route(ino)].files.get(&ino)
    }

    fn file_mut(&mut self, ino: u64) -> Option<&mut FileMeta> {
        let s = self.router.route(ino);
        self.shards[s].files.get_mut(&ino)
    }

    fn extent_map(&self, ino: u64) -> Option<&ExtentMap> {
        self.shards[self.router.route(ino)].extents.get(&ino)
    }

    /// Every file's extent map, across all shards (iteration order is
    /// shard-major and hash-arbitrary within a shard — callers needing
    /// determinism must sort, as `mark_node_failed` does).
    fn all_extent_maps(&self) -> impl Iterator<Item = (&u64, &ExtentMap)> {
        self.shards.iter().flat_map(|s| s.extents.iter())
    }

    /// Drop a vanished file's per-shard state (unlink, rename-replace):
    /// FileMeta, extent map (un-hosting every record), compaction floor.
    fn remove_file_state(&mut self, ino: u64) {
        let s = self.router.route(ino);
        self.shards[s].files.remove(&ino);
        self.shards[s].compact_floor.remove(&ino);
        if let Some(map) = self.shards[s].extents.remove(&ino) {
            for rec in map.records() {
                self.unhost_record(rec);
            }
        }
    }

    /// The shard owning `path`'s parent directory — where namespace
    /// mutations on `path` route (the parent's entry list is the state
    /// they contend on). Unresolvable parents (first mkdir_p level)
    /// route to shard 0.
    fn route_parent(&self, path: &str) -> usize {
        self.meta
            .ns
            .resolve(parent_of(path))
            .map(|ino| self.shard_of(ino))
            .unwrap_or(0)
    }

    /// Fan the metadata service's mutation events out to every registered
    /// client cache (the callback channel).
    fn publish_invalidations(&mut self) {
        let events = self.meta.take_events();
        if events.is_empty() {
            return;
        }
        for cache in &self.caches {
            let mut c = cache.borrow_mut();
            for ev in &events {
                match ev {
                    MetaEvent::Changed { path } => c.invalidate_path(path),
                    MetaEvent::SubtreeGone { path } => c.invalidate_subtree(path),
                    // Data-generation + prefetch events: read caches only.
                    MetaEvent::LayoutChanged { .. } | MetaEvent::PrefetchHint { .. } => {}
                }
            }
        }
        for cache in &self.read_caches {
            let mut c = cache.borrow_mut();
            for ev in &events {
                match ev {
                    MetaEvent::LayoutChanged { ino, generation } => {
                        c.note_generation(*ino, *generation);
                    }
                    MetaEvent::PrefetchHint { ino, offset, len } => {
                        c.note_hint(*ino, *offset, *len);
                    }
                    _ => {}
                }
            }
        }
    }

    fn install_file(&mut self, attr: &InodeAttr, layout: StripedLayout, policy: FilePolicy) {
        let meta = FileMeta {
            id: attr.ino,
            size: attr.size,
            cursor: attr.size,
            policy,
            home: self.home_of(&layout),
            layout,
        };
        let s = self.router.route(attr.ino);
        self.shards[s].files.insert(attr.ino, meta);
    }

    /// Create a file with the given policy (legacy flat API): parked under
    /// `/.volatile/`, single-node layout assigned round-robin.
    pub fn create_file(&mut self, size: u64, policy: FilePolicy) -> FileMeta {
        let name = format!("/.volatile/f{}", self.next_legacy);
        self.next_legacy += 1;
        self.meta.ns.mkdir_p("/.volatile", 0).expect("legacy dir");
        let meta = self
            .create_file_at(&name, LayoutSpec::SINGLE, policy)
            .expect("fresh legacy path");
        // Legacy callers pre-declare the size; advance both the committed
        // size and the cursor so the first placement appends after it,
        // matching the seed behavior.
        let m = self.file_mut(meta.id).expect("just created");
        m.size = size;
        m.cursor = size;
        m.clone()
    }

    /// Create a file at `path` with a striped layout. The parent
    /// directory must exist (`mkdir`/`mkdir_p` first). Routed to the
    /// parent directory's shard; the ack point is that shard's op-log
    /// append (the attr/callback fan-out below is off the ack path).
    pub fn create_file_at(
        &mut self,
        path: &str,
        spec: LayoutSpec,
        policy: FilePolicy,
    ) -> Result<FileMeta, MetaError> {
        let parent = self.route_parent(path);
        self.note_route(parent, ServiceClass::Mutation);
        let (attr, layout) = self.meta.create(path, spec, policy.clone(), 0)?;
        self.install_file(&attr, layout, policy);
        self.log_apply(parent, MetaMutation::Create { ino: attr.ino });
        self.publish_invalidations();
        Ok(self.file(attr.ino).expect("just installed").clone())
    }

    /// Metadata lookup by file id. A miss is a typed error, not a panic
    /// or a silent `None`.
    pub fn lookup(&self, file: u64) -> Result<&FileMeta, MetaError> {
        self.file(file).ok_or(MetaError::UnknownFile(file))
    }

    /// Path lookup (counts as one metadata round-trip). Routed to the
    /// target's shard.
    pub fn lookup_path(&mut self, path: &str) -> Result<InodeAttr, MetaError> {
        let r = self.meta.lookup(path);
        let shard = r.as_ref().map(|a| self.shard_of(a.ino)).unwrap_or(0);
        self.note_route(shard, ServiceClass::Resolve);
        r
    }

    /// Path lookup returning what a client cache stores: attrs + layout
    /// for files.
    pub fn lookup_entry(
        &mut self,
        path: &str,
    ) -> Result<(InodeAttr, Option<StripedLayout>), MetaError> {
        self.lookup_path(path)?; // the counted round-trip
        self.peek_entry(path)
    }

    /// Uncounted lookup for cache refills: the caller already paid the
    /// round-trip (e.g. a create response) and only needs the entry.
    pub fn peek_entry(&self, path: &str) -> Result<(InodeAttr, Option<StripedLayout>), MetaError> {
        let attr = self.meta.ns.lookup(path)?;
        let layout = if attr.kind == nadfs_meta::InodeKind::File {
            self.meta
                .ns
                .inode(attr.ino)?
                .file()
                .map(|f| f.layout.clone())
        } else {
            None
        };
        Ok((attr, layout))
    }

    pub fn mkdir(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let parent = self.route_parent(path);
        self.note_route(parent, ServiceClass::Mutation);
        let r = self.meta.mkdir(path, now_ns);
        if let Ok(attr) = &r {
            self.log_apply(parent, MetaMutation::Mkdir { ino: attr.ino });
        }
        self.publish_invalidations();
        r
    }

    pub fn mkdir_p(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let parent = self.route_parent(path);
        self.note_route(parent, ServiceClass::Mutation);
        let r = self.meta.mkdir_p(path, now_ns);
        if let Ok(attr) = &r {
            self.log_apply(parent, MetaMutation::Mkdir { ino: attr.ino });
        }
        self.publish_invalidations();
        r
    }

    pub fn readdir(&mut self, path: &str) -> Result<Vec<(String, InodeAttr)>, MetaError> {
        let shard = self
            .meta
            .ns
            .resolve(path)
            .map(|ino| self.shard_of(ino))
            .unwrap_or(0);
        self.note_route(shard, ServiceClass::Resolve);
        self.meta.readdir(path)
    }

    /// Rename. The participant set is {shard(from-parent),
    /// shard(to-parent), shard(replaced target)}; when it spans shards
    /// the op runs the two-phase intent/commit protocol, and the armed
    /// [`CrashPoint`] (if any) kills it mid-flight — leaving dangling
    /// intents for [`ControlPlane::recover_shards`] to resolve.
    pub fn rename(&mut self, from: &str, to: &str, now_ns: u64) -> Result<(), MetaError> {
        let coordinator = self.route_parent(from);
        let to_parent = self.route_parent(to);
        let replaced_shard = self.meta.ns.resolve(to).ok().map(|ino| self.shard_of(ino));
        let mut participants = vec![coordinator, to_parent];
        participants.extend(replaced_shard);
        participants.sort_unstable();
        participants.dedup();
        self.note_route(coordinator, ServiceClass::Mutation);
        let op = MetaMutation::Rename {
            from: from.to_string(),
            to: to.to_string(),
        };
        let txid = if participants.len() > 1 {
            let txid = self.alloc_txid();
            self.tx_intent(txid, &participants, op.clone())?;
            Some(txid)
        } else {
            None
        };
        let r = self.meta.rename(from, to, now_ns);
        if let Ok(Some(replaced)) = r {
            // A POSIX replace deletes the target inode: drop its
            // placement state too, exactly like an unlink.
            self.remove_file_state(replaced);
            self.meta.note_extents_gone(replaced);
        }
        self.publish_invalidations();
        match (&r, txid) {
            (Ok(_), Some(txid)) => {
                self.tx_applied(txid, coordinator)?;
                self.tx_commit(txid, &participants, coordinator);
            }
            (Err(_), Some(txid)) => {
                // Validation rejected the op: the intents are dead on
                // arrival — abort them so recovery has nothing to do.
                for &s in &participants {
                    self.shards[s].log.append(LogEntry::Abort { txid });
                }
            }
            (Ok(_), None) => self.log_apply(coordinator, op),
            (Err(_), None) => {}
        }
        r.map(|_| ())
    }

    /// Unlink a file or empty directory; a removed file's placement state
    /// is dropped with it. Participants: {shard(parent), shard(target)} —
    /// cross-shard when they hash apart (two-phase, like rename).
    pub fn unlink(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let coordinator = self.route_parent(path);
        let target = self.meta.ns.resolve(path).ok();
        let mut participants = vec![coordinator];
        participants.extend(target.map(|ino| self.shard_of(ino)));
        participants.sort_unstable();
        participants.dedup();
        self.note_route(coordinator, ServiceClass::Mutation);
        let op = MetaMutation::Unlink {
            ino: target.unwrap_or(0),
        };
        let txid = if participants.len() > 1 {
            let txid = self.alloc_txid();
            self.tx_intent(txid, &participants, op.clone())?;
            Some(txid)
        } else {
            None
        };
        let r = self.meta.unlink(path, now_ns);
        if let Ok(attr) = &r {
            self.remove_file_state(attr.ino);
            self.meta.note_extents_gone(attr.ino);
        }
        self.publish_invalidations();
        match (&r, txid) {
            (Ok(_), Some(txid)) => {
                self.tx_applied(txid, coordinator)?;
                self.tx_commit(txid, &participants, coordinator);
            }
            (Err(_), Some(txid)) => {
                for &s in &participants {
                    self.shards[s].log.append(LogEntry::Abort { txid });
                }
            }
            (Ok(_), None) => self.log_apply(coordinator, op),
            (Err(_), None) => {}
        }
        r
    }

    /// Apply a client's write-back attribute flush. Applied updates
    /// publish `Changed` events, so other clients' cached attrs for the
    /// flushed files are invalidated. Each touched ino's flush is logged
    /// on its owning shard; admission charges the first ino's shard.
    pub fn flush_attrs(
        &mut self,
        updates: &[(u64, nadfs_meta::DirtyAttr)],
    ) -> Result<(), MetaError> {
        let shard = updates
            .first()
            .map(|(ino, _)| self.shard_of(*ino))
            .unwrap_or(0);
        self.note_route(shard, ServiceClass::Mutation);
        for (ino, _) in updates {
            let s = self.shard_of(*ino);
            self.log_apply(s, MetaMutation::AttrFlush { ino: *ino });
        }
        let r = self.meta.flush_attrs(updates);
        self.publish_invalidations();
        r
    }

    /// Management service: authenticate a client and issue a capability
    /// for `file` (§IV — signed with the service-shared key).
    pub fn issue_capability(
        &mut self,
        client: u32,
        file: u64,
        rights: Rights,
        expires_at_ns: u64,
    ) -> Capability {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        Capability::issue(&self.key, client, file, rights, expires_at_ns, nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadfs_wire::{BcastStrategy, RsScheme};

    fn plane() -> SharedControl {
        ControlPlane::new(7, vec![4, 5, 6, 7, 8])
    }

    #[test]
    fn create_and_lookup() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(1 << 20, FilePolicy::Plain);
        assert_eq!(cp.borrow().lookup(f.id).expect("found").size, 1 << 20);
        assert_eq!(
            cp.borrow().lookup(999).unwrap_err(),
            MetaError::UnknownFile(999),
            "misses are typed errors"
        );
    }

    #[test]
    fn capability_verifies_under_service_key() {
        let cp = plane();
        let cap = cp.borrow_mut().issue_capability(3, 1, Rights::RW, 1_000);
        let key = cp.borrow().service_key();
        assert!(cap.verify(&key, 0, Rights::WRITE).is_ok());
    }

    #[test]
    fn replicated_placement_uses_distinct_nodes() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 8192).expect("place");
        assert_eq!(p.replicas.len(), 4);
        let mut nodes: Vec<u32> = p.replicas.iter().map(|r| r.node).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "replicas on distinct nodes");
    }

    #[test]
    fn ec_placement_separates_data_and_parity() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 1000).expect("place");
        assert_eq!(p.data_chunks.len(), 3);
        assert_eq!(p.parities.len(), 2);
        assert_eq!(p.chunk_len, 1000);
        let mut all: Vec<u32> = p
            .data_chunks
            .iter()
            .chain(&p.parities)
            .map(|c| c.node)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 5, "k+m distinct failure domains");
    }

    #[test]
    fn placements_do_not_overlap() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let a = cp.borrow_mut().place_write(f.id, 10_000).expect("place");
        let b = cp.borrow_mut().place_write(f.id, 10_000).expect("place");
        assert_eq!(a.primary.node, b.primary.node);
        assert!(b.primary.addr >= a.primary.addr + 10_000);
        assert!(b.greq > a.greq);
    }

    #[test]
    fn namespace_files_stripe_over_distinct_nodes() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/data", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/data/big", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        assert_eq!(f.layout.stripe_width(), 3);
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        assert_eq!(p.stripes.len(), 3, "one extent per stripe unit");
        let mut nodes: Vec<u32> = p.stripes.iter().map(|s| s.coord.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "stripe units on distinct nodes");
        // The next append continues round-robin from the cursor.
        let q = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert!(q.stripes.is_empty(), "single-extent write");
        assert_eq!(q.primary.node, p.stripes[0].coord.node);
    }

    #[test]
    fn rename_replace_drops_replaced_placement_state() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let loser = cp
            .borrow_mut()
            .create_file_at("/d/loser", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let winner = cp
            .borrow_mut()
            .create_file_at("/d/winner", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        cp.borrow_mut()
            .rename("/d/winner", "/d/loser", 1)
            .expect("replace");
        // The replaced file is gone everywhere: namespace AND placement.
        assert_eq!(
            cp.borrow().lookup(loser.id).unwrap_err(),
            MetaError::UnknownFile(loser.id),
            "replaced file's placement state is dropped like an unlink"
        );
        assert!(cp.borrow_mut().place_write(loser.id, 64).is_err());
        assert!(cp.borrow().lookup(winner.id).is_ok());
        assert_eq!(
            cp.borrow_mut().lookup_path("/d/loser").expect("path").ino,
            winner.id
        );
    }

    #[test]
    fn attr_flush_skips_vanished_files_and_applies_the_rest() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let gone = cp
            .borrow_mut()
            .create_file_at("/d/gone", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let kept = cp
            .borrow_mut()
            .create_file_at("/d/kept", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        cp.borrow_mut().unlink("/d/gone", 1).expect("unlink");
        let updates = vec![
            (
                gone.id,
                nadfs_meta::DirtyAttr {
                    appended: 100,
                    mtime_ns: 2,
                },
            ),
            (
                kept.id,
                nadfs_meta::DirtyAttr {
                    appended: 4096,
                    mtime_ns: 2,
                },
            ),
        ];
        cp.borrow_mut()
            .flush_attrs(&updates)
            .expect("partial flush ok");
        assert_eq!(
            cp.borrow_mut().lookup_path("/d/kept").expect("kept").size,
            4096,
            "the surviving file's update is not lost to the vanished one"
        );
    }

    #[test]
    fn retry_replacement_does_not_advance_the_cursor_twice() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/s", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        let first = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert_eq!(first.offset, 0);
        // A Busy retry re-places the SAME logical extent...
        let retry = cp
            .borrow_mut()
            .replace_write(f.id, 4096, first.offset)
            .expect("re-place");
        assert_eq!(retry.offset, 0);
        assert_eq!(retry.primary.node, first.primary.node, "same stripe unit");
        assert_ne!(retry.primary.addr, first.primary.addr, "fresh address");
        // ...so the next append continues where the first write ended,
        // not two extents later.
        let next = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert_eq!(next.offset, 4096);
        assert_ne!(
            next.primary.node, first.primary.node,
            "stripe advanced once"
        );
    }

    #[test]
    fn commit_then_resolve_roundtrips_striped_extents() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/s", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        // A cross-stripe subrange resolves to the committed coordinates.
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 4000, 5000)
            .expect("resolve");
        assert_eq!(plan.len, 5000);
        let mut covered = 0u32;
        for piece in &plan.pieces {
            let nadfs_meta::ReadPiece::Direct { len, .. } = piece else {
                panic!("healthy striped read must be all direct pieces: {piece:?}");
            };
            covered += len;
        }
        assert_eq!(covered, 5000);
    }

    #[test]
    fn uncommitted_writes_do_not_extend_the_readable_size() {
        // The placement-time size-inflation regression: a placed but
        // never-committed write (rejected capability, client died before
        // the ack) must not move `stat` or the read clamp — planning
        // holes for bytes that were never durable is phantom EOF state.
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let p = cp.borrow_mut().place_write(f.id, 1000).expect("place");
        assert_eq!(
            cp.borrow().lookup(f.id).expect("meta").cursor,
            1000,
            "the cursor runs ahead so pipelined appends never overlap"
        );
        assert_eq!(
            cp.borrow().lookup(f.id).expect("meta").size,
            0,
            "committed size does not move at placement"
        );
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 5000)
            .expect("resolve");
        assert_eq!(plan.len, 0, "nothing durable: a clean zero-length read");
        // Once the write commits, the same resolve serves the bytes.
        cp.borrow_mut().commit_write(f.id, &p, 1000);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 1000);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 5000)
            .expect("resolve");
        assert_eq!(plan.len, 1000, "clamped at the committed size");
        assert!(plan
            .pieces
            .iter()
            .all(|p| matches!(p, nadfs_meta::ReadPiece::Direct { .. })));
    }

    #[test]
    fn rejected_write_between_commits_reads_as_a_hole_not_phantom_eof() {
        // Write 1 placed but never committed; write 2 (after it) commits:
        // the committed size covers write 2, and write 1's range reads as
        // a hole — sparse, not phantom data, not an inflated EOF.
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let _lost = cp.borrow_mut().place_write(f.id, 1000).expect("place");
        let kept = cp.borrow_mut().place_write(f.id, 500).expect("place");
        assert_eq!(kept.offset, 1000, "cursor placed write 2 after write 1");
        cp.borrow_mut().commit_write(f.id, &kept, 500);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 1500);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 2000)
            .expect("resolve");
        assert_eq!(plan.len, 1500);
        let hole: u32 = plan
            .pieces
            .iter()
            .filter_map(|p| match p {
                nadfs_meta::ReadPiece::Hole { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(hole, 1000, "the uncommitted range is a hole");
    }

    #[test]
    fn resolve_read_saturates_at_u64_max() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        // offset + len would overflow u64: must be a clean empty plan,
        // not a debug panic or a wrapped bogus range.
        for offset in [u64::MAX, u64::MAX - 1, u64::MAX - 4095] {
            let plan = cp
                .borrow_mut()
                .resolve_read(f.id, offset, u32::MAX)
                .expect("resolve");
            assert_eq!(plan.len, 0, "offset {offset:#x}");
            assert!(plan.pieces.is_empty());
        }
        // Just past EOF (no overflow): also a clean zero-length read.
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 4096, u32::MAX)
            .expect("resolve");
        assert_eq!(plan.len, 0);
    }

    #[test]
    fn place_write_at_overwrite_does_not_grow_the_file() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let a = cp.borrow_mut().place_write(f.id, 8192).expect("append");
        assert_eq!((a.offset, a.appended), (0, 8192));
        let o = cp
            .borrow_mut()
            .place_write_at(f.id, 4096, 1024)
            .expect("overwrite");
        assert_eq!((o.offset, o.appended), (1024, 0));
        let e = cp
            .borrow_mut()
            .place_write_at(f.id, 4096, 6144)
            .expect("extend");
        assert_eq!((e.offset, e.appended), (6144, 2048));
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").cursor, 10240);
        // Committed size follows the commits, not the placements.
        cp.borrow_mut().commit_write(f.id, &a, 8192);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 8192);
        cp.borrow_mut().commit_write(f.id, &o, 4096);
        assert_eq!(
            cp.borrow().lookup(f.id).expect("meta").size,
            8192,
            "interior overwrite does not grow the committed size"
        );
        cp.borrow_mut().commit_write(f.id, &e, 4096);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 10240);
    }

    #[test]
    fn failed_node_routes_replicated_reads_to_survivors() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 4096)
            .expect("resolve");
        let nadfs_meta::ReadPiece::Direct { coord, .. } = &plan.pieces[0] else {
            panic!("direct piece");
        };
        assert_eq!(coord.node, p.replicas[1].node, "failover to next replica");
        cp.borrow_mut().mark_node_recovered(p.replicas[0].node);
        let plan2 = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 4096)
            .expect("resolve");
        let nadfs_meta::ReadPiece::Direct { coord, .. } = &plan2.pieces[0] else {
            panic!("direct piece");
        };
        assert_eq!(coord.node, p.replicas[0].node, "primary serves again");
    }

    #[test]
    fn node_failure_enqueues_affected_extents_once() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        let victim = p.data_chunks[0].node;
        cp.borrow_mut().mark_node_failed(victim);
        assert_eq!(cp.borrow().repair_queue.len(), 1);
        // Marking the same node again must not duplicate the task.
        cp.borrow_mut().mark_node_failed(victim);
        assert_eq!(cp.borrow().repair_queue.len(), 1);
        assert_eq!(cp.borrow().repair_queue.stats.enqueued, 1);
    }

    #[test]
    fn commit_after_failure_enqueues_the_racing_write() {
        // The mid-write kill: placement predates the failure, commit
        // lands after it — the extent must still reach the queue.
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().mark_node_failed(p.data_chunks[1].node);
        assert!(cp.borrow().repair_queue.is_empty(), "nothing committed yet");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        assert_eq!(cp.borrow().repair_queue.len(), 1);
    }

    #[test]
    fn degraded_read_promotes_its_extent_to_the_front() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let a = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &a, 3 * 4096);
        let b = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &b, 3 * 4096);
        // Both extents share the failed node (same home rotation).
        cp.borrow_mut().mark_node_failed(a.data_chunks[0].node);
        assert_eq!(cp.borrow().repair_queue.len(), 2);
        assert_eq!(
            cp.borrow().repair_queue.peek(),
            Some(RepairTask { file: f.id, rec: 0 })
        );
        // A degraded read of the SECOND extent jumps it to the front.
        let _ = cp
            .borrow_mut()
            .resolve_read(f.id, 3 * 4096, 4096)
            .expect("degraded resolve");
        assert_eq!(
            cp.borrow().repair_queue.peek(),
            Some(RepairTask { file: f.id, rec: 1 }),
            "the extent a client is paying for moves first"
        );
        assert_eq!(cp.borrow().repair_queue.len(), 2, "promotion, not a dup");
    }

    #[test]
    fn plan_repair_fetches_k_survivors_and_allocates_spares() {
        let cp = ControlPlane::new(7, vec![4, 5, 6, 7, 8, 9]);
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        let victim = p.data_chunks[1].node;
        cp.borrow_mut().mark_node_failed(victim);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        let plan = cp.borrow_mut().plan_repair(task).expect("plan");
        let RepairPlan::EcRebuild {
            scheme,
            chunk_len,
            fetch,
            rebuild,
        } = plan
        else {
            panic!("EC extent plans a rebuild, got {plan:?}");
        };
        assert_eq!((scheme.k, scheme.m), (3, 2));
        assert_eq!(chunk_len, 4096);
        assert_eq!(fetch.len(), 3, "exactly k survivors fetched");
        assert!(fetch.iter().all(|(_, c)| c.node != victim));
        assert_eq!(rebuild.len(), 1);
        let (slot, spare) = rebuild[0];
        assert_eq!(slot, 1, "the failed data shard's index");
        assert_ne!(spare.node, victim);
        let stripe_nodes: Vec<u32> = p
            .data_chunks
            .iter()
            .chain(&p.parities)
            .map(|c| c.node)
            .collect();
        assert!(
            !stripe_nodes.contains(&spare.node),
            "spare must be a new failure domain"
        );
        // Commit re-homes the shard; the extent then resolves direct even
        // though the original node is still failed.
        let g0 = cp.borrow().extent_generation(f.id);
        cp.borrow_mut()
            .commit_repair(task, &[(slot, spare)], 1)
            .expect("commit");
        assert_eq!(cp.borrow().extent_generation(f.id), g0 + 1);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 3 * 4096)
            .expect("resolve");
        assert_eq!(plan.degraded_stripes, 0, "re-homed: no reconstruction");
    }

    #[test]
    fn plan_repair_typed_errors_for_unrepairable_extents() {
        // Plain extent: no redundancy to rebuild from.
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.primary.node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        assert_eq!(
            cp.borrow_mut().plan_repair(task).unwrap_err(),
            MetaError::DataUnavailable {
                node: p.primary.node
            }
        );
        // EC with more than m failures: lost.
        let cp = ControlPlane::new(7, vec![4, 5, 6, 7, 8, 9]);
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        for c in p.data_chunks.iter().take(3) {
            cp.borrow_mut().mark_node_failed(c.node);
        }
        let task = cp.borrow_mut().pop_repair().expect("queued");
        assert!(matches!(
            cp.borrow_mut().plan_repair(task).unwrap_err(),
            MetaError::TooManyFailures { .. }
        ));
        // RS(3,2) on exactly 5 nodes: one failure leaves no spare domain.
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        cp.borrow_mut().mark_node_failed(p.data_chunks[0].node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        assert_eq!(
            cp.borrow_mut().plan_repair(task).unwrap_err(),
            MetaError::NoSpareNode
        );
    }

    #[test]
    fn recovery_reconciliation_drops_obsolete_tasks_and_readopts() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        cp.borrow_mut().mark_node_recovered(p.replicas[0].node);
        // Reconciliation re-adopts the node's still-current replica and
        // drops the now-obsolete task instead of burning a repair
        // attempt on an extent that is whole again.
        assert_eq!(cp.borrow_mut().pop_repair(), None, "task dropped");
        let stats = cp.borrow().repair_queue.stats;
        assert_eq!(stats.dropped_on_recovery, 1);
        assert!(stats.shards_readopted >= 1);
    }

    #[test]
    fn commit_onto_a_freshly_failed_spare_requeues_the_extent() {
        // The spare dies while the repair's data movement is in flight:
        // the failure scan ran before the rehome, so the commit itself
        // must notice and put the extent back on the queue.
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 2,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        let plan = cp.borrow_mut().plan_repair(task).expect("plan");
        let RepairPlan::ReplicaClone { dest, .. } = plan else {
            panic!("clone plan");
        };
        // The chosen spare fails before the commit lands.
        cp.borrow_mut().mark_node_failed(dest[0].1.node);
        cp.borrow_mut()
            .commit_repair(task, &dest, 1)
            .expect("commit");
        assert!(
            cp.borrow().repair_queue.contains(task),
            "extent re-enqueued: it still references a failed node"
        );
    }

    #[test]
    fn replicated_repair_plans_clone_from_survivor() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 8192).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 8192);
        cp.borrow_mut().mark_node_failed(p.replicas[1].node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        let plan = cp.borrow_mut().plan_repair(task).expect("plan");
        let RepairPlan::ReplicaClone { len, src, dest } = plan else {
            panic!("replicated extent plans a clone");
        };
        assert_eq!(len, 8192);
        assert!(src.node != p.replicas[1].node);
        assert_eq!(dest.len(), 1);
        assert_eq!(dest[0].0, 1, "the lost replica slot");
        let replica_nodes: Vec<u32> = p.replicas.iter().map(|c| c.node).collect();
        assert!(!replica_nodes.contains(&dest[0].1.node));
    }

    #[test]
    fn unlink_drops_placement_state() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        assert!(cp.borrow().lookup(f.id).is_ok());
        cp.borrow_mut().unlink("/d/f", 1).expect("unlink");
        assert_eq!(
            cp.borrow().lookup(f.id).unwrap_err(),
            MetaError::UnknownFile(f.id)
        );
        assert!(cp.borrow_mut().place_write(f.id, 64).is_err());
    }

    // ---- sharded-plane tests ----

    fn sharded(n: usize) -> SharedControl {
        ControlPlane::new_sharded(7, vec![4, 5, 6, 7, 8], n)
    }

    #[test]
    fn sharded_plane_behaves_like_single_shard() {
        // The tentpole invariant: behavior is shard-count-invariant —
        // the same op sequence yields the same observable state at 1
        // and 4 shards.
        for n in [1usize, 4] {
            let cp = sharded(n);
            cp.borrow_mut().mkdir_p("/a/b", 0).expect("mkdir");
            let f = cp
                .borrow_mut()
                .create_file_at("/a/b/f", LayoutSpec::striped(2, 4096), FilePolicy::Plain)
                .expect("create");
            let p = cp.borrow_mut().place_write(f.id, 2 * 4096).expect("place");
            cp.borrow_mut().commit_write(f.id, &p, 2 * 4096);
            assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 2 * 4096);
            let plan = cp
                .borrow_mut()
                .resolve_read(f.id, 0, 2 * 4096)
                .expect("resolve");
            assert_eq!(plan.len, 2 * 4096, "shards={n}");
            cp.borrow_mut().rename("/a/b/f", "/a/g", 1).expect("rename");
            assert_eq!(
                cp.borrow_mut().lookup_path("/a/g").expect("moved").ino,
                f.id
            );
            cp.borrow_mut().unlink("/a/g", 2).expect("unlink");
            assert!(cp.borrow().lookup(f.id).is_err());
        }
    }

    #[test]
    fn mutations_land_in_the_owning_shards_op_log() {
        let cp = sharded(4);
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        cp.borrow_mut()
            .create_file_at("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let total: usize = cp.borrow().shard_log_lens().iter().sum();
        assert!(total >= 2, "mkdir + create each logged, got {total}");
        let stats = cp.borrow().shard_stats();
        let muts: u64 = stats.iter().map(|s| s.mutations).sum();
        assert!(muts >= 2, "routed mutations counted, got {muts}");
    }

    #[test]
    fn cross_shard_rename_commits_two_phase() {
        let cp = sharded(4);
        cp.borrow_mut().mkdir_p("/a", 0).expect("mkdir");
        cp.borrow_mut().mkdir_p("/b", 0).expect("mkdir");
        // Create files until one lands with from-parent and to-parent on
        // different shards (ino allocation is deterministic, so this
        // terminates immediately in practice).
        let a_ino = cp.borrow().meta.ns.resolve("/a").expect("a");
        let b_ino = cp.borrow().meta.ns.resolve("/b").expect("b");
        let (sa, sb) = (cp.borrow().shard_of(a_ino), cp.borrow().shard_of(b_ino));
        cp.borrow_mut()
            .create_file_at("/a/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        cp.borrow_mut().rename("/a/f", "/b/f", 1).expect("rename");
        assert!(cp.borrow_mut().lookup_path("/b/f").is_ok());
        if sa != sb {
            let txns: u64 = cp
                .borrow()
                .shard_stats()
                .iter()
                .map(|s| s.cross_shard_txns)
                .sum();
            assert_eq!(txns, 1, "one two-phase transaction coordinated");
            // Both participants hold Intent + Commit; recovery finds
            // nothing dangling.
            assert_eq!(cp.borrow_mut().recover_shards(), TxRecovery::default());
        }
    }

    #[test]
    fn crash_after_intent_rolls_back_and_leaves_namespace_untouched() {
        let cp = sharded(4);
        cp.borrow_mut().mkdir_p("/a", 0).expect("mkdir");
        cp.borrow_mut().mkdir_p("/b", 0).expect("mkdir");
        cp.borrow_mut()
            .create_file_at("/a/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let a_ino = cp.borrow().meta.ns.resolve("/a").expect("a");
        let b_ino = cp.borrow().meta.ns.resolve("/b").expect("b");
        if cp.borrow().shard_of(a_ino) == cp.borrow().shard_of(b_ino) {
            return; // single-participant rename: no transaction to kill
        }
        cp.borrow_mut().set_crash_point(CrashPoint::AfterIntent);
        assert_eq!(
            cp.borrow_mut().rename("/a/f", "/b/f", 1).unwrap_err(),
            MetaError::TxAborted
        );
        // The op never applied: source intact, destination absent.
        assert!(cp.borrow_mut().lookup_path("/a/f").is_ok());
        assert!(cp.borrow_mut().lookup_path("/b/f").is_err());
        let rec = cp.borrow_mut().recover_shards();
        assert_eq!(rec.rolled_back, 1);
        assert_eq!(rec.rolled_forward, 0);
        // Recovery is idempotent.
        assert_eq!(cp.borrow_mut().recover_shards(), TxRecovery::default());
        // And the namespace still works after recovery.
        cp.borrow_mut().rename("/a/f", "/b/f", 2).expect("rename");
        assert!(cp.borrow_mut().lookup_path("/b/f").is_ok());
    }

    #[test]
    fn crash_after_apply_rolls_forward() {
        let cp = sharded(4);
        cp.borrow_mut().mkdir_p("/a", 0).expect("mkdir");
        cp.borrow_mut().mkdir_p("/b", 0).expect("mkdir");
        cp.borrow_mut()
            .create_file_at("/a/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let a_ino = cp.borrow().meta.ns.resolve("/a").expect("a");
        let b_ino = cp.borrow().meta.ns.resolve("/b").expect("b");
        if cp.borrow().shard_of(a_ino) == cp.borrow().shard_of(b_ino) {
            return;
        }
        cp.borrow_mut().set_crash_point(CrashPoint::AfterApply);
        // The coordinator died before acking — the client sees an
        // aborted transaction, but the mutation is durably applied.
        assert_eq!(
            cp.borrow_mut().rename("/a/f", "/b/f", 1).unwrap_err(),
            MetaError::TxAborted
        );
        assert!(cp.borrow_mut().lookup_path("/b/f").is_ok());
        assert!(cp.borrow_mut().lookup_path("/a/f").is_err());
        let rec = cp.borrow_mut().recover_shards();
        assert_eq!(rec.rolled_forward, 1, "Applied witness → roll forward");
        assert_eq!(rec.rolled_back, 0);
        assert_eq!(cp.borrow_mut().recover_shards(), TxRecovery::default());
    }

    #[test]
    fn admission_serializes_ops_on_one_shard() {
        let cp = sharded(1);
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let w0 = cp.borrow_mut().admit_last(0);
        assert_eq!(w0, 0, "empty shard: no wait");
        // A second op at the same instant queues behind the first's
        // mutate_service occupancy.
        cp.borrow_mut().mkdir_p("/d2", 0).expect("mkdir");
        let w1 = cp.borrow_mut().admit_last(0);
        assert_eq!(
            w1,
            MetaCosts::default().mutate_service.ps(),
            "second op waits out the first's service time"
        );
        let stats = cp.borrow().shard_stats();
        assert_eq!(stats[0].queue_wait_ps, w1);
        // With no routed op pending, admit is a no-op.
        assert_eq!(cp.borrow_mut().admit_last(0), 0);
    }

    #[test]
    fn overwrite_churn_triggers_compaction_and_conserves_resolution() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/hot", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        // Overwrite the same 4 KiB range far past the compaction
        // threshold: all but the newest record are fully shadowed.
        for _ in 0..40 {
            let p = cp
                .borrow_mut()
                .place_write_at(f.id, 4096, 0)
                .expect("place");
            cp.borrow_mut().commit_write(f.id, &p, 4096);
        }
        let stats = cp.borrow().shard_stats();
        assert!(
            stats[0].compactions >= 1,
            "40 full overwrites must compact (threshold 32)"
        );
        assert!(stats[0].records_dropped >= 30);
        // The survivor still resolves the whole range directly.
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 4096)
            .expect("resolve");
        assert_eq!(plan.len, 4096);
        assert!(plan
            .pieces
            .iter()
            .all(|p| matches!(p, nadfs_meta::ReadPiece::Direct { .. })));
        // Hosted gauges track the drop: only the live records' bytes
        // remain (no storage stats attached here, but the live-extent
        // ledger must shrink).
        assert!(cp.borrow().live_extent_shards() < 40);
    }

    #[test]
    fn inflight_repair_blocks_compaction() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 2,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        assert_eq!(cp.borrow().inflight_repair_count(), 1);
        cp.borrow_mut().mark_node_recovered(p.replicas[0].node);
        // Queue is empty and no nodes are failed, but the popped task
        // still pins record indices.
        let hot = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        for _ in 0..40 {
            let w = cp
                .borrow_mut()
                .place_write_at(hot.id, 4096, 0)
                .expect("place");
            cp.borrow_mut().commit_write(hot.id, &w, 4096);
        }
        let compactions: u64 = cp
            .borrow()
            .shard_stats()
            .iter()
            .map(|s| s.compactions)
            .sum();
        assert_eq!(compactions, 0, "in-flight repair pins record indices");
        cp.borrow_mut().abandon_repair(task);
        assert_eq!(cp.borrow().inflight_repair_count(), 0);
        let w = cp
            .borrow_mut()
            .place_write_at(hot.id, 4096, 0)
            .expect("place");
        cp.borrow_mut().commit_write(hot.id, &w, 4096);
        let compactions: u64 = cp
            .borrow()
            .shard_stats()
            .iter()
            .map(|s| s.compactions)
            .sum();
        assert!(compactions >= 1, "released: compaction resumes");
    }
}
