//! Metadata shards, per-shard op logs, and the cross-shard transaction
//! protocol.
//!
//! Each shard owns the `FileMeta` / `ExtentMap` state for the inos the
//! [`super::router::ShardRouter`] maps to it, plus an append-only op log.
//! Mutations are *asynchronous* (AsyncFS-style): the owning shard appends
//! the mutation to its log and the client is acked after the append — the
//! in-memory apply and the cache-callback fan-out happen off the ack path.
//! The log is therefore the unit of durability, and (ROADMAP item 3) the
//! natural unit of replication for a per-shard consensus group.
//!
//! Operations whose participants span shards (rename across parent
//! directories, unlink whose parent and target hash apart) run a
//! two-phase intent/commit protocol: every participant logs an `Intent`,
//! the coordinator applies and logs `Applied`, then all participants log
//! `Commit`. [`super::ControlPlane::recover_shards`] replays the logs
//! after a crash: a dangling intent rolls forward iff some shard logged
//! `Applied`, and rolls back otherwise — exercised by the fault harness
//! via [`CrashPoint`].

use super::*;

/// A namespace mutation as recorded in a shard's op log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaMutation {
    Mkdir { ino: u64 },
    Create { ino: u64 },
    Rename { from: String, to: String },
    Unlink { ino: u64 },
    AttrFlush { ino: u64 },
    ExtentCommit { ino: u64, generation: u64 },
    RepairRehome { ino: u64, rec: usize },
}

/// One record in a shard's append-only op log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogEntry {
    /// A single-shard mutation: logged and acked, applied in place.
    Apply { op: MetaMutation },
    /// Cross-shard transaction phase 1: this shard is a participant.
    Intent { txid: u64, op: MetaMutation },
    /// Coordinator-only marker: the transaction's mutation has been
    /// applied to the namespace (the roll-forward witness).
    Applied { txid: u64 },
    /// Cross-shard transaction phase 2: the transaction is durable
    /// everywhere; recovery ignores it.
    Commit { txid: u64 },
    /// Recovery rolled the transaction back (no `Applied` witness).
    Abort { txid: u64 },
}

/// A shard's append-only mutation log.
#[derive(Debug, Default)]
pub struct OpLog {
    entries: Vec<LogEntry>,
}

impl OpLog {
    pub fn append(&mut self, e: LogEntry) {
        self.entries.push(e);
    }

    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Transaction ids with an `Intent` on this shard but no terminal
    /// `Commit`/`Abort` — what recovery has to resolve.
    pub fn dangling_intents(&self) -> Vec<u64> {
        let mut dangling: Vec<u64> = Vec::new();
        for e in &self.entries {
            match e {
                LogEntry::Intent { txid, .. } => dangling.push(*txid),
                LogEntry::Commit { txid } | LogEntry::Abort { txid } => {
                    dangling.retain(|t| t != txid);
                }
                _ => {}
            }
        }
        dangling
    }

    /// Whether this shard witnessed the apply of `txid` (coordinator).
    pub fn has_applied(&self, txid: u64) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e, LogEntry::Applied { txid: t } if *t == txid))
    }
}

/// Per-shard observable counters, exported as `meta.shard.N.*`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Every routed operation (mutations + resolves).
    pub ops: u64,
    /// Namespace/extent mutations routed here.
    pub mutations: u64,
    /// Read-side resolves routed here.
    pub resolves: u64,
    /// Total simulated time ops spent queued behind this shard
    /// (admission-control wait, picoseconds).
    pub queue_wait_ps: u64,
    /// Cross-shard transactions this shard coordinated.
    pub cross_shard_txns: u64,
    /// Extent-map compactions run on files this shard owns.
    pub compactions: u64,
    /// Fully-shadowed extent records dropped by those compactions.
    pub records_dropped: u64,
}

/// One metadata shard: the partition's file/extent state, its op log,
/// and the single-server queue the admission model charges against.
#[derive(Debug)]
pub struct MetaShard {
    pub id: usize,
    /// FileMeta for inos this shard owns.
    pub files: HashMap<u64, FileMeta>,
    /// Committed extent maps for files this shard owns.
    pub extents: HashMap<u64, ExtentMap>,
    /// The shard's append-only mutation log.
    pub log: OpLog,
    /// When this shard next becomes free (simulated ps) — the
    /// single-server queue behind which routed ops wait.
    pub busy_until_ps: u64,
    pub stats: ShardStats,
    /// Per-file compaction watermark: the map length after the last
    /// compaction, so the next one only triggers after real growth.
    pub compact_floor: HashMap<u64, usize>,
}

impl MetaShard {
    pub fn new(id: usize) -> MetaShard {
        MetaShard {
            id,
            files: HashMap::new(),
            extents: HashMap::new(),
            log: OpLog::default(),
            busy_until_ps: 0,
            stats: ShardStats::default(),
            compact_floor: HashMap::new(),
        }
    }
}

/// Which service-time bucket a routed op occupies its shard for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceClass {
    Mutation,
    Resolve,
}

/// Deterministic mid-transaction kill switch for the fault harness: the
/// next cross-shard transaction dies at the given point (the switch
/// clears itself — one kill per arm).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after every participant logged `Intent`, before the apply:
    /// recovery must roll the transaction back.
    AfterIntent,
    /// Die after the apply and the coordinator's `Applied` record,
    /// before any `Commit`: recovery must roll the transaction forward.
    AfterApply,
}

/// What [`ControlPlane::recover_shards`] did with the dangling intents
/// it found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxRecovery {
    pub rolled_forward: u64,
    pub rolled_back: u64,
}

impl ControlPlane {
    /// Arm the deterministic crash switch: the next cross-shard
    /// transaction dies at `point` (and disarms it).
    pub fn set_crash_point(&mut self, point: CrashPoint) {
        self.crash_point = Some(point);
    }

    /// Admission control for the most recent routed operation: charge
    /// the queueing delay of its shard and occupy the shard for the
    /// op's service time. Returns the wait (ps) the caller must add to
    /// the op's completion latency. Callers that never admit (direct
    /// test drivers) simply skip the queueing model — state effects are
    /// identical either way.
    pub fn admit_last(&mut self, now_ps: u64) -> u64 {
        let Some((shard, class)) = self.last_route.take() else {
            return 0;
        };
        let service_ps = match class {
            ServiceClass::Mutation => self.service_costs.mutate_service.ps(),
            ServiceClass::Resolve => self.service_costs.resolve_service.ps(),
        };
        let sh = &mut self.shards[shard];
        let wait = sh.busy_until_ps.saturating_sub(now_ps);
        sh.busy_until_ps = now_ps + wait + service_ps;
        sh.stats.queue_wait_ps += wait;
        wait
    }

    /// Record that a public op was routed to `shard` (stats + the
    /// admission hook's target).
    pub(super) fn note_route(&mut self, shard: usize, class: ServiceClass) {
        let st = &mut self.shards[shard].stats;
        st.ops += 1;
        match class {
            ServiceClass::Mutation => st.mutations += 1,
            ServiceClass::Resolve => st.resolves += 1,
        }
        self.last_route = Some((shard, class));
    }

    /// Log a single-shard mutation on `shard` (the async-ack point).
    pub(super) fn log_apply(&mut self, shard: usize, op: MetaMutation) {
        self.shards[shard].log.append(LogEntry::Apply { op });
    }

    pub(super) fn alloc_txid(&mut self) -> u64 {
        let t = self.next_txid;
        self.next_txid += 1;
        t
    }

    /// Phase 1 of a cross-shard transaction: log `Intent` on every
    /// participant. Returns `Err(TxAborted)` if the armed crash point
    /// kills the coordinator here (namespace untouched; recovery will
    /// roll back).
    pub(super) fn tx_intent(
        &mut self,
        txid: u64,
        participants: &[usize],
        op: MetaMutation,
    ) -> Result<(), MetaError> {
        for &s in participants {
            self.shards[s].log.append(LogEntry::Intent {
                txid,
                op: op.clone(),
            });
        }
        if self.crash_point == Some(CrashPoint::AfterIntent) {
            self.crash_point = None;
            return Err(MetaError::TxAborted);
        }
        Ok(())
    }

    /// Phase 2: the coordinator witnessed the apply. Returns
    /// `Err(TxAborted)` if the armed crash point kills the coordinator
    /// here (mutation applied but unacked; recovery rolls forward).
    pub(super) fn tx_applied(&mut self, txid: u64, coordinator: usize) -> Result<(), MetaError> {
        self.shards[coordinator]
            .log
            .append(LogEntry::Applied { txid });
        if self.crash_point == Some(CrashPoint::AfterApply) {
            self.crash_point = None;
            return Err(MetaError::TxAborted);
        }
        Ok(())
    }

    /// Phase 3: commit everywhere; the coordinator counts the
    /// transaction.
    pub(super) fn tx_commit(&mut self, txid: u64, participants: &[usize], coordinator: usize) {
        for &s in participants {
            self.shards[s].log.append(LogEntry::Commit { txid });
        }
        self.shards[coordinator].stats.cross_shard_txns += 1;
    }

    /// Crash recovery for the shard logs: resolve every dangling intent.
    /// A transaction some shard witnessed as `Applied` rolls forward
    /// (append the missing `Commit`s); one with no witness rolls back
    /// (append `Abort`s — the namespace mutation never happened, per
    /// the intent-before-apply protocol order).
    pub fn recover_shards(&mut self) -> TxRecovery {
        let mut dangling: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.log.dangling_intents())
            .collect();
        dangling.sort_unstable();
        dangling.dedup();
        let mut rec = TxRecovery::default();
        for txid in dangling {
            let applied = self.shards.iter().any(|s| s.log.has_applied(txid));
            for s in &mut self.shards {
                if s.log.dangling_intents().contains(&txid) {
                    s.log.append(if applied {
                        LogEntry::Commit { txid }
                    } else {
                        LogEntry::Abort { txid }
                    });
                }
            }
            if applied {
                rec.rolled_forward += 1;
            } else {
                rec.rolled_back += 1;
            }
        }
        rec
    }

    /// Per-shard stats snapshot (index = shard id).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Per-shard op-log lengths (index = shard id).
    pub fn shard_log_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.log.len()).collect()
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}
