//! Read-side resolution: extent-map walks, the sequential-scan detector,
//! and quiescent-time extent-map compaction.

use super::*;

/// Don't bother compacting tiny maps: below this many records the walk
/// is cheap and the churn isn't worth the generation bump.
const COMPACT_MIN: usize = 32;

impl ControlPlane {
    /// Resolve a ranged read into fetchable pieces: clamp to the
    /// committed size (short reads past EOF, like `pread`), then walk
    /// the extent map routing around failed nodes. Any stripe the plan
    /// serves through degraded reconstruction is promoted to the front of
    /// the repair queue — the client is paying for that extent right now.
    /// Counts one control round-trip in the metadata ledger (the RPC a
    /// client read cache absorbs).
    pub fn resolve_read(
        &mut self,
        file: u64,
        offset: u64,
        len: u32,
    ) -> Result<ReadPlan, MetaError> {
        let meta = self.lookup(file)?;
        // Saturate: `offset + len` can exceed u64::MAX (a hostile or
        // buggy offset) — the overflow would panic in debug builds and
        // wrap in release, turning an out-of-range read into a bogus
        // plan. Saturating yields `end == size`, hence a clean
        // zero-length short read.
        let end = offset.saturating_add(len as u64).min(meta.size);
        let clamped = end.saturating_sub(offset) as u32;
        self.meta.stats.resolves += 1;
        self.note_route(self.shard_of(file), ServiceClass::Resolve);
        let plan = match self.extent_map(file) {
            Some(map) => map.resolve(offset, clamped, &self.failed_nodes),
            // Nothing committed yet: the whole (clamped) range is a hole.
            None => ExtentMap::new().resolve(offset, clamped, &self.failed_nodes),
        }?;
        for piece in &plan.pieces {
            if let ReadPiece::Degraded { rec, .. } = piece {
                self.repair_queue.promote(RepairTask { file, rec: *rec });
            }
        }
        // Sequential-scan detector over resolve traffic: two back-to-back
        // resolves of the same file advertise the region ahead of the
        // reader to every subscribed read cache (including other clients,
        // which is where an advisory beats purely local detection).
        if clamped > 0 {
            let entry = self.scan_tracker.entry(file).or_insert((0, 0));
            let sequential = entry.1 > 0 && offset == entry.0;
            entry.1 = if sequential { entry.1 + 1 } else { 1 };
            entry.0 = end;
            if sequential && entry.1 >= 3 {
                let hint_len = (clamped as u64 * 4).min(1 << 20) as u32;
                self.meta.note_prefetch_hint(file, end, hint_len);
                self.publish_invalidations();
            }
        }
        Ok(plan)
    }

    /// The extent-map generation of `file` (bumped by commits, repair
    /// re-homing, and compaction; 0 before the first commit).
    pub fn extent_generation(&self, file: u64) -> u64 {
        self.extent_map(file).map_or(0, |m| m.generation())
    }

    /// Bytes the extent maps currently place across the cluster — the
    /// conservation target for the hosted gauges: at any point,
    /// `sum(bytes_hosted) == live_extent_bytes()`.
    pub fn live_extent_bytes(&self) -> u64 {
        self.all_extent_maps()
            .flat_map(|(_, m)| m.records())
            .map(|r| r.shard_len() as u64 * r.shard_coords().len() as u64)
            .sum()
    }

    /// Shards the extent maps currently place across the cluster — the
    /// conservation target for the `chunks_hosted` gauges.
    pub fn live_extent_shards(&self) -> u64 {
        self.all_extent_maps()
            .flat_map(|(_, m)| m.records())
            .map(|r| r.shard_coords().len() as u64)
            .sum()
    }

    /// Compact `file`'s extent map if it has grown enough and the
    /// cluster is quiescent. `RepairTask.rec` and `ReadPiece::Degraded`
    /// hold *positional* record indices, so compaction only runs when
    /// nothing can be holding one: no failed nodes, an empty repair
    /// queue, and no popped-but-uncommitted repair in flight. Dropped
    /// records leave the hosted gauges (their bytes stopped being
    /// referenced), and the generation bump rides the same
    /// `LayoutChanged` callback as a commit so read caches drop stale
    /// plans.
    pub(super) fn maybe_compact(&mut self, file: u64) {
        if !self.failed_nodes.is_empty()
            || !self.repair_queue.is_empty()
            || !self.inflight_repairs.is_empty()
        {
            return;
        }
        let shard = self.shard_of(file);
        let floor = self.shards[shard]
            .compact_floor
            .get(&file)
            .copied()
            .unwrap_or(0);
        let threshold = COMPACT_MIN.max(2 * floor);
        let Some(map) = self.shards[shard].extents.get_mut(&file) else {
            return;
        };
        if map.len() < threshold {
            return;
        }
        let before: Vec<ExtentRecord> = map.records().to_vec();
        let result = map.compact();
        let new_len = map.len();
        let generation = map.generation();
        self.shards[shard].compact_floor.insert(file, new_len);
        if result.dropped == 0 {
            return;
        }
        self.shards[shard].stats.compactions += 1;
        self.shards[shard].stats.records_dropped += result.dropped as u64;
        for (i, slot) in result.remap.iter().enumerate() {
            if slot.is_none() {
                let rec = before[i].clone();
                self.unhost_record(&rec);
            }
        }
        self.meta.note_extent_commit(file, generation);
        self.publish_invalidations();
    }
}
