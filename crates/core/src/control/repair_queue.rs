//! Background re-protection: the repair queue, repair planning, and the
//! failure/recovery reconciliation that feeds it.

use super::*;

/// One extent awaiting re-protection: a record of `file`'s extent map
/// with at least one shard on a failed node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RepairTask {
    pub file: u64,
    /// Record id within the file's extent map (commit order).
    pub rec: usize,
}

/// Observable repair-pipeline counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RepairStats {
    /// Tasks ever enqueued (dedup hits not counted).
    pub enqueued: u64,
    /// Tasks moved to (or inserted at) the queue front by a degraded
    /// read hit.
    pub promoted: u64,
    /// Repairs committed into extent maps.
    pub committed: u64,
    /// Tasks pushed back for another attempt after a transient failure.
    pub requeued: u64,
    /// Shards re-homed by committed repairs.
    pub shards_rehomed: u64,
    /// Tasks dropped by node-recovery reconciliation: their extent no
    /// longer references any failed node, so repairing them would be a
    /// no-op walk of the queue.
    pub dropped_on_recovery: u64,
    /// Shards re-adopted at recovery: still current in the extent map
    /// (never re-homed during the outage), so the recovered node's copy
    /// is live data again, not garbage.
    pub shards_readopted: u64,
}

/// The prioritized repair queue: FIFO for failure-scan enqueues, with
/// degraded-read hits promoting their extent to the front (the extent a
/// client is actively paying reconstruction for is the one to fix first).
/// Membership is deduplicated — an extent is queued at most once.
#[derive(Debug, Default)]
pub struct RepairQueue {
    q: VecDeque<RepairTask>,
    queued: HashSet<RepairTask>,
    pub stats: RepairStats,
}

impl RepairQueue {
    /// Enqueue at the back; returns false if already queued.
    pub fn push_back(&mut self, t: RepairTask) -> bool {
        if !self.queued.insert(t) {
            return false;
        }
        self.q.push_back(t);
        self.stats.enqueued += 1;
        true
    }

    /// Move `t` to the front (inserting it if absent): the degraded-read
    /// promotion path.
    pub fn promote(&mut self, t: RepairTask) {
        if self.queued.insert(t) {
            self.stats.enqueued += 1;
        } else if let Some(i) = self.q.iter().position(|&x| x == t) {
            if i == 0 {
                return; // already at the front; not a promotion
            }
            self.q.remove(i);
        }
        self.q.push_front(t);
        self.stats.promoted += 1;
    }

    /// Take the highest-priority task.
    pub fn pop(&mut self) -> Option<RepairTask> {
        let t = self.q.pop_front()?;
        self.queued.remove(&t);
        Some(t)
    }

    pub fn peek(&self) -> Option<RepairTask> {
        self.q.front().copied()
    }

    pub fn contains(&self, t: RepairTask) -> bool {
        self.queued.contains(&t)
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Drop every queued task `keep` rejects (preserving order for the
    /// rest), rebuild the dedup set, and return how many were dropped.
    /// Recovery reconciliation uses this to purge tasks made obsolete by
    /// a node coming back.
    pub fn retain_tasks(&mut self, mut keep: impl FnMut(&RepairTask) -> bool) -> u64 {
        let before = self.q.len();
        self.q.retain(|t| keep(t));
        self.queued = self.q.iter().copied().collect();
        (before - self.q.len()) as u64
    }
}

/// How one popped [`RepairTask`] gets executed on the data path.
#[derive(Clone, Debug)]
pub enum RepairPlan {
    /// Every shard is on a healthy node (the failure was transient, or an
    /// earlier repair already re-homed it): nothing to move.
    AlreadyHealthy,
    /// Erasure-coded stripe: fetch the k surviving shards in `fetch`
    /// (shard index, coordinate), reconstruct the shards in `rebuild`
    /// (data or parity), and write each to its pre-allocated spare
    /// coordinate.
    EcRebuild {
        scheme: RsScheme,
        chunk_len: u32,
        fetch: Vec<(usize, ReplicaCoord)>,
        rebuild: Vec<(usize, ReplicaCoord)>,
    },
    /// Replicated extent: copy `len` bytes from the surviving `src`
    /// replica to a spare coordinate per lost replica slot.
    ReplicaClone {
        len: u32,
        src: ReplicaCoord,
        dest: Vec<(usize, ReplicaCoord)>,
    },
}

impl RepairPlan {
    /// The (shard slot, spare coordinate) rewrites this plan commits once
    /// the data movement succeeds.
    pub fn replacements(&self) -> Vec<(usize, ReplicaCoord)> {
        match self {
            RepairPlan::AlreadyHealthy => vec![],
            RepairPlan::EcRebuild { rebuild, .. } => rebuild.clone(),
            RepairPlan::ReplicaClone { dest, .. } => dest.clone(),
        }
    }
}

impl ControlPlane {
    /// Mark a storage node failed: reads route around it (replica
    /// failover, degraded EC reconstruction), and every committed extent
    /// with a shard on the node is enqueued for background re-protection.
    pub fn mark_node_failed(&mut self, node: u32) {
        if !self.failed_nodes.insert(node) {
            return; // already failed; extents are already queued
        }
        // The extent tables are HashMaps spread over metadata shards;
        // enqueue in sorted (file, rec) order so the repair queue — and
        // everything downstream of it (placement, bandwidth throttling
        // cut points) — is identical across runs with the same seed,
        // regardless of the shard count.
        let mut tasks: Vec<RepairTask> = Vec::new();
        for shard in &self.shards {
            for (&file, map) in &shard.extents {
                for rec in map.affected_records(node) {
                    tasks.push(RepairTask { file, rec });
                }
            }
        }
        tasks.sort_unstable_by_key(|t| (t.file, t.rec));
        for t in tasks {
            self.repair_queue.push_back(t);
        }
    }

    /// Bring a storage node back and reconcile its state with what
    /// changed while it was down. Un-failing alone would leak: repairs
    /// re-homed shards away and unlinks dropped whole files during the
    /// outage, so the node comes back holding copies the metadata no
    /// longer references. Reconciliation:
    ///
    /// 1. garbage-collects those stale copies (the orphan ledger built up
    ///    at re-home/unlink time) into the node's reclaim counters,
    /// 2. re-adopts shards still current in the extent map — they are
    ///    live data again and keep their place in the hosted gauges,
    /// 3. drops repair-queue tasks made obsolete by the recovery (their
    ///    extent no longer references any failed node).
    pub fn mark_node_recovered(&mut self, node: u32) {
        if !self.failed_nodes.remove(&node) {
            return; // not failed; nothing to reconcile
        }
        if let Some(led) = self.orphaned.remove(&node) {
            if let Some(stats) = self.node_stats(node) {
                let mut s = stats.borrow_mut();
                s.stale_chunks_reclaimed += led.chunks;
                s.stale_bytes_reclaimed += led.bytes;
            }
        }
        let readopted: u64 = self
            .all_extent_maps()
            .flat_map(|(_, m)| m.records())
            .map(|r| {
                r.shard_coords()
                    .iter()
                    .filter(|(_, c)| c.node == node)
                    .count() as u64
            })
            .sum();
        self.repair_queue.stats.shards_readopted += readopted;
        let shards = &self.shards;
        let router = &self.router;
        let failed = &self.failed_nodes;
        let dropped = self.repair_queue.retain_tasks(|t| {
            shards[router.route(t.file)]
                .extents
                .get(&t.file)
                .and_then(|m| m.records().get(t.rec))
                .is_some_and(|r| failed.iter().any(|&n| r.references_node(n)))
        });
        self.repair_queue.stats.dropped_on_recovery += dropped;
    }

    pub fn failed_nodes(&self) -> &HashSet<u32> {
        &self.failed_nodes
    }

    /// Pick a spare node for a repair placement: healthy, not already
    /// hosting a shard of the extent, rotating so consecutive repairs
    /// spread. `None` when the cluster has no eligible node.
    fn choose_spare(&mut self, exclude: &HashSet<u32>) -> Option<NodeId> {
        let n = self.storage_nodes.len();
        for i in 0..n {
            let node = self.storage_nodes[(self.next_spare + i) % n];
            let id = node as u32;
            if !self.failed_nodes.contains(&id) && !exclude.contains(&id) {
                self.next_spare = (self.next_spare + i + 1) % n;
                return Some(node);
            }
        }
        None
    }

    fn count_repair_placement(&mut self, node: u32) {
        if let Some(i) = self.storage_nodes.iter().position(|&n| n as u32 == node) {
            if let Some(stats) = self.storage_stats.get(i) {
                stats.borrow_mut().repair_chunks_hosted += 1;
            }
        }
    }

    /// Stale copies currently stranded on `node` as `(chunks, bytes)` —
    /// nonzero only while the node is failed.
    pub fn orphaned_on(&self, node: u32) -> (u64, u64) {
        let led = self.orphaned.get(&node).copied().unwrap_or_default();
        (led.chunks, led.bytes)
    }

    /// Plan the repair of one queued extent: which surviving shards to
    /// fetch, which shards to rebuild, and the spare coordinates (freshly
    /// allocated here) the re-protected data will live at. Unrepairable
    /// extents are typed errors: a plain extent on a failed node has no
    /// redundancy ([`MetaError::DataUnavailable`]), an EC stripe with
    /// fewer than k survivors is lost ([`MetaError::TooManyFailures`]),
    /// and a cluster with every healthy node already holding a shard has
    /// nowhere to re-protect to ([`MetaError::NoSpareNode`]).
    pub fn plan_repair(&mut self, task: RepairTask) -> Result<RepairPlan, MetaError> {
        let record = self
            .extent_map(task.file)
            .and_then(|m| m.records().get(task.rec))
            .ok_or(MetaError::UnknownFile(task.file))?
            .clone();
        let failed = self.failed_nodes.clone();
        match record {
            ExtentRecord::Plain { coord, .. } => {
                if failed.contains(&coord.node) {
                    Err(MetaError::DataUnavailable { node: coord.node })
                } else {
                    Ok(RepairPlan::AlreadyHealthy)
                }
            }
            ExtentRecord::Replicated { len, replicas, .. } => {
                let missing: Vec<usize> = replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| failed.contains(&c.node))
                    .map(|(i, _)| i)
                    .collect();
                if missing.is_empty() {
                    return Ok(RepairPlan::AlreadyHealthy);
                }
                let Some(src) = replicas.iter().find(|c| !failed.contains(&c.node)) else {
                    return Err(MetaError::DataUnavailable {
                        node: replicas.first().map_or(0, |c| c.node),
                    });
                };
                let mut in_use: HashSet<u32> = replicas
                    .iter()
                    .filter(|c| !failed.contains(&c.node))
                    .map(|c| c.node)
                    .collect();
                let mut dest = Vec::with_capacity(missing.len());
                for slot in missing {
                    let node = self.choose_spare(&in_use).ok_or(MetaError::NoSpareNode)?;
                    in_use.insert(node as u32);
                    let addr = self.alloc_on(node, len.max(1) as u64);
                    dest.push((
                        slot,
                        ReplicaCoord {
                            node: node as u32,
                            addr,
                        },
                    ));
                }
                Ok(RepairPlan::ReplicaClone {
                    len,
                    src: *src,
                    dest,
                })
            }
            ExtentRecord::Ec {
                offset,
                chunk_len,
                scheme,
                data,
                parities,
                ..
            } => {
                let k = scheme.k as usize;
                let shards: Vec<ReplicaCoord> = data.iter().chain(&parities).copied().collect();
                let missing: Vec<usize> = shards
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| failed.contains(&c.node))
                    .map(|(i, _)| i)
                    .collect();
                if missing.is_empty() {
                    return Ok(RepairPlan::AlreadyHealthy);
                }
                let fetch: Vec<(usize, ReplicaCoord)> = shards
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !failed.contains(&c.node))
                    .map(|(i, c)| (i, *c))
                    .take(k)
                    .collect();
                if fetch.len() < k {
                    return Err(MetaError::TooManyFailures {
                        stripe_offset: offset,
                    });
                }
                let mut in_use: HashSet<u32> = shards
                    .iter()
                    .filter(|c| !failed.contains(&c.node))
                    .map(|c| c.node)
                    .collect();
                let mut rebuild = Vec::with_capacity(missing.len());
                for slot in missing {
                    let node = self.choose_spare(&in_use).ok_or(MetaError::NoSpareNode)?;
                    in_use.insert(node as u32);
                    // Parity spares keep the (1 + k)-slot staging region
                    // the INEC firmware path expects for this address
                    // range, matching the original placement.
                    let span = if slot >= k {
                        chunk_len as u64 * (1 + k as u64)
                    } else {
                        chunk_len as u64
                    };
                    let addr = self.alloc_on(node, span.max(1));
                    rebuild.push((
                        slot,
                        ReplicaCoord {
                            node: node as u32,
                            addr,
                        },
                    ));
                }
                Ok(RepairPlan::EcRebuild {
                    scheme,
                    chunk_len,
                    fetch,
                    rebuild,
                })
            }
        }
    }

    /// Commit a finished repair: rewrite the extent's shard coordinates
    /// to the spare locations, bump the map generation, and invalidate
    /// client caches through the namespace's version/callback machinery
    /// (the same channel every other metadata mutation rides).
    pub fn commit_repair(
        &mut self,
        task: RepairTask,
        replacements: &[(usize, ReplicaCoord)],
        now_ns: u64,
    ) -> Result<(), MetaError> {
        // The task is leaving the pipeline whether the commit lands or
        // errors out below — either way it stops blocking compaction.
        self.inflight_repairs.remove(&task);
        let shard = self.shard_of(task.file);
        let map = self.shards[shard]
            .extents
            .get_mut(&task.file)
            .ok_or(MetaError::UnknownFile(task.file))?;
        // Snapshot the coordinates being replaced BEFORE the rehome
        // rewrites them: those copies stop being live data the moment the
        // map points elsewhere, and the ones on failed nodes become
        // orphans to reclaim at recovery.
        let (old_coords, shard_bytes) = {
            let rec = map.records().get(task.rec).ok_or(MetaError::NotFound)?;
            let coords = rec.shard_coords();
            let old: Vec<ReplicaCoord> = replacements
                .iter()
                .filter_map(|&(slot, _)| coords.iter().find(|(s, _)| *s == slot).map(|&(_, c)| c))
                .collect();
            (old, rec.shard_len() as u64)
        };
        map.rehome(task.rec, replacements)?;
        let generation = map.generation();
        self.log_apply(
            shard,
            MetaMutation::RepairRehome {
                ino: task.file,
                rec: task.rec,
            },
        );
        self.repair_queue.stats.committed += 1;
        self.repair_queue.stats.shards_rehomed += replacements.len() as u64;
        for &(_, coord) in replacements {
            self.count_repair_placement(coord.node);
            self.hosted_add(coord.node, shard_bytes);
        }
        for coord in old_coords {
            self.hosted_sub(coord.node, shard_bytes);
            if self.failed_nodes.contains(&coord.node) {
                self.orphan_add(coord.node, shard_bytes);
            }
        }
        // A spare can itself fail while the repair's data movement is in
        // flight; the failure scan ran before this rehome so it could not
        // see the new coordinates. Re-enqueue the extent — especially for
        // replicated records, which fail over silently and would
        // otherwise run with reduced redundancy forever.
        if replacements
            .iter()
            .any(|(_, c)| self.failed_nodes.contains(&c.node))
        {
            self.repair_queue.push_back(task);
        }
        self.meta.note_layout_change(task.file, generation, now_ns);
        self.publish_invalidations();
        Ok(())
    }

    /// Take the next repair task (highest priority first). The task is
    /// in flight — compaction holds off until it commits, is requeued,
    /// or is abandoned (its `rec` is a positional index into the file's
    /// extent map, which compaction would shift).
    pub fn pop_repair(&mut self) -> Option<RepairTask> {
        let t = self.repair_queue.pop()?;
        self.inflight_repairs.insert(t);
        Some(t)
    }

    /// Put a task back for another attempt after a transient failure.
    pub fn requeue_repair(&mut self, task: RepairTask) {
        self.inflight_repairs.remove(&task);
        if self.repair_queue.push_back(task) {
            self.repair_queue.stats.requeued += 1;
        }
    }

    /// A popped task is leaving the pipeline without a commit (planning
    /// error, already healthy, retry budget exhausted): release its
    /// in-flight claim so compaction can run again.
    pub fn abandon_repair(&mut self, task: RepairTask) {
        self.inflight_repairs.remove(&task);
    }

    /// Tasks popped but not yet committed/requeued/abandoned.
    pub fn inflight_repair_count(&self) -> usize {
        self.inflight_repairs.len()
    }
}
