//! Write placement and commit: where every byte (and parity) goes, plus
//! the hosted-capacity ledgers that track what each storage node holds.

use super::*;

/// How a placement relates to the file's cursor.
#[derive(Clone, Copy, Debug)]
pub(super) enum PlaceMode {
    /// Append at the cursor (the cursor advances by `len`).
    Append,
    /// Explicit offset; the cursor advances only past `offset + len`.
    At(u64),
    /// Busy-retry re-placement at the original offset; no cursor motion.
    Retry(u64),
}

impl ControlPlane {
    pub(super) fn home_of(&self, layout: &StripedLayout) -> usize {
        self.storage_nodes
            .iter()
            .position(|&n| n as u32 == layout.nodes[0])
            .expect("layout node")
    }

    pub(super) fn alloc_on(&mut self, node: NodeId, len: u64) -> u64 {
        let a = self.next_addr.get_mut(&node).expect("storage node");
        let addr = *a;
        // Page-align so concurrent placements never overlap.
        *a += len.div_ceil(4096).max(1) * 4096;
        addr
    }

    fn count_stripe_placement(&mut self, node: NodeId) {
        if self.storage_stats.is_empty() {
            return;
        }
        if let Some(i) = self.storage_nodes.iter().position(|&n| n == node) {
            self.storage_stats[i].borrow_mut().stripe_chunks_placed += 1;
        }
    }

    /// Allocate a fresh request id.
    pub fn alloc_greq(&mut self) -> u64 {
        let g = self.next_greq;
        self.next_greq += 1;
        g
    }

    /// Metadata service: place one write of `len` bytes for `file`,
    /// appending at the file's placement cursor. Unknown file ids are a
    /// typed error the client surfaces as a failed job.
    pub fn place_write(&mut self, file: u64, len: u32) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::Append)
    }

    /// Place a write at an explicit logical offset (`pwrite` semantics):
    /// the placement cursor only advances past `offset + len` when the
    /// write extends the file, so overwrites don't grow it.
    pub fn place_write_at(
        &mut self,
        file: u64,
        len: u32,
        offset: u64,
    ) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::At(offset))
    }

    /// Re-place a retried write at its original logical offset: fresh
    /// physical addresses (the old descriptors are gone), but the
    /// placement cursor does NOT advance again — a retry re-writes the
    /// same logical extent, it does not append new bytes.
    pub fn replace_write(
        &mut self,
        file: u64,
        len: u32,
        offset: u64,
    ) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::Retry(offset))
    }

    fn place_write_inner(
        &mut self,
        file: u64,
        len: u32,
        mode: PlaceMode,
    ) -> Result<WritePlacement, MetaError> {
        let meta = self.lookup(file)?.clone();
        self.note_route(self.shard_of(file), ServiceClass::Mutation);
        let greq = self.alloc_greq();
        let n = self.storage_nodes.len();
        let home = meta.home;
        let base = match mode {
            PlaceMode::Append => meta.cursor,
            PlaceMode::At(o) => o,
            PlaceMode::Retry(o) => o,
        };
        // Cursor: appends and extending writes advance it; retries never
        // do (their original placement already did). Only the cursor
        // moves here — the committed size advances when the write's
        // placement is committed, so a rejected or abandoned write never
        // inflates what `stat` and read planning see.
        let appended = match mode {
            PlaceMode::Retry(_) => 0,
            _ => (base + len as u64).saturating_sub(meta.cursor),
        };
        if appended > 0 {
            if let Some(f) = self.file_mut(file) {
                f.cursor += appended;
            }
        }
        let placement = match meta.policy {
            FilePolicy::Plain => {
                // Striped placement: split the extent over the file's
                // layout; width-1 layouts degenerate to the seed's
                // single-node placement.
                let extents = meta.layout.extents(base, len);
                let mut stripes = Vec::with_capacity(extents.len());
                for e in &extents {
                    let node = e.node as NodeId;
                    let addr = self.alloc_on(node, e.len.max(1) as u64);
                    self.count_stripe_placement(node);
                    stripes.push(StripeTarget {
                        coord: ReplicaCoord { node: e.node, addr },
                        len: e.len,
                        file_offset: e.file_offset,
                    });
                }
                let primary = stripes[0].coord;
                WritePlacement {
                    greq,
                    primary,
                    replicas: vec![primary],
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                    offset: base,
                    appended,
                    stripes: if stripes.len() > 1 { stripes } else { vec![] },
                }
            }
            FilePolicy::Replicated { k, .. } => {
                assert!(k as usize <= n, "replication factor exceeds cluster");
                let mut replicas = Vec::with_capacity(k as usize);
                for r in 0..k as usize {
                    let node = self.storage_nodes[(home + r) % n];
                    let addr = self.alloc_on(node, len as u64);
                    replicas.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: replicas[0],
                    replicas,
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                    offset: base,
                    appended,
                    stripes: vec![],
                }
            }
            FilePolicy::ErasureCoded { scheme } => {
                let (k, m) = (scheme.k as usize, scheme.m as usize);
                assert!(k + m <= n, "RS(k,m) needs k+m storage nodes");
                let chunk_len = (len as u64).div_ceil(k as u64).max(1) as u32;
                let mut data_chunks = Vec::with_capacity(k);
                for j in 0..k {
                    let node = self.storage_nodes[(home + j) % n];
                    let addr = self.alloc_on(node, chunk_len as u64);
                    data_chunks.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                let mut parities = Vec::with_capacity(m);
                for p in 0..m {
                    let node = self.storage_nodes[(home + k + p) % n];
                    // Parity region: final parity plus k staging slots
                    // (used by the INEC firmware path).
                    let addr = self.alloc_on(node, chunk_len as u64 * (1 + k as u64));
                    parities.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: data_chunks[0],
                    replicas: vec![],
                    data_chunks,
                    parities,
                    chunk_len,
                    offset: base,
                    appended,
                    stripes: vec![],
                }
            }
        };
        Ok(placement)
    }

    /// Commit a completed write's placement into the file's extent map
    /// (called by clients when the write acknowledges `Ok`): this is what
    /// makes the bytes *readable* — and what advances the committed size
    /// (`stat` / read-plan clamping). The map's generation bump is fanned
    /// out to registered read caches so cached data for the file drops.
    /// A file unlinked while the write was in flight is silently skipped.
    /// Returns the committed-size growth — what the client's write-back
    /// attr update must carry (placement-time deltas would over-count
    /// when an earlier placement was abandoned and never committed).
    pub fn commit_write(&mut self, file: u64, placement: &WritePlacement, len: u32) -> u64 {
        let shard = self.shard_of(file);
        if len == 0 || !self.shards[shard].files.contains_key(&file) {
            return 0;
        }
        self.note_route(shard, ServiceClass::Mutation);
        let scheme = match self.file(file).map(|m| &m.policy) {
            Some(FilePolicy::ErasureCoded { scheme }) => Some(*scheme),
            _ => None,
        };
        let map = self.shards[shard].extents.entry(file).or_default();
        let first_new = map.len();
        if !placement.stripes.is_empty() {
            for st in &placement.stripes {
                map.record(ExtentRecord::Plain {
                    offset: st.file_offset,
                    len: st.len,
                    coord: st.coord,
                });
            }
        } else if !placement.data_chunks.is_empty() {
            let scheme = scheme.expect("EC placement on a non-EC file");
            map.record(ExtentRecord::Ec {
                offset: placement.offset,
                len,
                chunk_len: placement.chunk_len,
                scheme,
                data: placement.data_chunks.clone(),
                parities: placement.parities.clone(),
            });
        } else if placement.replicas.len() > 1 {
            map.record(ExtentRecord::Replicated {
                offset: placement.offset,
                len,
                replicas: placement.replicas.clone(),
            });
        } else {
            map.record(ExtentRecord::Plain {
                offset: placement.offset,
                len,
                coord: placement.primary,
            });
        }
        let generation = map.generation();
        self.log_apply(
            shard,
            MetaMutation::ExtentCommit {
                ino: file,
                generation,
            },
        );
        // The bytes are durable now: this (and only this) advances the
        // committed size the read path clamps against.
        let mut growth = 0;
        if let Some(f) = self.file_mut(file) {
            let new_size = f.size.max(placement.offset + len as u64);
            growth = new_size - f.size;
            f.size = new_size;
        }
        // The committed shards are live on their nodes now: charge the
        // hosted-capacity gauges per coordinate.
        {
            let map = &self.shards[shard].extents[&file];
            let mut adds: Vec<(u32, u64)> = Vec::new();
            for rec in first_new..map.len() {
                let r = &map.records()[rec];
                let bytes = r.shard_len() as u64;
                for (_, coord) in r.shard_coords() {
                    adds.push((coord.node, bytes));
                }
            }
            for (node, bytes) in adds {
                self.hosted_add(node, bytes);
            }
        }
        // A write that raced a failure commits an extent referencing an
        // already-failed node (the placement predates `mark_node_failed`,
        // whose scan could not see this record): queue it now, or the
        // mid-write kill would leave a permanently degraded extent.
        if !self.failed_nodes.is_empty() {
            let map = &self.shards[shard].extents[&file];
            let mut racing: Vec<RepairTask> = Vec::new();
            for rec in first_new..map.len() {
                if self
                    .failed_nodes
                    .iter()
                    .any(|&n| map.records()[rec].references_node(n))
                {
                    racing.push(RepairTask { file, rec });
                }
            }
            for t in racing {
                self.repair_queue.push_back(t);
            }
        }
        // Fan the generation bump out to client read caches (same
        // callback channel every namespace mutation rides).
        self.meta.note_extent_commit(file, generation);
        self.publish_invalidations();
        // Overwrite-heavy files accrete fully-shadowed records; fold
        // them while the cluster is quiescent.
        self.maybe_compact(file);
        growth
    }

    /// The stats sink for storage node `node`, if one is attached (unit
    /// tests build planes without sinks; every ledger update degrades to
    /// a no-op there).
    pub(super) fn node_stats(&self, node: u32) -> Option<&SharedStorageStats> {
        self.storage_nodes
            .iter()
            .position(|&n| n as u32 == node)
            .and_then(|i| self.storage_stats.get(i))
    }

    /// A shard became live on `node`: bump its hosted gauges.
    pub(super) fn hosted_add(&self, node: u32, bytes: u64) {
        if let Some(stats) = self.node_stats(node) {
            let mut s = stats.borrow_mut();
            s.chunks_hosted += 1;
            s.bytes_hosted += bytes;
        }
    }

    /// A shard stopped being live on `node` (re-homed away, or its file
    /// unlinked): drop it from the hosted gauges. The gauges track what
    /// the extent maps currently say, so this happens at the metadata
    /// mutation — even while the node is down (the stale physical copy
    /// moves to the orphan ledger via [`Self::orphan_add`]).
    pub(super) fn hosted_sub(&self, node: u32, bytes: u64) {
        if let Some(stats) = self.node_stats(node) {
            let mut s = stats.borrow_mut();
            s.chunks_hosted = s.chunks_hosted.saturating_sub(1);
            s.bytes_hosted = s.bytes_hosted.saturating_sub(bytes);
        }
    }

    /// Record a stale copy stranded on failed node `node`: the metadata
    /// no longer references it, but the node was down when it died, so
    /// the physical chunk sits there until recovery reconciliation.
    pub(super) fn orphan_add(&mut self, node: u32, bytes: u64) {
        let led = self.orphaned.entry(node).or_default();
        led.chunks += 1;
        led.bytes += bytes;
    }

    /// Un-home one extent record's shards after the record leaves the
    /// metadata (unlink / rename-replace / compaction): every coordinate
    /// drops off the hosted gauges, and coordinates on currently-failed
    /// nodes are remembered as orphans for recovery-time reclamation.
    pub(super) fn unhost_record(&mut self, rec: &ExtentRecord) {
        let bytes = rec.shard_len() as u64;
        for (_, coord) in rec.shard_coords() {
            self.hosted_sub(coord.node, bytes);
            if self.failed_nodes.contains(&coord.node) {
                self.orphan_add(coord.node, bytes);
            }
        }
    }
}
