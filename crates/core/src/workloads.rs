//! Synthetic workload generation for experiments and examples.
//!
//! The paper's evaluation uses fixed-size write streams; downstream users
//! of a DFS care about mixed, skewed traffic. This module provides
//! deterministic (seeded) generators for both, built on `rand`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{Job, WriteProtocol};

/// Write-size distribution.
#[derive(Clone, Debug)]
pub enum SizeDist {
    /// Every write has the same size.
    Fixed(u32),
    /// Uniform over [min, max].
    Uniform { min: u32, max: u32 },
    /// Log-uniform over [min, max]: sizes spread evenly across octaves,
    /// matching the log-scaled x-axes of the paper's figures.
    LogUniform { min: u32, max: u32 },
    /// Bimodal small/large mix: `small_frac` in \[0,1\] of writes take
    /// `small`, the rest take `large` (metadata-vs-bulk pattern).
    Bimodal {
        small: u32,
        large: u32,
        small_frac: f64,
    },
}

impl SizeDist {
    fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            SizeDist::Fixed(s) => s,
            SizeDist::Uniform { min, max } => rng.gen_range(min..=max),
            SizeDist::LogUniform { min, max } => {
                assert!(min > 0 && min <= max);
                let lo = (min as f64).ln();
                let hi = (max as f64).ln();
                let v = rng.gen_range(lo..=hi);
                (v.exp().round() as u32).clamp(min, max)
            }
            SizeDist::Bimodal {
                small,
                large,
                small_frac,
            } => {
                if rng.gen_bool(small_frac.clamp(0.0, 1.0)) {
                    small
                } else {
                    large
                }
            }
        }
    }
}

/// A deterministic workload: `n` writes per client with a size
/// distribution and one protocol.
#[derive(Clone, Debug)]
pub struct Workload {
    pub file: u64,
    pub protocol: WriteProtocol,
    pub sizes: SizeDist,
    pub writes_per_client: usize,
    pub seed: u64,
}

impl Workload {
    pub fn new(file: u64, protocol: WriteProtocol, sizes: SizeDist) -> Workload {
        Workload {
            file,
            protocol,
            sizes,
            writes_per_client: 16,
            seed: 0xBEEF,
        }
    }

    pub fn with_writes(mut self, n: usize) -> Workload {
        self.writes_per_client = n;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Workload {
        self.seed = seed;
        self
    }

    /// Generate client `idx`'s job list (deterministic per (seed, idx)).
    pub fn jobs_for_client(&self, idx: usize) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0x9E37));
        (0..self.writes_per_client)
            .map(|i| Job::Write {
                file: self.file,
                size: self.sizes.sample(&mut rng).max(1),
                protocol: self.protocol,
                seed: self.seed ^ ((idx as u64) << 32) ^ i as u64,
            })
            .collect()
    }

    /// Total bytes this workload writes across `n_clients`.
    pub fn total_bytes(&self, n_clients: usize) -> u64 {
        (0..n_clients)
            .flat_map(|c| self.jobs_for_client(c))
            .map(|j| match j {
                Job::Write { size, .. } => size as u64,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sizes_are_fixed() {
        let w = Workload::new(1, WriteProtocol::Raw, SizeDist::Fixed(4096)).with_writes(5);
        for j in w.jobs_for_client(0) {
            let Job::Write { size, .. } = j else {
                panic!("write job")
            };
            assert_eq!(size, 4096);
        }
    }

    #[test]
    fn generation_is_deterministic_per_client() {
        let w = Workload::new(
            1,
            WriteProtocol::Raw,
            SizeDist::LogUniform {
                min: 1 << 10,
                max: 1 << 20,
            },
        )
        .with_writes(20)
        .with_seed(7);
        let a: Vec<u32> = w
            .jobs_for_client(3)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        let b: Vec<u32> = w
            .jobs_for_client(3)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        assert_eq!(a, b, "same client, same jobs");
        let c: Vec<u32> = w
            .jobs_for_client(4)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        assert_ne!(a, c, "different clients diverge");
    }

    #[test]
    fn log_uniform_stays_in_range_and_spreads() {
        let w = Workload::new(
            1,
            WriteProtocol::Raw,
            SizeDist::LogUniform {
                min: 1 << 10,
                max: 1 << 20,
            },
        )
        .with_writes(200);
        let sizes: Vec<u32> = w
            .jobs_for_client(0)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        assert!(sizes.iter().all(|&s| (1 << 10..=1 << 20).contains(&s)));
        let small = sizes.iter().filter(|&&s| s < 32 << 10).count();
        let large = sizes.iter().filter(|&&s| s >= 32 << 10).count();
        // Log-uniform: both halves of the log range well represented.
        assert!(small > 40 && large > 40, "small={small} large={large}");
    }

    #[test]
    fn bimodal_respects_fraction_roughly() {
        let w = Workload::new(
            1,
            WriteProtocol::Raw,
            SizeDist::Bimodal {
                small: 1024,
                large: 1 << 20,
                small_frac: 0.8,
            },
        )
        .with_writes(500);
        let small = w
            .jobs_for_client(1)
            .iter()
            .filter(|j| matches!(j, Job::Write { size: 1024, .. }))
            .count();
        assert!((320..=480).contains(&small), "small={small}");
    }

    #[test]
    fn total_bytes_accounts_all_clients() {
        let w = Workload::new(1, WriteProtocol::Raw, SizeDist::Fixed(1000)).with_writes(10);
        assert_eq!(w.total_bytes(3), 30_000);
    }
}
