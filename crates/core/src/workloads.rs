//! Synthetic workload generation for experiments and examples.
//!
//! The paper's evaluation uses fixed-size write streams; downstream users
//! of a DFS care about mixed, skewed traffic. This module provides
//! deterministic (seeded) generators for both, built on `rand`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{Job, MetaOp, ReadProtocol, WriteProtocol};
use nadfs_meta::LayoutSpec;

/// Write-size distribution.
#[derive(Clone, Debug)]
pub enum SizeDist {
    /// Every write has the same size.
    Fixed(u32),
    /// Uniform over [min, max].
    Uniform { min: u32, max: u32 },
    /// Log-uniform over [min, max]: sizes spread evenly across octaves,
    /// matching the log-scaled x-axes of the paper's figures.
    LogUniform { min: u32, max: u32 },
    /// Bimodal small/large mix: `small_frac` in \[0,1\] of writes take
    /// `small`, the rest take `large` (metadata-vs-bulk pattern).
    Bimodal {
        small: u32,
        large: u32,
        small_frac: f64,
    },
}

impl SizeDist {
    fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            SizeDist::Fixed(s) => s,
            SizeDist::Uniform { min, max } => rng.gen_range(min..=max),
            SizeDist::LogUniform { min, max } => {
                assert!(min > 0 && min <= max);
                let lo = (min as f64).ln();
                let hi = (max as f64).ln();
                let v = rng.gen_range(lo..=hi);
                (v.exp().round() as u32).clamp(min, max)
            }
            SizeDist::Bimodal {
                small,
                large,
                small_frac,
            } => {
                if rng.gen_bool(small_frac.clamp(0.0, 1.0)) {
                    small
                } else {
                    large
                }
            }
        }
    }
}

/// How the read phase picks its offsets — the axis a client read cache
/// cares about.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReadPattern {
    /// Offsets sampled uniformly over the written region (the original
    /// behavior; worst case for caching).
    Uniform,
    /// A forward scan: each read starts where the previous one ended,
    /// wrapping at the end of the written region. The streaming pattern
    /// readahead exists for.
    Sequential,
    /// Skewed popularity: read `i` targets block `floor(N * u^exponent)`
    /// of the written region, concentrating accesses on a hot prefix
    /// (exponent 2.0 ≈ the classic zipf-ish hot set). What a cache's
    /// steady-state hit rate is measured against. Exponents below 1.0
    /// are clamped to 1.0 (uniform) — sub-uniform spread is not a skew.
    Zipfian { exponent: f64 },
}

/// A deterministic workload: `n` writes per client with a size
/// distribution and one protocol, optionally followed by a ranged-read
/// phase over the written region (a read-after-write mix).
#[derive(Clone, Debug)]
pub struct Workload {
    pub file: u64,
    pub protocol: WriteProtocol,
    pub sizes: SizeDist,
    pub writes_per_client: usize,
    /// Ranged reads appended after the writes (0 = write-only).
    pub reads_per_client: usize,
    pub read_protocol: ReadProtocol,
    /// Offset selection for the read phase.
    pub read_pattern: ReadPattern,
    pub seed: u64,
}

impl Workload {
    pub fn new(file: u64, protocol: WriteProtocol, sizes: SizeDist) -> Workload {
        Workload {
            file,
            protocol,
            sizes,
            writes_per_client: 16,
            reads_per_client: 0,
            read_protocol: ReadProtocol::Rdma,
            read_pattern: ReadPattern::Uniform,
            seed: 0xBEEF,
        }
    }

    pub fn with_writes(mut self, n: usize) -> Workload {
        self.writes_per_client = n;
        self
    }

    /// Append `n` ranged reads (offsets/lengths sampled over the region
    /// this client wrote) using `protocol`.
    pub fn with_reads(mut self, n: usize, protocol: ReadProtocol) -> Workload {
        self.reads_per_client = n;
        self.read_protocol = protocol;
        self
    }

    /// Pick how the read phase chooses offsets (sequential streaming,
    /// zipfian hot-set, or the uniform default).
    pub fn with_read_pattern(mut self, pattern: ReadPattern) -> Workload {
        self.read_pattern = pattern;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Workload {
        self.seed = seed;
        self
    }

    /// Generate client `idx`'s job list (deterministic per (seed, idx)).
    pub fn jobs_for_client(&self, idx: usize) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0x9E37));
        let mut jobs: Vec<Job> = Vec::with_capacity(self.writes_per_client + self.reads_per_client);
        let mut written = 0u64;
        for i in 0..self.writes_per_client {
            let size = self.sizes.sample(&mut rng).max(1);
            written += size as u64;
            jobs.push(Job::Write {
                file: self.file,
                size,
                protocol: self.protocol,
                seed: self.seed ^ ((idx as u64) << 32) ^ i as u64,
            });
        }
        // Read phase: ranges within the bytes this client wrote. The
        // plan queue is in-order, so with window 1 every targeted byte is
        // committed before its read issues; wider windows or concurrent
        // clients can race a read past an uncommitted write, in which
        // case the uncovered range legally reads back as a zero-filled
        // hole (cheaper than a fetch — don't compare read latencies
        // across window settings without checking hole rates).
        let mut stream_off = 0u64;
        for i in 0..self.reads_per_client {
            let len = self.sizes.sample(&mut rng).max(1);
            let max_off = written.saturating_sub(len as u64);
            let offset = match self.read_pattern {
                ReadPattern::Uniform => {
                    if max_off == 0 {
                        0
                    } else {
                        rng.gen_range(0..=max_off)
                    }
                }
                ReadPattern::Sequential => {
                    // Forward scan; wrap when the next read would run
                    // past the written region.
                    if stream_off > max_off {
                        stream_off = 0;
                    }
                    let o = stream_off;
                    stream_off += len as u64;
                    o
                }
                ReadPattern::Zipfian { exponent } => {
                    // u^e concentrates mass near 0: a hot prefix whose
                    // skew grows with the exponent.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    ((u.powf(exponent.max(1.0)) * max_off as f64) as u64).min(max_off)
                }
            };
            jobs.push(Job::Read {
                file: self.file,
                offset,
                len,
                protocol: self.read_protocol,
                token: ((idx as u64) << 32) | i as u64,
                slot: None,
            });
        }
        jobs
    }

    /// Total bytes this workload writes across `n_clients`.
    pub fn total_bytes(&self, n_clients: usize) -> u64 {
        (0..n_clients)
            .flat_map(|c| self.jobs_for_client(c))
            .map(|j| match j {
                Job::Write { size, .. } => size as u64,
                _ => 0,
            })
            .sum()
    }
}

/// A metadata-heavy workload: touch/stat/rename/rm storms in the style of
/// the zippynfs directory-operation benchmarks (and the metadata traffic
/// SwitchFS/AsyncFS identify as the next bottleneck once the data path is
/// offloaded).
///
/// Each client works in its own subtree `{root}/c{idx}`, so runs are
/// deterministic and clients never conflict: it makes `dirs` directories,
/// touches `files_per_dir` files in each, stats paths in a skewed storm
/// (repeated lookups of popular files — what a client cache absorbs),
/// renames and then unlinks a fraction, and ends with one readdir per
/// directory.
#[derive(Clone, Debug)]
pub struct MetaWorkload {
    /// Workload root (must exist before the run; see
    /// [`MetaWorkload::prepare`]).
    pub root: String,
    pub dirs: usize,
    pub files_per_dir: usize,
    /// Number of stat (lookup) ops in the storm.
    pub stat_storm: usize,
    /// Fraction of files renamed after the storm, in [0, 1].
    pub rename_frac: f64,
    /// Fraction of files unlinked at the end, in [0, 1].
    pub unlink_frac: f64,
    /// Stripe layout for the touched files.
    pub layout: LayoutSpec,
    pub seed: u64,
}

impl MetaWorkload {
    pub fn new(root: impl Into<String>) -> MetaWorkload {
        MetaWorkload {
            root: root.into(),
            dirs: 4,
            files_per_dir: 8,
            stat_storm: 64,
            rename_frac: 0.25,
            unlink_frac: 0.25,
            layout: LayoutSpec::SINGLE,
            seed: 0xD1F5,
        }
    }

    pub fn with_dirs(mut self, dirs: usize, files_per_dir: usize) -> MetaWorkload {
        self.dirs = dirs;
        self.files_per_dir = files_per_dir;
        self
    }

    pub fn with_storm(mut self, lookups: usize) -> MetaWorkload {
        self.stat_storm = lookups;
        self
    }

    pub fn with_layout(mut self, layout: LayoutSpec) -> MetaWorkload {
        self.layout = layout;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> MetaWorkload {
        self.seed = seed;
        self
    }

    /// Create the shared workload root on the control plane (call once
    /// before submitting jobs).
    pub fn prepare(&self, control: &crate::control::SharedControl) {
        control
            .borrow_mut()
            .mkdir_p(&self.root, 0)
            .expect("workload root");
    }

    fn base(&self, idx: usize) -> String {
        format!("{}/c{idx}", self.root)
    }

    fn file_path(&self, idx: usize, dir: usize, file: usize) -> String {
        format!("{}/d{dir}/f{file}", self.base(idx))
    }

    /// Renamed and unlinked counts for `files` total files. Renames take
    /// the head of the list and unlinks the tail of the *original* paths,
    /// so the unlink count is capped at the un-renamed remainder — both
    /// fractions may legally be in [0, 1] without generating jobs that
    /// are guaranteed to fail.
    fn churn_counts(&self, files: usize) -> (usize, usize) {
        let renamed = ((files as f64 * self.rename_frac) as usize).min(files);
        let unlinked = ((files as f64 * self.unlink_frac) as usize).min(files - renamed);
        (renamed, unlinked)
    }

    /// Number of jobs [`MetaWorkload::jobs_for_client`] emits per client.
    pub fn ops_per_client(&self) -> usize {
        let files = self.dirs * self.files_per_dir;
        let (renamed, unlinked) = self.churn_counts(files);
        1 + self.dirs + files + self.stat_storm + renamed + unlinked + self.dirs
    }

    /// Generate client `idx`'s job list (deterministic per (seed, idx)).
    pub fn jobs_for_client(&self, idx: usize) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0xA5A5));
        let mut token = (idx as u64) << 32;
        let mut tok = || {
            token += 1;
            token
        };
        let mut jobs = Vec::with_capacity(self.ops_per_client());
        let base = self.base(idx);
        jobs.push(Job::Meta {
            op: MetaOp::Mkdir { path: base.clone() },
            token: tok(),
        });
        for d in 0..self.dirs {
            jobs.push(Job::Meta {
                op: MetaOp::Mkdir {
                    path: format!("{base}/d{d}"),
                },
                token: tok(),
            });
        }
        // Creates interleave round-robin across directories (f-major, not
        // d-major): consecutive mutations then carry different parent
        // inos, so a sharded metadata plane sees the storm spread over
        // the shard space instead of hammering one directory's shard
        // with a long same-parent run.
        let mut files = Vec::new();
        for f in 0..self.files_per_dir {
            for d in 0..self.dirs {
                let path = self.file_path(idx, d, f);
                files.push(path.clone());
                jobs.push(Job::Meta {
                    op: MetaOp::Create {
                        path,
                        spec: self.layout,
                    },
                    token: tok(),
                });
            }
        }
        // Stat storm with popularity skew: squaring a uniform sample
        // concentrates hits on low-index (popular) files, so a cache sees
        // a realistic hot set rather than a uniform sweep. With no files
        // (dirs or files_per_dir of 0), the storm stats the client base
        // dir instead of panicking on an empty list.
        for _ in 0..self.stat_storm {
            let path = if files.is_empty() {
                base.clone()
            } else {
                let u = rng.gen_range(0.0f64..1.0);
                let i = ((u * u) * files.len() as f64) as usize;
                files[i.min(files.len() - 1)].clone()
            };
            jobs.push(Job::Meta {
                op: MetaOp::Lookup { path },
                token: tok(),
            });
        }
        // Rename a fraction (the popular prefix, maximizing invalidation
        // pressure on the cache), then unlink a fraction from the
        // un-renamed tail.
        let (renamed, unlinked) = self.churn_counts(files.len());
        for (i, path) in files.iter().take(renamed).enumerate() {
            jobs.push(Job::Meta {
                op: MetaOp::Rename {
                    from: path.clone(),
                    to: format!("{path}.r{i}"),
                },
                token: tok(),
            });
        }
        for path in files.iter().rev().take(unlinked) {
            jobs.push(Job::Meta {
                op: MetaOp::Unlink { path: path.clone() },
                token: tok(),
            });
        }
        for d in 0..self.dirs {
            jobs.push(Job::Meta {
                op: MetaOp::Readdir {
                    path: format!("{base}/d{d}"),
                },
                token: tok(),
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sizes_are_fixed() {
        let w = Workload::new(1, WriteProtocol::Raw, SizeDist::Fixed(4096)).with_writes(5);
        for j in w.jobs_for_client(0) {
            let Job::Write { size, .. } = j else {
                panic!("write job")
            };
            assert_eq!(size, 4096);
        }
    }

    #[test]
    fn generation_is_deterministic_per_client() {
        let w = Workload::new(
            1,
            WriteProtocol::Raw,
            SizeDist::LogUniform {
                min: 1 << 10,
                max: 1 << 20,
            },
        )
        .with_writes(20)
        .with_seed(7);
        let a: Vec<u32> = w
            .jobs_for_client(3)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        let b: Vec<u32> = w
            .jobs_for_client(3)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        assert_eq!(a, b, "same client, same jobs");
        let c: Vec<u32> = w
            .jobs_for_client(4)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        assert_ne!(a, c, "different clients diverge");
    }

    #[test]
    fn log_uniform_stays_in_range_and_spreads() {
        let w = Workload::new(
            1,
            WriteProtocol::Raw,
            SizeDist::LogUniform {
                min: 1 << 10,
                max: 1 << 20,
            },
        )
        .with_writes(200);
        let sizes: Vec<u32> = w
            .jobs_for_client(0)
            .iter()
            .map(|j| match j {
                Job::Write { size, .. } => *size,
                _ => 0,
            })
            .collect();
        assert!(sizes.iter().all(|&s| (1 << 10..=1 << 20).contains(&s)));
        let small = sizes.iter().filter(|&&s| s < 32 << 10).count();
        let large = sizes.iter().filter(|&&s| s >= 32 << 10).count();
        // Log-uniform: both halves of the log range well represented.
        assert!(small > 40 && large > 40, "small={small} large={large}");
    }

    #[test]
    fn bimodal_respects_fraction_roughly() {
        let w = Workload::new(
            1,
            WriteProtocol::Raw,
            SizeDist::Bimodal {
                small: 1024,
                large: 1 << 20,
                small_frac: 0.8,
            },
        )
        .with_writes(500);
        let small = w
            .jobs_for_client(1)
            .iter()
            .filter(|j| matches!(j, Job::Write { size: 1024, .. }))
            .count();
        assert!((320..=480).contains(&small), "small={small}");
    }

    #[test]
    fn total_bytes_accounts_all_clients() {
        let w = Workload::new(1, WriteProtocol::Raw, SizeDist::Fixed(1000)).with_writes(10);
        assert_eq!(w.total_bytes(3), 30_000);
    }

    #[test]
    fn read_mix_stays_within_written_region() {
        let w = Workload::new(1, WriteProtocol::Raw, SizeDist::Fixed(4096))
            .with_writes(8)
            .with_reads(20, ReadProtocol::Rpc);
        let jobs = w.jobs_for_client(2);
        assert_eq!(jobs.len(), 28);
        let written = 8 * 4096u64;
        let reads: Vec<(u64, u32)> = jobs
            .iter()
            .filter_map(|j| match j {
                Job::Read {
                    offset,
                    len,
                    protocol,
                    ..
                } => {
                    assert_eq!(*protocol, ReadProtocol::Rpc);
                    Some((*offset, *len))
                }
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 20);
        for (off, len) in reads {
            assert!(off + len as u64 <= written, "read escapes written region");
        }
    }

    #[test]
    fn sequential_pattern_scans_forward_and_wraps() {
        let w = Workload::new(1, WriteProtocol::Raw, SizeDist::Fixed(4096))
            .with_writes(4)
            .with_reads(8, ReadProtocol::Rdma)
            .with_read_pattern(ReadPattern::Sequential);
        let reads: Vec<(u64, u32)> = w
            .jobs_for_client(0)
            .iter()
            .filter_map(|j| match j {
                Job::Read { offset, len, .. } => Some((*offset, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 8);
        // 4 writes of 4096 = 16384 written; reads of 4096 scan 0, 4096,
        // 8192, 12288, then wrap.
        let offs: Vec<u64> = reads.iter().map(|&(o, _)| o).collect();
        assert_eq!(offs, vec![0, 4096, 8192, 12288, 0, 4096, 8192, 12288]);
        for (off, len) in reads {
            assert!(off + len as u64 <= 16384);
        }
    }

    #[test]
    fn zipfian_pattern_concentrates_on_a_hot_prefix() {
        let w = Workload::new(1, WriteProtocol::Raw, SizeDist::Fixed(1024))
            .with_writes(64)
            .with_reads(400, ReadProtocol::Rdma)
            .with_read_pattern(ReadPattern::Zipfian { exponent: 2.0 });
        let written = 64 * 1024u64;
        let offs: Vec<u64> = w
            .jobs_for_client(0)
            .iter()
            .filter_map(|j| match j {
                Job::Read { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offs.len(), 400);
        let hot = offs.iter().filter(|&&o| o < written / 4).count();
        // u^2 puts sqrt(1/4) = 50% of accesses in the first quarter.
        assert!(hot > 150, "hot-prefix skew missing: {hot}/400");
        assert!(offs.iter().all(|&o| o + 1024 <= written));
        // Determinism per (seed, client) holds for the pattern too.
        let again: Vec<u64> = w
            .jobs_for_client(0)
            .iter()
            .filter_map(|j| match j {
                Job::Read { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offs, again);
    }

    #[test]
    fn meta_workload_is_deterministic_and_sized() {
        let w = MetaWorkload::new("/bench").with_dirs(2, 4).with_storm(20);
        let a = w.jobs_for_client(1);
        let b = w.jobs_for_client(1);
        assert_eq!(a.len(), w.ops_per_client());
        let paths = |jobs: &[Job]| -> Vec<String> {
            jobs.iter()
                .map(|j| match j {
                    Job::Meta {
                        op: MetaOp::Lookup { path },
                        ..
                    } => path.clone(),
                    _ => String::new(),
                })
                .collect()
        };
        assert_eq!(paths(&a), paths(&b), "same client, same storm");
        assert_ne!(paths(&a), paths(&w.jobs_for_client(2)), "clients diverge");
    }

    #[test]
    fn meta_workload_churn_never_overlaps_even_for_large_fractions() {
        let mut w = MetaWorkload::new("/x").with_dirs(2, 8);
        w.rename_frac = 0.75;
        w.unlink_frac = 0.75;
        let jobs = w.jobs_for_client(0);
        assert_eq!(jobs.len(), w.ops_per_client());
        let renamed: Vec<String> = jobs
            .iter()
            .filter_map(|j| match j {
                Job::Meta {
                    op: MetaOp::Rename { from, .. },
                    ..
                } => Some(from.clone()),
                _ => None,
            })
            .collect();
        for j in &jobs {
            if let Job::Meta {
                op: MetaOp::Unlink { path },
                ..
            } = j
            {
                assert!(
                    !renamed.contains(path),
                    "unlink of an already-renamed path would always fail: {path}"
                );
            }
        }
        assert_eq!(renamed.len(), 12);
        // Unlinks capped to the un-renamed remainder (16 - 12 = 4).
        let unlinks = jobs
            .iter()
            .filter(|j| {
                matches!(
                    j,
                    Job::Meta {
                        op: MetaOp::Unlink { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(unlinks, 4);
    }

    #[test]
    fn meta_workload_with_no_files_does_not_panic() {
        let w = MetaWorkload::new("/x").with_dirs(0, 8).with_storm(10);
        let jobs = w.jobs_for_client(0);
        assert_eq!(jobs.len(), w.ops_per_client());
        // The storm degrades to stats of the client base dir.
        assert!(jobs.iter().any(|j| matches!(
            j,
            Job::Meta {
                op: MetaOp::Lookup { path },
                ..
            } if path == "/x/c0"
        )));
    }

    #[test]
    fn meta_workload_keeps_clients_in_disjoint_subtrees() {
        let w = MetaWorkload::new("/bench");
        for job in w.jobs_for_client(3) {
            let Job::Meta { op, .. } = job else {
                panic!("meta job")
            };
            let touches = |p: &str| p.starts_with("/bench/c3");
            let ok = match &op {
                MetaOp::Mkdir { path }
                | MetaOp::Create { path, .. }
                | MetaOp::Lookup { path }
                | MetaOp::Readdir { path }
                | MetaOp::Unlink { path } => touches(path),
                MetaOp::Rename { from, to } => touches(from) && touches(to),
            };
            assert!(ok, "op escapes the client subtree: {op:?}");
        }
    }
}
