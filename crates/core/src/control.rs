//! Control plane: management and metadata services.
//!
//! Per the paper's operational model (Fig 1a), clients authenticate with
//! the management service, query the metadata service for file layouts, and
//! then talk to storage nodes directly. Control-plane interactions are
//! excluded from the measured write latency ("the write latency is the time
//! spanning from issuing the write request to receiving the respective
//! write response", §IV) — so the services here are shared state consulted
//! synchronously by the drivers, with an optional RPC front used by the
//! full-system examples.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nadfs_simnet::NodeId;
use nadfs_wire::{
    BcastStrategy, Capability, MacKey, ReplicaCoord, Rights, RsScheme,
};

/// Resiliency policy attached to a file by the metadata service.
#[derive(Clone, Debug, PartialEq)]
pub enum FilePolicy {
    /// Plain single-copy writes (authentication only).
    Plain,
    /// k-way replication with the given broadcast schedule.
    Replicated { k: u8, strategy: BcastStrategy },
    /// Reed-Solomon erasure coding.
    ErasureCoded { scheme: RsScheme },
}

/// A file's metadata.
#[derive(Clone, Debug)]
pub struct FileMeta {
    pub id: u64,
    pub size: u64,
    pub policy: FilePolicy,
    /// First storage node of the file's placement group.
    pub home: usize,
}

/// Placement of one write: where every byte (and parity) goes.
#[derive(Clone, Debug)]
pub struct WritePlacement {
    pub greq: u64,
    /// Primary target (node, address).
    pub primary: ReplicaCoord,
    /// All replica coordinates including the primary, in virtual-rank
    /// order (replication only).
    pub replicas: Vec<ReplicaCoord>,
    /// Data-chunk coordinates (EC only), one per data node.
    pub data_chunks: Vec<ReplicaCoord>,
    /// Parity coordinates (EC only).
    pub parities: Vec<ReplicaCoord>,
    /// EC chunk length (bytes per data chunk).
    pub chunk_len: u32,
}

/// The control plane: management (authentication) + metadata (namespace,
/// layout, placement) services.
pub struct ControlPlane {
    key: MacKey,
    files: HashMap<u64, FileMeta>,
    next_file: u64,
    next_greq: u64,
    next_nonce: u64,
    /// Storage nodes, by fabric node id.
    storage_nodes: Vec<NodeId>,
    /// Bump allocator per storage node for write placement.
    next_addr: HashMap<NodeId, u64>,
}

pub type SharedControl = Rc<RefCell<ControlPlane>>;

impl ControlPlane {
    pub fn new(key_seed: u64, storage_nodes: Vec<NodeId>) -> SharedControl {
        let next_addr = storage_nodes.iter().map(|&n| (n, 0x10_0000u64)).collect();
        Rc::new(RefCell::new(ControlPlane {
            key: MacKey::from_seed(key_seed),
            files: HashMap::new(),
            next_file: 1,
            next_greq: 1,
            next_nonce: 1,
            storage_nodes,
            next_addr,
        }))
    }

    /// The service-shared MAC key (installed into storage-node NIC memory).
    pub fn service_key(&self) -> MacKey {
        self.key
    }

    pub fn storage_nodes(&self) -> &[NodeId] {
        &self.storage_nodes
    }

    /// Create a file with the given policy; placement groups are assigned
    /// round-robin over storage nodes.
    pub fn create_file(&mut self, size: u64, policy: FilePolicy) -> FileMeta {
        let id = self.next_file;
        self.next_file += 1;
        let meta = FileMeta {
            id,
            size,
            policy,
            home: (id as usize - 1) % self.storage_nodes.len(),
        };
        self.files.insert(id, meta.clone());
        meta
    }

    pub fn lookup(&self, file: u64) -> Option<&FileMeta> {
        self.files.get(&file)
    }

    /// Management service: authenticate a client and issue a capability
    /// for `file` (§IV — signed with the service-shared key).
    pub fn issue_capability(
        &mut self,
        client: u32,
        file: u64,
        rights: Rights,
        expires_at_ns: u64,
    ) -> Capability {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        Capability::issue(&self.key, client, file, rights, expires_at_ns, nonce)
    }

    fn alloc_on(&mut self, node: NodeId, len: u64) -> u64 {
        let a = self.next_addr.get_mut(&node).expect("storage node");
        let addr = *a;
        // Page-align so concurrent placements never overlap.
        *a += len.div_ceil(4096).max(1) * 4096;
        addr
    }

    /// Allocate a fresh request id.
    pub fn alloc_greq(&mut self) -> u64 {
        let g = self.next_greq;
        self.next_greq += 1;
        g
    }

    /// Metadata service: place one write of `len` bytes for `file`.
    pub fn place_write(&mut self, file: u64, len: u32) -> WritePlacement {
        let meta = self.files.get(&file).expect("file exists").clone();
        let greq = self.alloc_greq();
        let n = self.storage_nodes.len();
        let home = meta.home;
        match meta.policy {
            FilePolicy::Plain => {
                let node = self.storage_nodes[home];
                let addr = self.alloc_on(node, len as u64);
                let primary = ReplicaCoord {
                    node: node as u32,
                    addr,
                };
                WritePlacement {
                    greq,
                    primary,
                    replicas: vec![primary],
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                }
            }
            FilePolicy::Replicated { k, .. } => {
                assert!(k as usize <= n, "replication factor exceeds cluster");
                let mut replicas = Vec::with_capacity(k as usize);
                for r in 0..k as usize {
                    let node = self.storage_nodes[(home + r) % n];
                    let addr = self.alloc_on(node, len as u64);
                    replicas.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: replicas[0],
                    replicas,
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                }
            }
            FilePolicy::ErasureCoded { scheme } => {
                let (k, m) = (scheme.k as usize, scheme.m as usize);
                assert!(k + m <= n, "RS(k,m) needs k+m storage nodes");
                let chunk_len = (len as u64).div_ceil(k as u64).max(1) as u32;
                let mut data_chunks = Vec::with_capacity(k);
                for j in 0..k {
                    let node = self.storage_nodes[(home + j) % n];
                    let addr = self.alloc_on(node, chunk_len as u64);
                    data_chunks.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                let mut parities = Vec::with_capacity(m);
                for p in 0..m {
                    let node = self.storage_nodes[(home + k + p) % n];
                    // Parity region: final parity plus k staging slots
                    // (used by the INEC firmware path).
                    let addr = self.alloc_on(node, chunk_len as u64 * (1 + k as u64));
                    parities.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: data_chunks[0],
                    replicas: vec![],
                    data_chunks,
                    parities,
                    chunk_len,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> SharedControl {
        ControlPlane::new(7, vec![4, 5, 6, 7, 8])
    }

    #[test]
    fn create_and_lookup() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(1 << 20, FilePolicy::Plain);
        assert_eq!(cp.borrow().lookup(f.id).expect("found").size, 1 << 20);
        assert!(cp.borrow().lookup(999).is_none());
    }

    #[test]
    fn capability_verifies_under_service_key() {
        let cp = plane();
        let cap = cp.borrow_mut().issue_capability(3, 1, Rights::RW, 1_000);
        let key = cp.borrow().service_key();
        assert!(cap.verify(&key, 0, Rights::WRITE).is_ok());
    }

    #[test]
    fn replicated_placement_uses_distinct_nodes() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 8192);
        assert_eq!(p.replicas.len(), 4);
        let mut nodes: Vec<u32> = p.replicas.iter().map(|r| r.node).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "replicas on distinct nodes");
    }

    #[test]
    fn ec_placement_separates_data_and_parity() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 1000);
        assert_eq!(p.data_chunks.len(), 3);
        assert_eq!(p.parities.len(), 2);
        assert_eq!(p.chunk_len, 1000);
        let mut all: Vec<u32> = p
            .data_chunks
            .iter()
            .chain(&p.parities)
            .map(|c| c.node)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 5, "k+m distinct failure domains");
    }

    #[test]
    fn placements_do_not_overlap() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let a = cp.borrow_mut().place_write(f.id, 10_000);
        let b = cp.borrow_mut().place_write(f.id, 10_000);
        assert_eq!(a.primary.node, b.primary.node);
        assert!(b.primary.addr >= a.primary.addr + 10_000);
        assert!(b.greq > a.greq);
    }
}
