//! Control plane: management and metadata services.
//!
//! Per the paper's operational model (Fig 1a), clients authenticate with
//! the management service, query the metadata service for file layouts, and
//! then talk to storage nodes directly. Control-plane interactions are
//! excluded from the measured write latency ("the write latency is the time
//! spanning from issuing the write request to receiving the respective
//! write response", §IV) — so the services here are shared state consulted
//! synchronously by the drivers, with an optional RPC front used by the
//! full-system examples.
//!
//! The metadata service is a real hierarchical namespace
//! ([`nadfs_meta::MetadataService`]): files live at paths, carry striped
//! layouts (stripe width × chunk size over storage nodes), and every
//! mutation bumps versions that drive client-cache invalidation. The
//! seed's flat `u64 → FileMeta` API survives on top: a file's id *is* its
//! inode number, and [`ControlPlane::create_file`] parks legacy files
//! under `/.volatile/`.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use nadfs_meta::{
    ExtentMap, ExtentRecord, InodeAttr, LayoutSpec, MetaCache, MetaError, MetaEvent,
    MetadataService, ReadPiece, ReadPlan, StripedLayout,
};
use nadfs_simnet::NodeId;
use nadfs_wire::{Capability, MacKey, ReplicaCoord, Rights, RsScheme};

use crate::cache::ReadCache;
use crate::storage::SharedStorageStats;

// Policies now live with the rest of the file metadata in `nadfs-meta`;
// re-exported here so existing call sites keep working.
pub use nadfs_meta::FilePolicy;

/// A file's metadata, as handed to clients.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// The file id (its inode number in the namespace).
    pub id: u64,
    /// Committed (durable) bytes: advanced when a write's placement is
    /// committed into the extent map, never by placement alone. This is
    /// what `stat` reflects and what read planning clamps against — a
    /// write that is rejected or never acknowledged must not create
    /// phantom EOF state.
    pub size: u64,
    /// The placement cursor: appends place at this offset, and it
    /// advances at *placement* time so pipelined appends never overlap.
    /// Runs ahead of `size` while writes are in flight; a rejected write
    /// leaves a permanent gap between the two (the file is sparse there
    /// if a later write commits past it).
    pub cursor: u64,
    pub policy: FilePolicy,
    /// Index (into the storage-node list) of the stripe's first node.
    pub home: usize,
    /// Where the file's bytes go.
    pub layout: StripedLayout,
}

/// One striped piece of a plain write: a concrete (node, addr) target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeTarget {
    pub coord: ReplicaCoord,
    pub len: u32,
    /// Logical byte offset within the file.
    pub file_offset: u64,
}

/// Placement of one write: where every byte (and parity) goes.
#[derive(Clone, Debug)]
pub struct WritePlacement {
    pub greq: u64,
    /// Primary target (node, address).
    pub primary: ReplicaCoord,
    /// All replica coordinates including the primary, in virtual-rank
    /// order (replication only).
    pub replicas: Vec<ReplicaCoord>,
    /// Data-chunk coordinates (EC only), one per data node.
    pub data_chunks: Vec<ReplicaCoord>,
    /// Parity coordinates (EC only).
    pub parities: Vec<ReplicaCoord>,
    /// EC chunk length (bytes per data chunk).
    pub chunk_len: u32,
    /// Logical file offset this placement writes at.
    pub offset: u64,
    /// Bytes by which this placement advanced the file's placement
    /// cursor (0 for retries and pure overwrites). Informational — the
    /// attr write-back uses the committed-size growth `commit_write`
    /// reports, not this placement-time figure.
    pub appended: u64,
    /// Striped plain-write targets, in file order (width > 1 layouts
    /// only; empty means "single extent at `primary`").
    pub stripes: Vec<StripeTarget>,
}

impl WritePlacement {
    /// Placement for a request that was rejected before placement (the
    /// failed-job record still carries a `WritePlacement`).
    pub fn rejected(greq: u64) -> WritePlacement {
        WritePlacement {
            greq,
            primary: ReplicaCoord { node: 0, addr: 0 },
            replicas: vec![],
            data_chunks: vec![],
            parities: vec![],
            chunk_len: 0,
            offset: 0,
            appended: 0,
            stripes: vec![],
        }
    }
}

/// One extent awaiting re-protection: a record of `file`'s extent map
/// with at least one shard on a failed node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RepairTask {
    pub file: u64,
    /// Record id within the file's extent map (commit order).
    pub rec: usize,
}

/// Observable repair-pipeline counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RepairStats {
    /// Tasks ever enqueued (dedup hits not counted).
    pub enqueued: u64,
    /// Tasks moved to (or inserted at) the queue front by a degraded
    /// read hit.
    pub promoted: u64,
    /// Repairs committed into extent maps.
    pub committed: u64,
    /// Tasks pushed back for another attempt after a transient failure.
    pub requeued: u64,
    /// Shards re-homed by committed repairs.
    pub shards_rehomed: u64,
    /// Tasks dropped by node-recovery reconciliation: their extent no
    /// longer references any failed node, so repairing them would be a
    /// no-op walk of the queue.
    pub dropped_on_recovery: u64,
    /// Shards re-adopted at recovery: still current in the extent map
    /// (never re-homed during the outage), so the recovered node's copy
    /// is live data again, not garbage.
    pub shards_readopted: u64,
}

/// The prioritized repair queue: FIFO for failure-scan enqueues, with
/// degraded-read hits promoting their extent to the front (the extent a
/// client is actively paying reconstruction for is the one to fix first).
/// Membership is deduplicated — an extent is queued at most once.
#[derive(Debug, Default)]
pub struct RepairQueue {
    q: VecDeque<RepairTask>,
    queued: HashSet<RepairTask>,
    pub stats: RepairStats,
}

impl RepairQueue {
    /// Enqueue at the back; returns false if already queued.
    pub fn push_back(&mut self, t: RepairTask) -> bool {
        if !self.queued.insert(t) {
            return false;
        }
        self.q.push_back(t);
        self.stats.enqueued += 1;
        true
    }

    /// Move `t` to the front (inserting it if absent): the degraded-read
    /// promotion path.
    pub fn promote(&mut self, t: RepairTask) {
        if self.queued.insert(t) {
            self.stats.enqueued += 1;
        } else if let Some(i) = self.q.iter().position(|&x| x == t) {
            if i == 0 {
                return; // already at the front; not a promotion
            }
            self.q.remove(i);
        }
        self.q.push_front(t);
        self.stats.promoted += 1;
    }

    /// Take the highest-priority task.
    pub fn pop(&mut self) -> Option<RepairTask> {
        let t = self.q.pop_front()?;
        self.queued.remove(&t);
        Some(t)
    }

    pub fn peek(&self) -> Option<RepairTask> {
        self.q.front().copied()
    }

    pub fn contains(&self, t: RepairTask) -> bool {
        self.queued.contains(&t)
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Drop every queued task `keep` rejects (preserving order for the
    /// rest), rebuild the dedup set, and return how many were dropped.
    /// Recovery reconciliation uses this to purge tasks made obsolete by
    /// a node coming back.
    pub fn retain_tasks(&mut self, mut keep: impl FnMut(&RepairTask) -> bool) -> u64 {
        let before = self.q.len();
        self.q.retain(|t| keep(t));
        self.queued = self.q.iter().copied().collect();
        (before - self.q.len()) as u64
    }
}

/// How one popped [`RepairTask`] gets executed on the data path.
#[derive(Clone, Debug)]
pub enum RepairPlan {
    /// Every shard is on a healthy node (the failure was transient, or an
    /// earlier repair already re-homed it): nothing to move.
    AlreadyHealthy,
    /// Erasure-coded stripe: fetch the k surviving shards in `fetch`
    /// (shard index, coordinate), reconstruct the shards in `rebuild`
    /// (data or parity), and write each to its pre-allocated spare
    /// coordinate.
    EcRebuild {
        scheme: RsScheme,
        chunk_len: u32,
        fetch: Vec<(usize, ReplicaCoord)>,
        rebuild: Vec<(usize, ReplicaCoord)>,
    },
    /// Replicated extent: copy `len` bytes from the surviving `src`
    /// replica to a spare coordinate per lost replica slot.
    ReplicaClone {
        len: u32,
        src: ReplicaCoord,
        dest: Vec<(usize, ReplicaCoord)>,
    },
}

impl RepairPlan {
    /// The (shard slot, spare coordinate) rewrites this plan commits once
    /// the data movement succeeds.
    pub fn replacements(&self) -> Vec<(usize, ReplicaCoord)> {
        match self {
            RepairPlan::AlreadyHealthy => vec![],
            RepairPlan::EcRebuild { rebuild, .. } => rebuild.clone(),
            RepairPlan::ReplicaClone { dest, .. } => dest.clone(),
        }
    }
}

/// Chunk/byte tally of stale copies awaiting reclamation on one node.
#[derive(Clone, Copy, Debug, Default)]
struct NodeLedger {
    chunks: u64,
    bytes: u64,
}

/// The control plane: management (authentication) + metadata (namespace,
/// layout, placement) services.
pub struct ControlPlane {
    key: MacKey,
    /// The hierarchical namespace + layout service.
    pub meta: MetadataService,
    files: HashMap<u64, FileMeta>,
    next_legacy: u64,
    next_greq: u64,
    next_nonce: u64,
    /// Storage nodes, by fabric node id.
    storage_nodes: Vec<NodeId>,
    /// Bump allocator per storage node for write placement.
    next_addr: HashMap<NodeId, u64>,
    /// Client metadata caches subscribed to invalidation callbacks.
    caches: Vec<Rc<RefCell<MetaCache>>>,
    /// Client read caches subscribed to extent-generation callbacks (the
    /// same event channel; these consume `LayoutChanged`).
    read_caches: Vec<Rc<RefCell<ReadCache>>>,
    /// Committed extents per file: where each byte range physically
    /// lives, filled in as writes complete (the read path's map).
    extents: HashMap<u64, ExtentMap>,
    /// Storage nodes currently marked failed (degraded-read routing).
    failed_nodes: HashSet<u32>,
    /// Stale physical copies stranded on failed nodes: shards whose
    /// extents were re-homed (or whose file was unlinked) during the
    /// outage. The live hosted gauges are decremented at re-home/unlink
    /// time; this ledger remembers the dead bytes still physically
    /// occupying the node so recovery reconciliation can reclaim them.
    orphaned: HashMap<u32, NodeLedger>,
    /// Extents awaiting background re-protection.
    pub repair_queue: RepairQueue,
    /// Rotates spare-node selection so repair placements spread.
    next_spare: usize,
    /// Per-storage-node stats sinks (index-aligned with `storage_nodes`),
    /// attached by the cluster builder so placement decisions are
    /// observable on the nodes they land on.
    storage_stats: Vec<SharedStorageStats>,
    /// Per-file sequential-scan detector over resolve traffic: when a
    /// file's resolves run back-to-back, the control plane publishes
    /// prefetch advisories to every registered read cache.
    scan_tracker: HashMap<u64, (u64, u32)>,
}

pub type SharedControl = Rc<RefCell<ControlPlane>>;

impl ControlPlane {
    pub fn new(key_seed: u64, storage_nodes: Vec<NodeId>) -> SharedControl {
        let next_addr = storage_nodes.iter().map(|&n| (n, 0x10_0000u64)).collect();
        let meta = MetadataService::new(storage_nodes.iter().map(|&n| n as u32).collect());
        Rc::new(RefCell::new(ControlPlane {
            key: MacKey::from_seed(key_seed),
            meta,
            files: HashMap::new(),
            next_legacy: 1,
            next_greq: 1,
            next_nonce: 1,
            storage_nodes,
            next_addr,
            caches: Vec::new(),
            read_caches: Vec::new(),
            extents: HashMap::new(),
            failed_nodes: HashSet::new(),
            orphaned: HashMap::new(),
            repair_queue: RepairQueue::default(),
            next_spare: 0,
            storage_stats: Vec::new(),
            scan_tracker: HashMap::new(),
        }))
    }

    /// The service-shared MAC key (installed into storage-node NIC memory).
    pub fn service_key(&self) -> MacKey {
        self.key
    }

    pub fn storage_nodes(&self) -> &[NodeId] {
        &self.storage_nodes
    }

    /// Subscribe a client cache to invalidation callbacks.
    pub fn register_cache(&mut self, cache: Rc<RefCell<MetaCache>>) {
        self.caches.push(cache);
    }

    /// Subscribe a client read cache to extent-generation callbacks
    /// (commits, overwrites, repair re-homing, unlink).
    pub fn register_read_cache(&mut self, cache: Rc<RefCell<ReadCache>>) {
        self.read_caches.push(cache);
    }

    /// Attach per-node stats sinks (index-aligned with `storage_nodes`).
    pub fn attach_storage_stats(&mut self, stats: Vec<SharedStorageStats>) {
        assert_eq!(stats.len(), self.storage_nodes.len());
        self.storage_stats = stats;
    }

    /// Fan the metadata service's mutation events out to every registered
    /// client cache (the callback channel).
    fn publish_invalidations(&mut self) {
        let events = self.meta.take_events();
        if events.is_empty() {
            return;
        }
        for cache in &self.caches {
            let mut c = cache.borrow_mut();
            for ev in &events {
                match ev {
                    MetaEvent::Changed { path } => c.invalidate_path(path),
                    MetaEvent::SubtreeGone { path } => c.invalidate_subtree(path),
                    // Data-generation + prefetch events: read caches only.
                    MetaEvent::LayoutChanged { .. } | MetaEvent::PrefetchHint { .. } => {}
                }
            }
        }
        for cache in &self.read_caches {
            let mut c = cache.borrow_mut();
            for ev in &events {
                match ev {
                    MetaEvent::LayoutChanged { ino, generation } => {
                        c.note_generation(*ino, *generation);
                    }
                    MetaEvent::PrefetchHint { ino, offset, len } => {
                        c.note_hint(*ino, *offset, *len);
                    }
                    _ => {}
                }
            }
        }
    }

    fn home_of(&self, layout: &StripedLayout) -> usize {
        self.storage_nodes
            .iter()
            .position(|&n| n as u32 == layout.nodes[0])
            .expect("layout node")
    }

    fn install_file(&mut self, attr: &InodeAttr, layout: StripedLayout, policy: FilePolicy) {
        let meta = FileMeta {
            id: attr.ino,
            size: attr.size,
            cursor: attr.size,
            policy,
            home: self.home_of(&layout),
            layout,
        };
        self.files.insert(attr.ino, meta);
    }

    /// Create a file with the given policy (legacy flat API): parked under
    /// `/.volatile/`, single-node layout assigned round-robin.
    pub fn create_file(&mut self, size: u64, policy: FilePolicy) -> FileMeta {
        let name = format!("/.volatile/f{}", self.next_legacy);
        self.next_legacy += 1;
        self.meta.ns.mkdir_p("/.volatile", 0).expect("legacy dir");
        let meta = self
            .create_file_at(&name, LayoutSpec::SINGLE, policy)
            .expect("fresh legacy path");
        // Legacy callers pre-declare the size; advance both the committed
        // size and the cursor so the first placement appends after it,
        // matching the seed behavior.
        let m = self.files.get_mut(&meta.id).expect("just created");
        m.size = size;
        m.cursor = size;
        m.clone()
    }

    /// Create a file at `path` with a striped layout. The parent
    /// directory must exist (`mkdir`/`mkdir_p` first).
    pub fn create_file_at(
        &mut self,
        path: &str,
        spec: LayoutSpec,
        policy: FilePolicy,
    ) -> Result<FileMeta, MetaError> {
        let (attr, layout) = self.meta.create(path, spec, policy.clone(), 0)?;
        self.install_file(&attr, layout, policy);
        self.publish_invalidations();
        Ok(self.files[&attr.ino].clone())
    }

    /// Metadata lookup by file id. A miss is a typed error, not a panic
    /// or a silent `None`.
    pub fn lookup(&self, file: u64) -> Result<&FileMeta, MetaError> {
        self.files.get(&file).ok_or(MetaError::UnknownFile(file))
    }

    /// Path lookup (counts as one metadata round-trip).
    pub fn lookup_path(&mut self, path: &str) -> Result<InodeAttr, MetaError> {
        self.meta.lookup(path)
    }

    /// Path lookup returning what a client cache stores: attrs + layout
    /// for files.
    pub fn lookup_entry(
        &mut self,
        path: &str,
    ) -> Result<(InodeAttr, Option<StripedLayout>), MetaError> {
        self.meta.lookup(path)?; // the counted round-trip
        self.peek_entry(path)
    }

    /// Uncounted lookup for cache refills: the caller already paid the
    /// round-trip (e.g. a create response) and only needs the entry.
    pub fn peek_entry(&self, path: &str) -> Result<(InodeAttr, Option<StripedLayout>), MetaError> {
        let attr = self.meta.ns.lookup(path)?;
        let layout = if attr.kind == nadfs_meta::InodeKind::File {
            self.meta
                .ns
                .inode(attr.ino)?
                .file()
                .map(|f| f.layout.clone())
        } else {
            None
        };
        Ok((attr, layout))
    }

    pub fn mkdir(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let r = self.meta.mkdir(path, now_ns);
        self.publish_invalidations();
        r
    }

    pub fn mkdir_p(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let r = self.meta.mkdir_p(path, now_ns);
        self.publish_invalidations();
        r
    }

    pub fn readdir(&mut self, path: &str) -> Result<Vec<(String, InodeAttr)>, MetaError> {
        self.meta.readdir(path)
    }

    pub fn rename(&mut self, from: &str, to: &str, now_ns: u64) -> Result<(), MetaError> {
        let r = self.meta.rename(from, to, now_ns);
        if let Ok(Some(replaced)) = r {
            // A POSIX replace deletes the target inode: drop its
            // placement state too, exactly like an unlink.
            self.files.remove(&replaced);
            if let Some(map) = self.extents.remove(&replaced) {
                for rec in map.records() {
                    self.unhost_record(rec);
                }
            }
            self.meta.note_extents_gone(replaced);
        }
        self.publish_invalidations();
        r.map(|_| ())
    }

    /// Unlink a file or empty directory; a removed file's placement state
    /// is dropped with it.
    pub fn unlink(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let attr = self.meta.unlink(path, now_ns)?;
        self.files.remove(&attr.ino);
        if let Some(map) = self.extents.remove(&attr.ino) {
            for rec in map.records() {
                self.unhost_record(rec);
            }
        }
        self.meta.note_extents_gone(attr.ino);
        self.publish_invalidations();
        Ok(attr)
    }

    /// Apply a client's write-back attribute flush. Applied updates
    /// publish `Changed` events, so other clients' cached attrs for the
    /// flushed files are invalidated.
    pub fn flush_attrs(
        &mut self,
        updates: &[(u64, nadfs_meta::DirtyAttr)],
    ) -> Result<(), MetaError> {
        let r = self.meta.flush_attrs(updates);
        self.publish_invalidations();
        r
    }

    /// Management service: authenticate a client and issue a capability
    /// for `file` (§IV — signed with the service-shared key).
    pub fn issue_capability(
        &mut self,
        client: u32,
        file: u64,
        rights: Rights,
        expires_at_ns: u64,
    ) -> Capability {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        Capability::issue(&self.key, client, file, rights, expires_at_ns, nonce)
    }

    fn alloc_on(&mut self, node: NodeId, len: u64) -> u64 {
        let a = self.next_addr.get_mut(&node).expect("storage node");
        let addr = *a;
        // Page-align so concurrent placements never overlap.
        *a += len.div_ceil(4096).max(1) * 4096;
        addr
    }

    fn count_stripe_placement(&mut self, node: NodeId) {
        if self.storage_stats.is_empty() {
            return;
        }
        if let Some(i) = self.storage_nodes.iter().position(|&n| n == node) {
            self.storage_stats[i].borrow_mut().stripe_chunks_placed += 1;
        }
    }

    /// Allocate a fresh request id.
    pub fn alloc_greq(&mut self) -> u64 {
        let g = self.next_greq;
        self.next_greq += 1;
        g
    }

    /// Metadata service: place one write of `len` bytes for `file`,
    /// appending at the file's placement cursor. Unknown file ids are a
    /// typed error the client surfaces as a failed job.
    pub fn place_write(&mut self, file: u64, len: u32) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::Append)
    }

    /// Place a write at an explicit logical offset (`pwrite` semantics):
    /// the placement cursor only advances past `offset + len` when the
    /// write extends the file, so overwrites don't grow it.
    pub fn place_write_at(
        &mut self,
        file: u64,
        len: u32,
        offset: u64,
    ) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::At(offset))
    }

    /// Re-place a retried write at its original logical offset: fresh
    /// physical addresses (the old descriptors are gone), but the
    /// placement cursor does NOT advance again — a retry re-writes the
    /// same logical extent, it does not append new bytes.
    pub fn replace_write(
        &mut self,
        file: u64,
        len: u32,
        offset: u64,
    ) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::Retry(offset))
    }

    fn place_write_inner(
        &mut self,
        file: u64,
        len: u32,
        mode: PlaceMode,
    ) -> Result<WritePlacement, MetaError> {
        let meta = self.lookup(file)?.clone();
        let greq = self.alloc_greq();
        let n = self.storage_nodes.len();
        let home = meta.home;
        let base = match mode {
            PlaceMode::Append => meta.cursor,
            PlaceMode::At(o) => o,
            PlaceMode::Retry(o) => o,
        };
        // Cursor: appends and extending writes advance it; retries never
        // do (their original placement already did). Only the cursor
        // moves here — the committed size advances when the write's
        // placement is committed, so a rejected or abandoned write never
        // inflates what `stat` and read planning see.
        let appended = match mode {
            PlaceMode::Retry(_) => 0,
            _ => (base + len as u64).saturating_sub(meta.cursor),
        };
        if appended > 0 {
            if let Some(f) = self.files.get_mut(&file) {
                f.cursor += appended;
            }
        }
        let placement = match meta.policy {
            FilePolicy::Plain => {
                // Striped placement: split the extent over the file's
                // layout; width-1 layouts degenerate to the seed's
                // single-node placement.
                let extents = meta.layout.extents(base, len);
                let mut stripes = Vec::with_capacity(extents.len());
                for e in &extents {
                    let node = e.node as NodeId;
                    let addr = self.alloc_on(node, e.len.max(1) as u64);
                    self.count_stripe_placement(node);
                    stripes.push(StripeTarget {
                        coord: ReplicaCoord { node: e.node, addr },
                        len: e.len,
                        file_offset: e.file_offset,
                    });
                }
                let primary = stripes[0].coord;
                WritePlacement {
                    greq,
                    primary,
                    replicas: vec![primary],
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                    offset: base,
                    appended,
                    stripes: if stripes.len() > 1 { stripes } else { vec![] },
                }
            }
            FilePolicy::Replicated { k, .. } => {
                assert!(k as usize <= n, "replication factor exceeds cluster");
                let mut replicas = Vec::with_capacity(k as usize);
                for r in 0..k as usize {
                    let node = self.storage_nodes[(home + r) % n];
                    let addr = self.alloc_on(node, len as u64);
                    replicas.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: replicas[0],
                    replicas,
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                    offset: base,
                    appended,
                    stripes: vec![],
                }
            }
            FilePolicy::ErasureCoded { scheme } => {
                let (k, m) = (scheme.k as usize, scheme.m as usize);
                assert!(k + m <= n, "RS(k,m) needs k+m storage nodes");
                let chunk_len = (len as u64).div_ceil(k as u64).max(1) as u32;
                let mut data_chunks = Vec::with_capacity(k);
                for j in 0..k {
                    let node = self.storage_nodes[(home + j) % n];
                    let addr = self.alloc_on(node, chunk_len as u64);
                    data_chunks.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                let mut parities = Vec::with_capacity(m);
                for p in 0..m {
                    let node = self.storage_nodes[(home + k + p) % n];
                    // Parity region: final parity plus k staging slots
                    // (used by the INEC firmware path).
                    let addr = self.alloc_on(node, chunk_len as u64 * (1 + k as u64));
                    parities.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: data_chunks[0],
                    replicas: vec![],
                    data_chunks,
                    parities,
                    chunk_len,
                    offset: base,
                    appended,
                    stripes: vec![],
                }
            }
        };
        Ok(placement)
    }

    /// Commit a completed write's placement into the file's extent map
    /// (called by clients when the write acknowledges `Ok`): this is what
    /// makes the bytes *readable* — and what advances the committed size
    /// (`stat` / read-plan clamping). The map's generation bump is fanned
    /// out to registered read caches so cached data for the file drops.
    /// A file unlinked while the write was in flight is silently skipped.
    /// Returns the committed-size growth — what the client's write-back
    /// attr update must carry (placement-time deltas would over-count
    /// when an earlier placement was abandoned and never committed).
    pub fn commit_write(&mut self, file: u64, placement: &WritePlacement, len: u32) -> u64 {
        if len == 0 || !self.files.contains_key(&file) {
            return 0;
        }
        let scheme = match self.files.get(&file).map(|m| &m.policy) {
            Some(FilePolicy::ErasureCoded { scheme }) => Some(*scheme),
            _ => None,
        };
        let map = self.extents.entry(file).or_default();
        let first_new = map.len();
        if !placement.stripes.is_empty() {
            for st in &placement.stripes {
                map.record(ExtentRecord::Plain {
                    offset: st.file_offset,
                    len: st.len,
                    coord: st.coord,
                });
            }
        } else if !placement.data_chunks.is_empty() {
            let scheme = scheme.expect("EC placement on a non-EC file");
            map.record(ExtentRecord::Ec {
                offset: placement.offset,
                len,
                chunk_len: placement.chunk_len,
                scheme,
                data: placement.data_chunks.clone(),
                parities: placement.parities.clone(),
            });
        } else if placement.replicas.len() > 1 {
            map.record(ExtentRecord::Replicated {
                offset: placement.offset,
                len,
                replicas: placement.replicas.clone(),
            });
        } else {
            map.record(ExtentRecord::Plain {
                offset: placement.offset,
                len,
                coord: placement.primary,
            });
        }
        let generation = map.generation();
        // The bytes are durable now: this (and only this) advances the
        // committed size the read path clamps against.
        let mut growth = 0;
        if let Some(f) = self.files.get_mut(&file) {
            let new_size = f.size.max(placement.offset + len as u64);
            growth = new_size - f.size;
            f.size = new_size;
        }
        // The committed shards are live on their nodes now: charge the
        // hosted-capacity gauges per coordinate.
        {
            let map = &self.extents[&file];
            for rec in first_new..map.len() {
                let r = &map.records()[rec];
                let bytes = r.shard_len() as u64;
                for (_, coord) in r.shard_coords() {
                    self.hosted_add(coord.node, bytes);
                }
            }
        }
        // A write that raced a failure commits an extent referencing an
        // already-failed node (the placement predates `mark_node_failed`,
        // whose scan could not see this record): queue it now, or the
        // mid-write kill would leave a permanently degraded extent.
        if !self.failed_nodes.is_empty() {
            let map = &self.extents[&file];
            for rec in first_new..map.len() {
                if self
                    .failed_nodes
                    .iter()
                    .any(|&n| map.records()[rec].references_node(n))
                {
                    self.repair_queue.push_back(RepairTask { file, rec });
                }
            }
        }
        // Fan the generation bump out to client read caches (same
        // callback channel every namespace mutation rides).
        self.meta.note_extent_commit(file, generation);
        self.publish_invalidations();
        growth
    }

    /// Mark a storage node failed: reads route around it (replica
    /// failover, degraded EC reconstruction), and every committed extent
    /// with a shard on the node is enqueued for background re-protection.
    pub fn mark_node_failed(&mut self, node: u32) {
        if !self.failed_nodes.insert(node) {
            return; // already failed; extents are already queued
        }
        // The extent table is a HashMap; enqueue in sorted (file, rec)
        // order so the repair queue — and everything downstream of it
        // (placement, bandwidth throttling cut points) — is identical
        // across runs with the same seed.
        let mut tasks: Vec<RepairTask> = Vec::new();
        for (&file, map) in &self.extents {
            for rec in map.affected_records(node) {
                tasks.push(RepairTask { file, rec });
            }
        }
        tasks.sort_unstable_by_key(|t| (t.file, t.rec));
        for t in tasks {
            self.repair_queue.push_back(t);
        }
    }

    /// Bring a storage node back and reconcile its state with what
    /// changed while it was down. Un-failing alone would leak: repairs
    /// re-homed shards away and unlinks dropped whole files during the
    /// outage, so the node comes back holding copies the metadata no
    /// longer references. Reconciliation:
    ///
    /// 1. garbage-collects those stale copies (the orphan ledger built up
    ///    at re-home/unlink time) into the node's reclaim counters,
    /// 2. re-adopts shards still current in the extent map — they are
    ///    live data again and keep their place in the hosted gauges,
    /// 3. drops repair-queue tasks made obsolete by the recovery (their
    ///    extent no longer references any failed node).
    pub fn mark_node_recovered(&mut self, node: u32) {
        if !self.failed_nodes.remove(&node) {
            return; // not failed; nothing to reconcile
        }
        if let Some(led) = self.orphaned.remove(&node) {
            if let Some(stats) = self.node_stats(node) {
                let mut s = stats.borrow_mut();
                s.stale_chunks_reclaimed += led.chunks;
                s.stale_bytes_reclaimed += led.bytes;
            }
        }
        let readopted: u64 = self
            .extents
            .values()
            .flat_map(|m| m.records())
            .map(|r| {
                r.shard_coords()
                    .iter()
                    .filter(|(_, c)| c.node == node)
                    .count() as u64
            })
            .sum();
        self.repair_queue.stats.shards_readopted += readopted;
        let extents = &self.extents;
        let failed = &self.failed_nodes;
        let dropped = self.repair_queue.retain_tasks(|t| {
            extents
                .get(&t.file)
                .and_then(|m| m.records().get(t.rec))
                .is_some_and(|r| failed.iter().any(|&n| r.references_node(n)))
        });
        self.repair_queue.stats.dropped_on_recovery += dropped;
    }

    pub fn failed_nodes(&self) -> &HashSet<u32> {
        &self.failed_nodes
    }

    /// Resolve a ranged read into fetchable pieces: clamp to the
    /// committed size (short reads past EOF, like `pread`), then walk
    /// the extent map routing around failed nodes. Any stripe the plan
    /// serves through degraded reconstruction is promoted to the front of
    /// the repair queue — the client is paying for that extent right now.
    /// Counts one control round-trip in the metadata ledger (the RPC a
    /// client read cache absorbs).
    pub fn resolve_read(
        &mut self,
        file: u64,
        offset: u64,
        len: u32,
    ) -> Result<ReadPlan, MetaError> {
        let meta = self.lookup(file)?;
        // Saturate: `offset + len` can exceed u64::MAX (a hostile or
        // buggy offset) — the overflow would panic in debug builds and
        // wrap in release, turning an out-of-range read into a bogus
        // plan. Saturating yields `end == size`, hence a clean
        // zero-length short read.
        let end = offset.saturating_add(len as u64).min(meta.size);
        let clamped = end.saturating_sub(offset) as u32;
        self.meta.stats.resolves += 1;
        let plan = match self.extents.get(&file) {
            Some(map) => map.resolve(offset, clamped, &self.failed_nodes),
            // Nothing committed yet: the whole (clamped) range is a hole.
            None => ExtentMap::new().resolve(offset, clamped, &self.failed_nodes),
        }?;
        for piece in &plan.pieces {
            if let ReadPiece::Degraded { rec, .. } = piece {
                self.repair_queue.promote(RepairTask { file, rec: *rec });
            }
        }
        // Sequential-scan detector over resolve traffic: two back-to-back
        // resolves of the same file advertise the region ahead of the
        // reader to every subscribed read cache (including other clients,
        // which is where an advisory beats purely local detection).
        if clamped > 0 {
            let entry = self.scan_tracker.entry(file).or_insert((0, 0));
            let sequential = entry.1 > 0 && offset == entry.0;
            entry.1 = if sequential { entry.1 + 1 } else { 1 };
            entry.0 = end;
            if sequential && entry.1 >= 3 {
                let hint_len = (clamped as u64 * 4).min(1 << 20) as u32;
                self.meta.note_prefetch_hint(file, end, hint_len);
                self.publish_invalidations();
            }
        }
        Ok(plan)
    }

    /// The extent-map generation of `file` (bumped by commits and repair
    /// re-homing; 0 before the first commit).
    pub fn extent_generation(&self, file: u64) -> u64 {
        self.extents.get(&file).map_or(0, |m| m.generation())
    }

    /// Pick a spare node for a repair placement: healthy, not already
    /// hosting a shard of the extent, rotating so consecutive repairs
    /// spread. `None` when the cluster has no eligible node.
    fn choose_spare(&mut self, exclude: &HashSet<u32>) -> Option<NodeId> {
        let n = self.storage_nodes.len();
        for i in 0..n {
            let node = self.storage_nodes[(self.next_spare + i) % n];
            let id = node as u32;
            if !self.failed_nodes.contains(&id) && !exclude.contains(&id) {
                self.next_spare = (self.next_spare + i + 1) % n;
                return Some(node);
            }
        }
        None
    }

    fn count_repair_placement(&mut self, node: u32) {
        if let Some(i) = self.storage_nodes.iter().position(|&n| n as u32 == node) {
            if let Some(stats) = self.storage_stats.get(i) {
                stats.borrow_mut().repair_chunks_hosted += 1;
            }
        }
    }

    /// The stats sink for storage node `node`, if one is attached (unit
    /// tests build planes without sinks; every ledger update degrades to
    /// a no-op there).
    fn node_stats(&self, node: u32) -> Option<&SharedStorageStats> {
        self.storage_nodes
            .iter()
            .position(|&n| n as u32 == node)
            .and_then(|i| self.storage_stats.get(i))
    }

    /// A shard became live on `node`: bump its hosted gauges.
    fn hosted_add(&self, node: u32, bytes: u64) {
        if let Some(stats) = self.node_stats(node) {
            let mut s = stats.borrow_mut();
            s.chunks_hosted += 1;
            s.bytes_hosted += bytes;
        }
    }

    /// A shard stopped being live on `node` (re-homed away, or its file
    /// unlinked): drop it from the hosted gauges. The gauges track what
    /// the extent maps currently say, so this happens at the metadata
    /// mutation — even while the node is down (the stale physical copy
    /// moves to the orphan ledger via [`Self::orphan_add`]).
    fn hosted_sub(&self, node: u32, bytes: u64) {
        if let Some(stats) = self.node_stats(node) {
            let mut s = stats.borrow_mut();
            s.chunks_hosted = s.chunks_hosted.saturating_sub(1);
            s.bytes_hosted = s.bytes_hosted.saturating_sub(bytes);
        }
    }

    /// Record a stale copy stranded on failed node `node`: the metadata
    /// no longer references it, but the node was down when it died, so
    /// the physical chunk sits there until recovery reconciliation.
    fn orphan_add(&mut self, node: u32, bytes: u64) {
        let led = self.orphaned.entry(node).or_default();
        led.chunks += 1;
        led.bytes += bytes;
    }

    /// Un-home one extent record's shards after the record leaves the
    /// metadata (unlink / rename-replace): every coordinate drops off
    /// the hosted gauges, and coordinates on currently-failed nodes are
    /// remembered as orphans for recovery-time reclamation.
    fn unhost_record(&mut self, rec: &ExtentRecord) {
        let bytes = rec.shard_len() as u64;
        for (_, coord) in rec.shard_coords() {
            self.hosted_sub(coord.node, bytes);
            if self.failed_nodes.contains(&coord.node) {
                self.orphan_add(coord.node, bytes);
            }
        }
    }

    /// Bytes the extent maps currently place across the cluster — the
    /// conservation target for the hosted gauges: at any point,
    /// `sum(bytes_hosted) == live_extent_bytes()`.
    pub fn live_extent_bytes(&self) -> u64 {
        self.extents
            .values()
            .flat_map(|m| m.records())
            .map(|r| r.shard_len() as u64 * r.shard_coords().len() as u64)
            .sum()
    }

    /// Shards the extent maps currently place across the cluster — the
    /// conservation target for the `chunks_hosted` gauges.
    pub fn live_extent_shards(&self) -> u64 {
        self.extents
            .values()
            .flat_map(|m| m.records())
            .map(|r| r.shard_coords().len() as u64)
            .sum()
    }

    /// Stale copies currently stranded on `node` as `(chunks, bytes)` —
    /// nonzero only while the node is failed.
    pub fn orphaned_on(&self, node: u32) -> (u64, u64) {
        let led = self.orphaned.get(&node).copied().unwrap_or_default();
        (led.chunks, led.bytes)
    }

    /// Plan the repair of one queued extent: which surviving shards to
    /// fetch, which shards to rebuild, and the spare coordinates (freshly
    /// allocated here) the re-protected data will live at. Unrepairable
    /// extents are typed errors: a plain extent on a failed node has no
    /// redundancy ([`MetaError::DataUnavailable`]), an EC stripe with
    /// fewer than k survivors is lost ([`MetaError::TooManyFailures`]),
    /// and a cluster with every healthy node already holding a shard has
    /// nowhere to re-protect to ([`MetaError::NoSpareNode`]).
    pub fn plan_repair(&mut self, task: RepairTask) -> Result<RepairPlan, MetaError> {
        let record = self
            .extents
            .get(&task.file)
            .and_then(|m| m.records().get(task.rec))
            .ok_or(MetaError::UnknownFile(task.file))?
            .clone();
        let failed = self.failed_nodes.clone();
        match record {
            ExtentRecord::Plain { coord, .. } => {
                if failed.contains(&coord.node) {
                    Err(MetaError::DataUnavailable { node: coord.node })
                } else {
                    Ok(RepairPlan::AlreadyHealthy)
                }
            }
            ExtentRecord::Replicated { len, replicas, .. } => {
                let missing: Vec<usize> = replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| failed.contains(&c.node))
                    .map(|(i, _)| i)
                    .collect();
                if missing.is_empty() {
                    return Ok(RepairPlan::AlreadyHealthy);
                }
                let Some(src) = replicas.iter().find(|c| !failed.contains(&c.node)) else {
                    return Err(MetaError::DataUnavailable {
                        node: replicas.first().map_or(0, |c| c.node),
                    });
                };
                let mut in_use: HashSet<u32> = replicas
                    .iter()
                    .filter(|c| !failed.contains(&c.node))
                    .map(|c| c.node)
                    .collect();
                let mut dest = Vec::with_capacity(missing.len());
                for slot in missing {
                    let node = self.choose_spare(&in_use).ok_or(MetaError::NoSpareNode)?;
                    in_use.insert(node as u32);
                    let addr = self.alloc_on(node, len.max(1) as u64);
                    dest.push((
                        slot,
                        ReplicaCoord {
                            node: node as u32,
                            addr,
                        },
                    ));
                }
                Ok(RepairPlan::ReplicaClone {
                    len,
                    src: *src,
                    dest,
                })
            }
            ExtentRecord::Ec {
                offset,
                chunk_len,
                scheme,
                data,
                parities,
                ..
            } => {
                let k = scheme.k as usize;
                let shards: Vec<ReplicaCoord> = data.iter().chain(&parities).copied().collect();
                let missing: Vec<usize> = shards
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| failed.contains(&c.node))
                    .map(|(i, _)| i)
                    .collect();
                if missing.is_empty() {
                    return Ok(RepairPlan::AlreadyHealthy);
                }
                let fetch: Vec<(usize, ReplicaCoord)> = shards
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !failed.contains(&c.node))
                    .map(|(i, c)| (i, *c))
                    .take(k)
                    .collect();
                if fetch.len() < k {
                    return Err(MetaError::TooManyFailures {
                        stripe_offset: offset,
                    });
                }
                let mut in_use: HashSet<u32> = shards
                    .iter()
                    .filter(|c| !failed.contains(&c.node))
                    .map(|c| c.node)
                    .collect();
                let mut rebuild = Vec::with_capacity(missing.len());
                for slot in missing {
                    let node = self.choose_spare(&in_use).ok_or(MetaError::NoSpareNode)?;
                    in_use.insert(node as u32);
                    // Parity spares keep the (1 + k)-slot staging region
                    // the INEC firmware path expects for this address
                    // range, matching the original placement.
                    let span = if slot >= k {
                        chunk_len as u64 * (1 + k as u64)
                    } else {
                        chunk_len as u64
                    };
                    let addr = self.alloc_on(node, span.max(1));
                    rebuild.push((
                        slot,
                        ReplicaCoord {
                            node: node as u32,
                            addr,
                        },
                    ));
                }
                Ok(RepairPlan::EcRebuild {
                    scheme,
                    chunk_len,
                    fetch,
                    rebuild,
                })
            }
        }
    }

    /// Commit a finished repair: rewrite the extent's shard coordinates
    /// to the spare locations, bump the map generation, and invalidate
    /// client caches through the namespace's version/callback machinery
    /// (the same channel every other metadata mutation rides).
    pub fn commit_repair(
        &mut self,
        task: RepairTask,
        replacements: &[(usize, ReplicaCoord)],
        now_ns: u64,
    ) -> Result<(), MetaError> {
        let map = self
            .extents
            .get_mut(&task.file)
            .ok_or(MetaError::UnknownFile(task.file))?;
        // Snapshot the coordinates being replaced BEFORE the rehome
        // rewrites them: those copies stop being live data the moment the
        // map points elsewhere, and the ones on failed nodes become
        // orphans to reclaim at recovery.
        let (old_coords, shard_bytes) = {
            let rec = map.records().get(task.rec).ok_or(MetaError::NotFound)?;
            let coords = rec.shard_coords();
            let old: Vec<ReplicaCoord> = replacements
                .iter()
                .filter_map(|&(slot, _)| coords.iter().find(|(s, _)| *s == slot).map(|&(_, c)| c))
                .collect();
            (old, rec.shard_len() as u64)
        };
        map.rehome(task.rec, replacements)?;
        let generation = map.generation();
        self.repair_queue.stats.committed += 1;
        self.repair_queue.stats.shards_rehomed += replacements.len() as u64;
        for &(_, coord) in replacements {
            self.count_repair_placement(coord.node);
            self.hosted_add(coord.node, shard_bytes);
        }
        for coord in old_coords {
            self.hosted_sub(coord.node, shard_bytes);
            if self.failed_nodes.contains(&coord.node) {
                self.orphan_add(coord.node, shard_bytes);
            }
        }
        // A spare can itself fail while the repair's data movement is in
        // flight; the failure scan ran before this rehome so it could not
        // see the new coordinates. Re-enqueue the extent — especially for
        // replicated records, which fail over silently and would
        // otherwise run with reduced redundancy forever.
        if replacements
            .iter()
            .any(|(_, c)| self.failed_nodes.contains(&c.node))
        {
            self.repair_queue.push_back(task);
        }
        self.meta.note_layout_change(task.file, generation, now_ns);
        self.publish_invalidations();
        Ok(())
    }

    /// Take the next repair task (highest priority first).
    pub fn pop_repair(&mut self) -> Option<RepairTask> {
        self.repair_queue.pop()
    }

    /// Put a task back for another attempt after a transient failure.
    pub fn requeue_repair(&mut self, task: RepairTask) {
        if self.repair_queue.push_back(task) {
            self.repair_queue.stats.requeued += 1;
        }
    }
}

/// How a placement relates to the file's cursor.
#[derive(Clone, Copy, Debug)]
enum PlaceMode {
    /// Append at the cursor (the cursor advances by `len`).
    Append,
    /// Explicit offset; the cursor advances only past `offset + len`.
    At(u64),
    /// Busy-retry re-placement at the original offset; no cursor motion.
    Retry(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadfs_wire::{BcastStrategy, RsScheme};

    fn plane() -> SharedControl {
        ControlPlane::new(7, vec![4, 5, 6, 7, 8])
    }

    #[test]
    fn create_and_lookup() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(1 << 20, FilePolicy::Plain);
        assert_eq!(cp.borrow().lookup(f.id).expect("found").size, 1 << 20);
        assert_eq!(
            cp.borrow().lookup(999).unwrap_err(),
            MetaError::UnknownFile(999),
            "misses are typed errors"
        );
    }

    #[test]
    fn capability_verifies_under_service_key() {
        let cp = plane();
        let cap = cp.borrow_mut().issue_capability(3, 1, Rights::RW, 1_000);
        let key = cp.borrow().service_key();
        assert!(cap.verify(&key, 0, Rights::WRITE).is_ok());
    }

    #[test]
    fn replicated_placement_uses_distinct_nodes() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 8192).expect("place");
        assert_eq!(p.replicas.len(), 4);
        let mut nodes: Vec<u32> = p.replicas.iter().map(|r| r.node).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "replicas on distinct nodes");
    }

    #[test]
    fn ec_placement_separates_data_and_parity() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 1000).expect("place");
        assert_eq!(p.data_chunks.len(), 3);
        assert_eq!(p.parities.len(), 2);
        assert_eq!(p.chunk_len, 1000);
        let mut all: Vec<u32> = p
            .data_chunks
            .iter()
            .chain(&p.parities)
            .map(|c| c.node)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 5, "k+m distinct failure domains");
    }

    #[test]
    fn placements_do_not_overlap() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let a = cp.borrow_mut().place_write(f.id, 10_000).expect("place");
        let b = cp.borrow_mut().place_write(f.id, 10_000).expect("place");
        assert_eq!(a.primary.node, b.primary.node);
        assert!(b.primary.addr >= a.primary.addr + 10_000);
        assert!(b.greq > a.greq);
    }

    #[test]
    fn namespace_files_stripe_over_distinct_nodes() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/data", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/data/big", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        assert_eq!(f.layout.stripe_width(), 3);
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        assert_eq!(p.stripes.len(), 3, "one extent per stripe unit");
        let mut nodes: Vec<u32> = p.stripes.iter().map(|s| s.coord.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "stripe units on distinct nodes");
        // The next append continues round-robin from the cursor.
        let q = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert!(q.stripes.is_empty(), "single-extent write");
        assert_eq!(q.primary.node, p.stripes[0].coord.node);
    }

    #[test]
    fn rename_replace_drops_replaced_placement_state() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let loser = cp
            .borrow_mut()
            .create_file_at("/d/loser", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let winner = cp
            .borrow_mut()
            .create_file_at("/d/winner", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        cp.borrow_mut()
            .rename("/d/winner", "/d/loser", 1)
            .expect("replace");
        // The replaced file is gone everywhere: namespace AND placement.
        assert_eq!(
            cp.borrow().lookup(loser.id).unwrap_err(),
            MetaError::UnknownFile(loser.id),
            "replaced file's placement state is dropped like an unlink"
        );
        assert!(cp.borrow_mut().place_write(loser.id, 64).is_err());
        assert!(cp.borrow().lookup(winner.id).is_ok());
        assert_eq!(
            cp.borrow_mut().lookup_path("/d/loser").expect("path").ino,
            winner.id
        );
    }

    #[test]
    fn attr_flush_skips_vanished_files_and_applies_the_rest() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let gone = cp
            .borrow_mut()
            .create_file_at("/d/gone", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let kept = cp
            .borrow_mut()
            .create_file_at("/d/kept", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        cp.borrow_mut().unlink("/d/gone", 1).expect("unlink");
        let updates = vec![
            (
                gone.id,
                nadfs_meta::DirtyAttr {
                    appended: 100,
                    mtime_ns: 2,
                },
            ),
            (
                kept.id,
                nadfs_meta::DirtyAttr {
                    appended: 4096,
                    mtime_ns: 2,
                },
            ),
        ];
        cp.borrow_mut()
            .flush_attrs(&updates)
            .expect("partial flush ok");
        assert_eq!(
            cp.borrow_mut().lookup_path("/d/kept").expect("kept").size,
            4096,
            "the surviving file's update is not lost to the vanished one"
        );
    }

    #[test]
    fn retry_replacement_does_not_advance_the_cursor_twice() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/s", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        let first = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert_eq!(first.offset, 0);
        // A Busy retry re-places the SAME logical extent...
        let retry = cp
            .borrow_mut()
            .replace_write(f.id, 4096, first.offset)
            .expect("re-place");
        assert_eq!(retry.offset, 0);
        assert_eq!(retry.primary.node, first.primary.node, "same stripe unit");
        assert_ne!(retry.primary.addr, first.primary.addr, "fresh address");
        // ...so the next append continues where the first write ended,
        // not two extents later.
        let next = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert_eq!(next.offset, 4096);
        assert_ne!(
            next.primary.node, first.primary.node,
            "stripe advanced once"
        );
    }

    #[test]
    fn commit_then_resolve_roundtrips_striped_extents() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/s", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        // A cross-stripe subrange resolves to the committed coordinates.
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 4000, 5000)
            .expect("resolve");
        assert_eq!(plan.len, 5000);
        let mut covered = 0u32;
        for piece in &plan.pieces {
            let nadfs_meta::ReadPiece::Direct { len, .. } = piece else {
                panic!("healthy striped read must be all direct pieces: {piece:?}");
            };
            covered += len;
        }
        assert_eq!(covered, 5000);
    }

    #[test]
    fn uncommitted_writes_do_not_extend_the_readable_size() {
        // The placement-time size-inflation regression: a placed but
        // never-committed write (rejected capability, client died before
        // the ack) must not move `stat` or the read clamp — planning
        // holes for bytes that were never durable is phantom EOF state.
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let p = cp.borrow_mut().place_write(f.id, 1000).expect("place");
        assert_eq!(
            cp.borrow().lookup(f.id).expect("meta").cursor,
            1000,
            "the cursor runs ahead so pipelined appends never overlap"
        );
        assert_eq!(
            cp.borrow().lookup(f.id).expect("meta").size,
            0,
            "committed size does not move at placement"
        );
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 5000)
            .expect("resolve");
        assert_eq!(plan.len, 0, "nothing durable: a clean zero-length read");
        // Once the write commits, the same resolve serves the bytes.
        cp.borrow_mut().commit_write(f.id, &p, 1000);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 1000);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 5000)
            .expect("resolve");
        assert_eq!(plan.len, 1000, "clamped at the committed size");
        assert!(plan
            .pieces
            .iter()
            .all(|p| matches!(p, nadfs_meta::ReadPiece::Direct { .. })));
    }

    #[test]
    fn rejected_write_between_commits_reads_as_a_hole_not_phantom_eof() {
        // Write 1 placed but never committed; write 2 (after it) commits:
        // the committed size covers write 2, and write 1's range reads as
        // a hole — sparse, not phantom data, not an inflated EOF.
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let _lost = cp.borrow_mut().place_write(f.id, 1000).expect("place");
        let kept = cp.borrow_mut().place_write(f.id, 500).expect("place");
        assert_eq!(kept.offset, 1000, "cursor placed write 2 after write 1");
        cp.borrow_mut().commit_write(f.id, &kept, 500);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 1500);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 2000)
            .expect("resolve");
        assert_eq!(plan.len, 1500);
        let hole: u32 = plan
            .pieces
            .iter()
            .filter_map(|p| match p {
                nadfs_meta::ReadPiece::Hole { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(hole, 1000, "the uncommitted range is a hole");
    }

    #[test]
    fn resolve_read_saturates_at_u64_max() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        // offset + len would overflow u64: must be a clean empty plan,
        // not a debug panic or a wrapped bogus range.
        for offset in [u64::MAX, u64::MAX - 1, u64::MAX - 4095] {
            let plan = cp
                .borrow_mut()
                .resolve_read(f.id, offset, u32::MAX)
                .expect("resolve");
            assert_eq!(plan.len, 0, "offset {offset:#x}");
            assert!(plan.pieces.is_empty());
        }
        // Just past EOF (no overflow): also a clean zero-length read.
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 4096, u32::MAX)
            .expect("resolve");
        assert_eq!(plan.len, 0);
    }

    #[test]
    fn place_write_at_overwrite_does_not_grow_the_file() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let a = cp.borrow_mut().place_write(f.id, 8192).expect("append");
        assert_eq!((a.offset, a.appended), (0, 8192));
        let o = cp
            .borrow_mut()
            .place_write_at(f.id, 4096, 1024)
            .expect("overwrite");
        assert_eq!((o.offset, o.appended), (1024, 0));
        let e = cp
            .borrow_mut()
            .place_write_at(f.id, 4096, 6144)
            .expect("extend");
        assert_eq!((e.offset, e.appended), (6144, 2048));
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").cursor, 10240);
        // Committed size follows the commits, not the placements.
        cp.borrow_mut().commit_write(f.id, &a, 8192);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 8192);
        cp.borrow_mut().commit_write(f.id, &o, 4096);
        assert_eq!(
            cp.borrow().lookup(f.id).expect("meta").size,
            8192,
            "interior overwrite does not grow the committed size"
        );
        cp.borrow_mut().commit_write(f.id, &e, 4096);
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 10240);
    }

    #[test]
    fn failed_node_routes_replicated_reads_to_survivors() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 4096)
            .expect("resolve");
        let nadfs_meta::ReadPiece::Direct { coord, .. } = &plan.pieces[0] else {
            panic!("direct piece");
        };
        assert_eq!(coord.node, p.replicas[1].node, "failover to next replica");
        cp.borrow_mut().mark_node_recovered(p.replicas[0].node);
        let plan2 = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 4096)
            .expect("resolve");
        let nadfs_meta::ReadPiece::Direct { coord, .. } = &plan2.pieces[0] else {
            panic!("direct piece");
        };
        assert_eq!(coord.node, p.replicas[0].node, "primary serves again");
    }

    #[test]
    fn node_failure_enqueues_affected_extents_once() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        let victim = p.data_chunks[0].node;
        cp.borrow_mut().mark_node_failed(victim);
        assert_eq!(cp.borrow().repair_queue.len(), 1);
        // Marking the same node again must not duplicate the task.
        cp.borrow_mut().mark_node_failed(victim);
        assert_eq!(cp.borrow().repair_queue.len(), 1);
        assert_eq!(cp.borrow().repair_queue.stats.enqueued, 1);
    }

    #[test]
    fn commit_after_failure_enqueues_the_racing_write() {
        // The mid-write kill: placement predates the failure, commit
        // lands after it — the extent must still reach the queue.
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().mark_node_failed(p.data_chunks[1].node);
        assert!(cp.borrow().repair_queue.is_empty(), "nothing committed yet");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        assert_eq!(cp.borrow().repair_queue.len(), 1);
    }

    #[test]
    fn degraded_read_promotes_its_extent_to_the_front() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let a = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &a, 3 * 4096);
        let b = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &b, 3 * 4096);
        // Both extents share the failed node (same home rotation).
        cp.borrow_mut().mark_node_failed(a.data_chunks[0].node);
        assert_eq!(cp.borrow().repair_queue.len(), 2);
        assert_eq!(
            cp.borrow().repair_queue.peek(),
            Some(RepairTask { file: f.id, rec: 0 })
        );
        // A degraded read of the SECOND extent jumps it to the front.
        let _ = cp
            .borrow_mut()
            .resolve_read(f.id, 3 * 4096, 4096)
            .expect("degraded resolve");
        assert_eq!(
            cp.borrow().repair_queue.peek(),
            Some(RepairTask { file: f.id, rec: 1 }),
            "the extent a client is paying for moves first"
        );
        assert_eq!(cp.borrow().repair_queue.len(), 2, "promotion, not a dup");
    }

    #[test]
    fn plan_repair_fetches_k_survivors_and_allocates_spares() {
        let cp = ControlPlane::new(7, vec![4, 5, 6, 7, 8, 9]);
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        let victim = p.data_chunks[1].node;
        cp.borrow_mut().mark_node_failed(victim);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        let plan = cp.borrow_mut().plan_repair(task).expect("plan");
        let RepairPlan::EcRebuild {
            scheme,
            chunk_len,
            fetch,
            rebuild,
        } = plan
        else {
            panic!("EC extent plans a rebuild, got {plan:?}");
        };
        assert_eq!((scheme.k, scheme.m), (3, 2));
        assert_eq!(chunk_len, 4096);
        assert_eq!(fetch.len(), 3, "exactly k survivors fetched");
        assert!(fetch.iter().all(|(_, c)| c.node != victim));
        assert_eq!(rebuild.len(), 1);
        let (slot, spare) = rebuild[0];
        assert_eq!(slot, 1, "the failed data shard's index");
        assert_ne!(spare.node, victim);
        let stripe_nodes: Vec<u32> = p
            .data_chunks
            .iter()
            .chain(&p.parities)
            .map(|c| c.node)
            .collect();
        assert!(
            !stripe_nodes.contains(&spare.node),
            "spare must be a new failure domain"
        );
        // Commit re-homes the shard; the extent then resolves direct even
        // though the original node is still failed.
        let g0 = cp.borrow().extent_generation(f.id);
        cp.borrow_mut()
            .commit_repair(task, &[(slot, spare)], 1)
            .expect("commit");
        assert_eq!(cp.borrow().extent_generation(f.id), g0 + 1);
        let plan = cp
            .borrow_mut()
            .resolve_read(f.id, 0, 3 * 4096)
            .expect("resolve");
        assert_eq!(plan.degraded_stripes, 0, "re-homed: no reconstruction");
    }

    #[test]
    fn plan_repair_typed_errors_for_unrepairable_extents() {
        // Plain extent: no redundancy to rebuild from.
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.primary.node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        assert_eq!(
            cp.borrow_mut().plan_repair(task).unwrap_err(),
            MetaError::DataUnavailable {
                node: p.primary.node
            }
        );
        // EC with more than m failures: lost.
        let cp = ControlPlane::new(7, vec![4, 5, 6, 7, 8, 9]);
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        for c in p.data_chunks.iter().take(3) {
            cp.borrow_mut().mark_node_failed(c.node);
        }
        let task = cp.borrow_mut().pop_repair().expect("queued");
        assert!(matches!(
            cp.borrow_mut().plan_repair(task).unwrap_err(),
            MetaError::TooManyFailures { .. }
        ));
        // RS(3,2) on exactly 5 nodes: one failure leaves no spare domain.
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        cp.borrow_mut().mark_node_failed(p.data_chunks[0].node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        assert_eq!(
            cp.borrow_mut().plan_repair(task).unwrap_err(),
            MetaError::NoSpareNode
        );
    }

    #[test]
    fn recovery_reconciliation_drops_obsolete_tasks_and_readopts() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        cp.borrow_mut().mark_node_recovered(p.replicas[0].node);
        // Reconciliation re-adopts the node's still-current replica and
        // drops the now-obsolete task instead of burning a repair
        // attempt on an extent that is whole again.
        assert_eq!(cp.borrow_mut().pop_repair(), None, "task dropped");
        let stats = cp.borrow().repair_queue.stats;
        assert_eq!(stats.dropped_on_recovery, 1);
        assert!(stats.shards_readopted >= 1);
    }

    #[test]
    fn commit_onto_a_freshly_failed_spare_requeues_the_extent() {
        // The spare dies while the repair's data movement is in flight:
        // the failure scan ran before the rehome, so the commit itself
        // must notice and put the extent back on the queue.
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 2,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        let plan = cp.borrow_mut().plan_repair(task).expect("plan");
        let RepairPlan::ReplicaClone { dest, .. } = plan else {
            panic!("clone plan");
        };
        // The chosen spare fails before the commit lands.
        cp.borrow_mut().mark_node_failed(dest[0].1.node);
        cp.borrow_mut()
            .commit_repair(task, &dest, 1)
            .expect("commit");
        assert!(
            cp.borrow().repair_queue.contains(task),
            "extent re-enqueued: it still references a failed node"
        );
    }

    #[test]
    fn replicated_repair_plans_clone_from_survivor() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 8192).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 8192);
        cp.borrow_mut().mark_node_failed(p.replicas[1].node);
        let task = cp.borrow_mut().pop_repair().expect("queued");
        let plan = cp.borrow_mut().plan_repair(task).expect("plan");
        let RepairPlan::ReplicaClone { len, src, dest } = plan else {
            panic!("replicated extent plans a clone");
        };
        assert_eq!(len, 8192);
        assert!(src.node != p.replicas[1].node);
        assert_eq!(dest.len(), 1);
        assert_eq!(dest[0].0, 1, "the lost replica slot");
        let replica_nodes: Vec<u32> = p.replicas.iter().map(|c| c.node).collect();
        assert!(!replica_nodes.contains(&dest[0].1.node));
    }

    #[test]
    fn unlink_drops_placement_state() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        assert!(cp.borrow().lookup(f.id).is_ok());
        cp.borrow_mut().unlink("/d/f", 1).expect("unlink");
        assert_eq!(
            cp.borrow().lookup(f.id).unwrap_err(),
            MetaError::UnknownFile(f.id)
        );
        assert!(cp.borrow_mut().place_write(f.id, 64).is_err());
    }
}
