//! Control plane: management and metadata services.
//!
//! Per the paper's operational model (Fig 1a), clients authenticate with
//! the management service, query the metadata service for file layouts, and
//! then talk to storage nodes directly. Control-plane interactions are
//! excluded from the measured write latency ("the write latency is the time
//! spanning from issuing the write request to receiving the respective
//! write response", §IV) — so the services here are shared state consulted
//! synchronously by the drivers, with an optional RPC front used by the
//! full-system examples.
//!
//! The metadata service is a real hierarchical namespace
//! ([`nadfs_meta::MetadataService`]): files live at paths, carry striped
//! layouts (stripe width × chunk size over storage nodes), and every
//! mutation bumps versions that drive client-cache invalidation. The
//! seed's flat `u64 → FileMeta` API survives on top: a file's id *is* its
//! inode number, and [`ControlPlane::create_file`] parks legacy files
//! under `/.volatile/`.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use nadfs_meta::{
    ExtentMap, ExtentRecord, InodeAttr, LayoutSpec, MetaCache, MetaError, MetaEvent,
    MetadataService, ReadPlan, StripedLayout,
};
use nadfs_simnet::NodeId;
use nadfs_wire::{Capability, MacKey, ReplicaCoord, Rights};

use crate::storage::SharedStorageStats;

// Policies now live with the rest of the file metadata in `nadfs-meta`;
// re-exported here so existing call sites keep working.
pub use nadfs_meta::FilePolicy;

/// A file's metadata, as handed to clients.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// The file id (its inode number in the namespace).
    pub id: u64,
    /// Bytes placed so far (the placement cursor; the namespace's
    /// authoritative size trails this until attr write-back flushes).
    pub size: u64,
    pub policy: FilePolicy,
    /// Index (into the storage-node list) of the stripe's first node.
    pub home: usize,
    /// Where the file's bytes go.
    pub layout: StripedLayout,
}

/// One striped piece of a plain write: a concrete (node, addr) target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeTarget {
    pub coord: ReplicaCoord,
    pub len: u32,
    /// Logical byte offset within the file.
    pub file_offset: u64,
}

/// Placement of one write: where every byte (and parity) goes.
#[derive(Clone, Debug)]
pub struct WritePlacement {
    pub greq: u64,
    /// Primary target (node, address).
    pub primary: ReplicaCoord,
    /// All replica coordinates including the primary, in virtual-rank
    /// order (replication only).
    pub replicas: Vec<ReplicaCoord>,
    /// Data-chunk coordinates (EC only), one per data node.
    pub data_chunks: Vec<ReplicaCoord>,
    /// Parity coordinates (EC only).
    pub parities: Vec<ReplicaCoord>,
    /// EC chunk length (bytes per data chunk).
    pub chunk_len: u32,
    /// Logical file offset this placement writes at.
    pub offset: u64,
    /// Bytes by which this placement advanced the file's placement
    /// cursor (0 for retries and pure overwrites — the attr write-back
    /// path uses this so overwrites don't inflate the file size).
    pub appended: u64,
    /// Striped plain-write targets, in file order (width > 1 layouts
    /// only; empty means "single extent at `primary`").
    pub stripes: Vec<StripeTarget>,
}

impl WritePlacement {
    /// Placement for a request that was rejected before placement (the
    /// failed-job record still carries a `WritePlacement`).
    pub fn rejected(greq: u64) -> WritePlacement {
        WritePlacement {
            greq,
            primary: ReplicaCoord { node: 0, addr: 0 },
            replicas: vec![],
            data_chunks: vec![],
            parities: vec![],
            chunk_len: 0,
            offset: 0,
            appended: 0,
            stripes: vec![],
        }
    }
}

/// The control plane: management (authentication) + metadata (namespace,
/// layout, placement) services.
pub struct ControlPlane {
    key: MacKey,
    /// The hierarchical namespace + layout service.
    pub meta: MetadataService,
    files: HashMap<u64, FileMeta>,
    next_legacy: u64,
    next_greq: u64,
    next_nonce: u64,
    /// Storage nodes, by fabric node id.
    storage_nodes: Vec<NodeId>,
    /// Bump allocator per storage node for write placement.
    next_addr: HashMap<NodeId, u64>,
    /// Client metadata caches subscribed to invalidation callbacks.
    caches: Vec<Rc<RefCell<MetaCache>>>,
    /// Committed extents per file: where each byte range physically
    /// lives, filled in as writes complete (the read path's map).
    extents: HashMap<u64, ExtentMap>,
    /// Storage nodes currently marked failed (degraded-read routing).
    failed_nodes: HashSet<u32>,
    /// Per-storage-node stats sinks (index-aligned with `storage_nodes`),
    /// attached by the cluster builder so placement decisions are
    /// observable on the nodes they land on.
    storage_stats: Vec<SharedStorageStats>,
}

pub type SharedControl = Rc<RefCell<ControlPlane>>;

impl ControlPlane {
    pub fn new(key_seed: u64, storage_nodes: Vec<NodeId>) -> SharedControl {
        let next_addr = storage_nodes.iter().map(|&n| (n, 0x10_0000u64)).collect();
        let meta = MetadataService::new(storage_nodes.iter().map(|&n| n as u32).collect());
        Rc::new(RefCell::new(ControlPlane {
            key: MacKey::from_seed(key_seed),
            meta,
            files: HashMap::new(),
            next_legacy: 1,
            next_greq: 1,
            next_nonce: 1,
            storage_nodes,
            next_addr,
            caches: Vec::new(),
            extents: HashMap::new(),
            failed_nodes: HashSet::new(),
            storage_stats: Vec::new(),
        }))
    }

    /// The service-shared MAC key (installed into storage-node NIC memory).
    pub fn service_key(&self) -> MacKey {
        self.key
    }

    pub fn storage_nodes(&self) -> &[NodeId] {
        &self.storage_nodes
    }

    /// Subscribe a client cache to invalidation callbacks.
    pub fn register_cache(&mut self, cache: Rc<RefCell<MetaCache>>) {
        self.caches.push(cache);
    }

    /// Attach per-node stats sinks (index-aligned with `storage_nodes`).
    pub fn attach_storage_stats(&mut self, stats: Vec<SharedStorageStats>) {
        assert_eq!(stats.len(), self.storage_nodes.len());
        self.storage_stats = stats;
    }

    /// Fan the metadata service's mutation events out to every registered
    /// client cache (the callback channel).
    fn publish_invalidations(&mut self) {
        let events = self.meta.take_events();
        if events.is_empty() {
            return;
        }
        for cache in &self.caches {
            let mut c = cache.borrow_mut();
            for ev in &events {
                match ev {
                    MetaEvent::Changed { path } => c.invalidate_path(path),
                    MetaEvent::SubtreeGone { path } => c.invalidate_subtree(path),
                }
            }
        }
    }

    fn home_of(&self, layout: &StripedLayout) -> usize {
        self.storage_nodes
            .iter()
            .position(|&n| n as u32 == layout.nodes[0])
            .expect("layout node")
    }

    fn install_file(&mut self, attr: &InodeAttr, layout: StripedLayout, policy: FilePolicy) {
        let meta = FileMeta {
            id: attr.ino,
            size: attr.size,
            policy,
            home: self.home_of(&layout),
            layout,
        };
        self.files.insert(attr.ino, meta);
    }

    /// Create a file with the given policy (legacy flat API): parked under
    /// `/.volatile/`, single-node layout assigned round-robin.
    pub fn create_file(&mut self, size: u64, policy: FilePolicy) -> FileMeta {
        let name = format!("/.volatile/f{}", self.next_legacy);
        self.next_legacy += 1;
        self.meta.ns.mkdir_p("/.volatile", 0).expect("legacy dir");
        let meta = self
            .create_file_at(&name, LayoutSpec::SINGLE, policy)
            .expect("fresh legacy path");
        // Legacy callers pre-declare the size; advance the cursor so the
        // first placement appends after it, matching the seed behavior.
        let m = self.files.get_mut(&meta.id).expect("just created");
        m.size = size;
        m.clone()
    }

    /// Create a file at `path` with a striped layout. The parent
    /// directory must exist (`mkdir`/`mkdir_p` first).
    pub fn create_file_at(
        &mut self,
        path: &str,
        spec: LayoutSpec,
        policy: FilePolicy,
    ) -> Result<FileMeta, MetaError> {
        let (attr, layout) = self.meta.create(path, spec, policy.clone(), 0)?;
        self.install_file(&attr, layout, policy);
        self.publish_invalidations();
        Ok(self.files[&attr.ino].clone())
    }

    /// Metadata lookup by file id. A miss is a typed error, not a panic
    /// or a silent `None`.
    pub fn lookup(&self, file: u64) -> Result<&FileMeta, MetaError> {
        self.files.get(&file).ok_or(MetaError::UnknownFile(file))
    }

    /// Path lookup (counts as one metadata round-trip).
    pub fn lookup_path(&mut self, path: &str) -> Result<InodeAttr, MetaError> {
        self.meta.lookup(path)
    }

    /// Path lookup returning what a client cache stores: attrs + layout
    /// for files.
    pub fn lookup_entry(
        &mut self,
        path: &str,
    ) -> Result<(InodeAttr, Option<StripedLayout>), MetaError> {
        self.meta.lookup(path)?; // the counted round-trip
        self.peek_entry(path)
    }

    /// Uncounted lookup for cache refills: the caller already paid the
    /// round-trip (e.g. a create response) and only needs the entry.
    pub fn peek_entry(&self, path: &str) -> Result<(InodeAttr, Option<StripedLayout>), MetaError> {
        let attr = self.meta.ns.lookup(path)?;
        let layout = if attr.kind == nadfs_meta::InodeKind::File {
            self.meta
                .ns
                .inode(attr.ino)?
                .file()
                .map(|f| f.layout.clone())
        } else {
            None
        };
        Ok((attr, layout))
    }

    pub fn mkdir(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let r = self.meta.mkdir(path, now_ns);
        self.publish_invalidations();
        r
    }

    pub fn mkdir_p(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let r = self.meta.mkdir_p(path, now_ns);
        self.publish_invalidations();
        r
    }

    pub fn readdir(&mut self, path: &str) -> Result<Vec<(String, InodeAttr)>, MetaError> {
        self.meta.readdir(path)
    }

    pub fn rename(&mut self, from: &str, to: &str, now_ns: u64) -> Result<(), MetaError> {
        let r = self.meta.rename(from, to, now_ns);
        if let Ok(Some(replaced)) = r {
            // A POSIX replace deletes the target inode: drop its
            // placement state too, exactly like an unlink.
            self.files.remove(&replaced);
            self.extents.remove(&replaced);
        }
        self.publish_invalidations();
        r.map(|_| ())
    }

    /// Unlink a file or empty directory; a removed file's placement state
    /// is dropped with it.
    pub fn unlink(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr, MetaError> {
        let attr = self.meta.unlink(path, now_ns)?;
        self.files.remove(&attr.ino);
        self.extents.remove(&attr.ino);
        self.publish_invalidations();
        Ok(attr)
    }

    /// Apply a client's write-back attribute flush. Applied updates
    /// publish `Changed` events, so other clients' cached attrs for the
    /// flushed files are invalidated.
    pub fn flush_attrs(
        &mut self,
        updates: &[(u64, nadfs_meta::DirtyAttr)],
    ) -> Result<(), MetaError> {
        let r = self.meta.flush_attrs(updates);
        self.publish_invalidations();
        r
    }

    /// Management service: authenticate a client and issue a capability
    /// for `file` (§IV — signed with the service-shared key).
    pub fn issue_capability(
        &mut self,
        client: u32,
        file: u64,
        rights: Rights,
        expires_at_ns: u64,
    ) -> Capability {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        Capability::issue(&self.key, client, file, rights, expires_at_ns, nonce)
    }

    fn alloc_on(&mut self, node: NodeId, len: u64) -> u64 {
        let a = self.next_addr.get_mut(&node).expect("storage node");
        let addr = *a;
        // Page-align so concurrent placements never overlap.
        *a += len.div_ceil(4096).max(1) * 4096;
        addr
    }

    fn count_stripe_placement(&mut self, node: NodeId) {
        if self.storage_stats.is_empty() {
            return;
        }
        if let Some(i) = self.storage_nodes.iter().position(|&n| n == node) {
            self.storage_stats[i].borrow_mut().stripe_chunks_placed += 1;
        }
    }

    /// Allocate a fresh request id.
    pub fn alloc_greq(&mut self) -> u64 {
        let g = self.next_greq;
        self.next_greq += 1;
        g
    }

    /// Metadata service: place one write of `len` bytes for `file`,
    /// appending at the file's placement cursor. Unknown file ids are a
    /// typed error the client surfaces as a failed job.
    pub fn place_write(&mut self, file: u64, len: u32) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::Append)
    }

    /// Place a write at an explicit logical offset (`pwrite` semantics):
    /// the placement cursor only advances past `offset + len` when the
    /// write extends the file, so overwrites don't grow it.
    pub fn place_write_at(
        &mut self,
        file: u64,
        len: u32,
        offset: u64,
    ) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::At(offset))
    }

    /// Re-place a retried write at its original logical offset: fresh
    /// physical addresses (the old descriptors are gone), but the
    /// placement cursor does NOT advance again — a retry re-writes the
    /// same logical extent, it does not append new bytes.
    pub fn replace_write(
        &mut self,
        file: u64,
        len: u32,
        offset: u64,
    ) -> Result<WritePlacement, MetaError> {
        self.place_write_inner(file, len, PlaceMode::Retry(offset))
    }

    fn place_write_inner(
        &mut self,
        file: u64,
        len: u32,
        mode: PlaceMode,
    ) -> Result<WritePlacement, MetaError> {
        let meta = self.lookup(file)?.clone();
        let greq = self.alloc_greq();
        let n = self.storage_nodes.len();
        let home = meta.home;
        let base = match mode {
            PlaceMode::Append => meta.size,
            PlaceMode::At(o) => o,
            PlaceMode::Retry(o) => o,
        };
        // Cursor: appends and extending writes advance it; retries never
        // do (their original placement already did).
        let appended = match mode {
            PlaceMode::Retry(_) => 0,
            _ => (base + len as u64).saturating_sub(meta.size),
        };
        if appended > 0 {
            if let Some(f) = self.files.get_mut(&file) {
                f.size += appended;
            }
        }
        let placement = match meta.policy {
            FilePolicy::Plain => {
                // Striped placement: split the extent over the file's
                // layout; width-1 layouts degenerate to the seed's
                // single-node placement.
                let extents = meta.layout.extents(base, len);
                let mut stripes = Vec::with_capacity(extents.len());
                for e in &extents {
                    let node = e.node as NodeId;
                    let addr = self.alloc_on(node, e.len.max(1) as u64);
                    self.count_stripe_placement(node);
                    stripes.push(StripeTarget {
                        coord: ReplicaCoord { node: e.node, addr },
                        len: e.len,
                        file_offset: e.file_offset,
                    });
                }
                let primary = stripes[0].coord;
                WritePlacement {
                    greq,
                    primary,
                    replicas: vec![primary],
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                    offset: base,
                    appended,
                    stripes: if stripes.len() > 1 { stripes } else { vec![] },
                }
            }
            FilePolicy::Replicated { k, .. } => {
                assert!(k as usize <= n, "replication factor exceeds cluster");
                let mut replicas = Vec::with_capacity(k as usize);
                for r in 0..k as usize {
                    let node = self.storage_nodes[(home + r) % n];
                    let addr = self.alloc_on(node, len as u64);
                    replicas.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: replicas[0],
                    replicas,
                    data_chunks: vec![],
                    parities: vec![],
                    chunk_len: 0,
                    offset: base,
                    appended,
                    stripes: vec![],
                }
            }
            FilePolicy::ErasureCoded { scheme } => {
                let (k, m) = (scheme.k as usize, scheme.m as usize);
                assert!(k + m <= n, "RS(k,m) needs k+m storage nodes");
                let chunk_len = (len as u64).div_ceil(k as u64).max(1) as u32;
                let mut data_chunks = Vec::with_capacity(k);
                for j in 0..k {
                    let node = self.storage_nodes[(home + j) % n];
                    let addr = self.alloc_on(node, chunk_len as u64);
                    data_chunks.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                let mut parities = Vec::with_capacity(m);
                for p in 0..m {
                    let node = self.storage_nodes[(home + k + p) % n];
                    // Parity region: final parity plus k staging slots
                    // (used by the INEC firmware path).
                    let addr = self.alloc_on(node, chunk_len as u64 * (1 + k as u64));
                    parities.push(ReplicaCoord {
                        node: node as u32,
                        addr,
                    });
                }
                WritePlacement {
                    greq,
                    primary: data_chunks[0],
                    replicas: vec![],
                    data_chunks,
                    parities,
                    chunk_len,
                    offset: base,
                    appended,
                    stripes: vec![],
                }
            }
        };
        Ok(placement)
    }

    /// Commit a completed write's placement into the file's extent map
    /// (called by clients when the write acknowledges `Ok`): this is what
    /// makes the bytes *readable*. A file unlinked while the write was in
    /// flight is silently skipped.
    pub fn commit_write(&mut self, file: u64, placement: &WritePlacement, len: u32) {
        if len == 0 || !self.files.contains_key(&file) {
            return;
        }
        let scheme = match self.files.get(&file).map(|m| &m.policy) {
            Some(FilePolicy::ErasureCoded { scheme }) => Some(*scheme),
            _ => None,
        };
        let map = self.extents.entry(file).or_default();
        if !placement.stripes.is_empty() {
            for st in &placement.stripes {
                map.record(ExtentRecord::Plain {
                    offset: st.file_offset,
                    len: st.len,
                    coord: st.coord,
                });
            }
        } else if !placement.data_chunks.is_empty() {
            let scheme = scheme.expect("EC placement on a non-EC file");
            map.record(ExtentRecord::Ec {
                offset: placement.offset,
                len,
                chunk_len: placement.chunk_len,
                scheme,
                data: placement.data_chunks.clone(),
                parities: placement.parities.clone(),
            });
        } else if placement.replicas.len() > 1 {
            map.record(ExtentRecord::Replicated {
                offset: placement.offset,
                len,
                replicas: placement.replicas.clone(),
            });
        } else {
            map.record(ExtentRecord::Plain {
                offset: placement.offset,
                len,
                coord: placement.primary,
            });
        }
    }

    /// Mark a storage node failed: reads route around it (replica
    /// failover, degraded EC reconstruction) until it recovers.
    pub fn mark_node_failed(&mut self, node: u32) {
        self.failed_nodes.insert(node);
    }

    pub fn mark_node_recovered(&mut self, node: u32) {
        self.failed_nodes.remove(&node);
    }

    pub fn failed_nodes(&self) -> &HashSet<u32> {
        &self.failed_nodes
    }

    /// Resolve a ranged read into fetchable pieces: clamp to the
    /// placement cursor (short reads past EOF, like `pread`), then walk
    /// the extent map routing around failed nodes.
    pub fn resolve_read(&self, file: u64, offset: u64, len: u32) -> Result<ReadPlan, MetaError> {
        let meta = self.lookup(file)?;
        let end = (offset + len as u64).min(meta.size);
        let clamped = end.saturating_sub(offset) as u32;
        match self.extents.get(&file) {
            Some(map) => map.resolve(offset, clamped, &self.failed_nodes),
            // Nothing committed yet: the whole (clamped) range is a hole.
            None => ExtentMap::new().resolve(offset, clamped, &self.failed_nodes),
        }
    }
}

/// How a placement relates to the file's cursor.
#[derive(Clone, Copy, Debug)]
enum PlaceMode {
    /// Append at the cursor (the cursor advances by `len`).
    Append,
    /// Explicit offset; the cursor advances only past `offset + len`.
    At(u64),
    /// Busy-retry re-placement at the original offset; no cursor motion.
    Retry(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadfs_wire::{BcastStrategy, RsScheme};

    fn plane() -> SharedControl {
        ControlPlane::new(7, vec![4, 5, 6, 7, 8])
    }

    #[test]
    fn create_and_lookup() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(1 << 20, FilePolicy::Plain);
        assert_eq!(cp.borrow().lookup(f.id).expect("found").size, 1 << 20);
        assert_eq!(
            cp.borrow().lookup(999).unwrap_err(),
            MetaError::UnknownFile(999),
            "misses are typed errors"
        );
    }

    #[test]
    fn capability_verifies_under_service_key() {
        let cp = plane();
        let cap = cp.borrow_mut().issue_capability(3, 1, Rights::RW, 1_000);
        let key = cp.borrow().service_key();
        assert!(cap.verify(&key, 0, Rights::WRITE).is_ok());
    }

    #[test]
    fn replicated_placement_uses_distinct_nodes() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 8192).expect("place");
        assert_eq!(p.replicas.len(), 4);
        let mut nodes: Vec<u32> = p.replicas.iter().map(|r| r.node).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "replicas on distinct nodes");
    }

    #[test]
    fn ec_placement_separates_data_and_parity() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::ErasureCoded {
                scheme: RsScheme::new(3, 2),
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 3 * 1000).expect("place");
        assert_eq!(p.data_chunks.len(), 3);
        assert_eq!(p.parities.len(), 2);
        assert_eq!(p.chunk_len, 1000);
        let mut all: Vec<u32> = p
            .data_chunks
            .iter()
            .chain(&p.parities)
            .map(|c| c.node)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 5, "k+m distinct failure domains");
    }

    #[test]
    fn placements_do_not_overlap() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let a = cp.borrow_mut().place_write(f.id, 10_000).expect("place");
        let b = cp.borrow_mut().place_write(f.id, 10_000).expect("place");
        assert_eq!(a.primary.node, b.primary.node);
        assert!(b.primary.addr >= a.primary.addr + 10_000);
        assert!(b.greq > a.greq);
    }

    #[test]
    fn namespace_files_stripe_over_distinct_nodes() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/data", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/data/big", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        assert_eq!(f.layout.stripe_width(), 3);
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        assert_eq!(p.stripes.len(), 3, "one extent per stripe unit");
        let mut nodes: Vec<u32> = p.stripes.iter().map(|s| s.coord.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "stripe units on distinct nodes");
        // The next append continues round-robin from the cursor.
        let q = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert!(q.stripes.is_empty(), "single-extent write");
        assert_eq!(q.primary.node, p.stripes[0].coord.node);
    }

    #[test]
    fn rename_replace_drops_replaced_placement_state() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let loser = cp
            .borrow_mut()
            .create_file_at("/d/loser", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let winner = cp
            .borrow_mut()
            .create_file_at("/d/winner", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        cp.borrow_mut()
            .rename("/d/winner", "/d/loser", 1)
            .expect("replace");
        // The replaced file is gone everywhere: namespace AND placement.
        assert_eq!(
            cp.borrow().lookup(loser.id).unwrap_err(),
            MetaError::UnknownFile(loser.id),
            "replaced file's placement state is dropped like an unlink"
        );
        assert!(cp.borrow_mut().place_write(loser.id, 64).is_err());
        assert!(cp.borrow().lookup(winner.id).is_ok());
        assert_eq!(
            cp.borrow_mut().lookup_path("/d/loser").expect("path").ino,
            winner.id
        );
    }

    #[test]
    fn attr_flush_skips_vanished_files_and_applies_the_rest() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let gone = cp
            .borrow_mut()
            .create_file_at("/d/gone", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let kept = cp
            .borrow_mut()
            .create_file_at("/d/kept", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        cp.borrow_mut().unlink("/d/gone", 1).expect("unlink");
        let updates = vec![
            (
                gone.id,
                nadfs_meta::DirtyAttr {
                    appended: 100,
                    mtime_ns: 2,
                },
            ),
            (
                kept.id,
                nadfs_meta::DirtyAttr {
                    appended: 4096,
                    mtime_ns: 2,
                },
            ),
        ];
        cp.borrow_mut()
            .flush_attrs(&updates)
            .expect("partial flush ok");
        assert_eq!(
            cp.borrow_mut().lookup_path("/d/kept").expect("kept").size,
            4096,
            "the surviving file's update is not lost to the vanished one"
        );
    }

    #[test]
    fn retry_replacement_does_not_advance_the_cursor_twice() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/s", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        let first = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert_eq!(first.offset, 0);
        // A Busy retry re-places the SAME logical extent...
        let retry = cp
            .borrow_mut()
            .replace_write(f.id, 4096, first.offset)
            .expect("re-place");
        assert_eq!(retry.offset, 0);
        assert_eq!(retry.primary.node, first.primary.node, "same stripe unit");
        assert_ne!(retry.primary.addr, first.primary.addr, "fresh address");
        // ...so the next append continues where the first write ended,
        // not two extents later.
        let next = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        assert_eq!(next.offset, 4096);
        assert_ne!(
            next.primary.node, first.primary.node,
            "stripe advanced once"
        );
    }

    #[test]
    fn commit_then_resolve_roundtrips_striped_extents() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/s", LayoutSpec::striped(3, 4096), FilePolicy::Plain)
            .expect("create");
        let p = cp.borrow_mut().place_write(f.id, 3 * 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 3 * 4096);
        // A cross-stripe subrange resolves to the committed coordinates.
        let plan = cp.borrow().resolve_read(f.id, 4000, 5000).expect("resolve");
        assert_eq!(plan.len, 5000);
        let mut covered = 0u32;
        for piece in &plan.pieces {
            let nadfs_meta::ReadPiece::Direct { len, .. } = piece else {
                panic!("healthy striped read must be all direct pieces: {piece:?}");
            };
            covered += len;
        }
        assert_eq!(covered, 5000);
    }

    #[test]
    fn uncommitted_writes_read_as_holes_and_reads_clamp_at_cursor() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(0, FilePolicy::Plain);
        let _p = cp.borrow_mut().place_write(f.id, 1000).expect("place");
        // Placed but never committed (the write never acked): holes.
        let plan = cp.borrow().resolve_read(f.id, 0, 5000).expect("resolve");
        assert_eq!(plan.len, 1000, "clamped at the placement cursor");
        assert!(plan
            .pieces
            .iter()
            .all(|p| matches!(p, nadfs_meta::ReadPiece::Hole { .. })));
    }

    #[test]
    fn place_write_at_overwrite_does_not_grow_the_file() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        let a = cp.borrow_mut().place_write(f.id, 8192).expect("append");
        assert_eq!((a.offset, a.appended), (0, 8192));
        let o = cp
            .borrow_mut()
            .place_write_at(f.id, 4096, 1024)
            .expect("overwrite");
        assert_eq!((o.offset, o.appended), (1024, 0));
        let e = cp
            .borrow_mut()
            .place_write_at(f.id, 4096, 6144)
            .expect("extend");
        assert_eq!((e.offset, e.appended), (6144, 2048));
        assert_eq!(cp.borrow().lookup(f.id).expect("meta").size, 10240);
    }

    #[test]
    fn failed_node_routes_replicated_reads_to_survivors() {
        let cp = plane();
        let f = cp.borrow_mut().create_file(
            0,
            FilePolicy::Replicated {
                k: 3,
                strategy: BcastStrategy::Ring,
            },
        );
        let p = cp.borrow_mut().place_write(f.id, 4096).expect("place");
        cp.borrow_mut().commit_write(f.id, &p, 4096);
        cp.borrow_mut().mark_node_failed(p.replicas[0].node);
        let plan = cp.borrow().resolve_read(f.id, 0, 4096).expect("resolve");
        let nadfs_meta::ReadPiece::Direct { coord, .. } = &plan.pieces[0] else {
            panic!("direct piece");
        };
        assert_eq!(coord.node, p.replicas[1].node, "failover to next replica");
        cp.borrow_mut().mark_node_recovered(p.replicas[0].node);
        let plan2 = cp.borrow().resolve_read(f.id, 0, 4096).expect("resolve");
        let nadfs_meta::ReadPiece::Direct { coord, .. } = &plan2.pieces[0] else {
            panic!("direct piece");
        };
        assert_eq!(coord.node, p.replicas[0].node, "primary serves again");
    }

    #[test]
    fn unlink_drops_placement_state() {
        let cp = plane();
        cp.borrow_mut().mkdir_p("/d", 0).expect("mkdir");
        let f = cp
            .borrow_mut()
            .create_file_at("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain)
            .expect("create");
        assert!(cp.borrow().lookup(f.id).is_ok());
        cp.borrow_mut().unlink("/d/f", 1).expect("unlink");
        assert_eq!(
            cp.borrow().lookup(f.id).unwrap_err(),
            MetaError::UnknownFile(f.id)
        );
        assert!(cp.borrow_mut().place_write(f.id, 64).is_err());
    }
}
