//! The calibrated cost model for the reproduction.
//!
//! Every constant the simulation charges lives here, with its provenance.
//! `CostModel::paper()` reproduces the paper's configuration (§III-D:
//! 400 Gbit/s network, 2048 B MTU, 20 ns links; Fig 7 pipeline stages;
//! Tables I/II instruction counts and IPCs). The EC comparison (Fig 15)
//! uses [`CostModel::with_network_gbit`] at 100 Gbit/s, matching the INEC
//! paper's testbed as the authors did.

use nadfs_host::{CpuCosts, DmaConfig};
use nadfs_pspin::PsPinConfig;
use nadfs_rdma::{EcEngineConfig, NicConfig};
use nadfs_simnet::{Bandwidth, Dur, FabricConfig};

/// Instruction/IPC model for the DFS sPIN handlers (Tables I & II).
#[derive(Clone, Debug)]
pub struct HandlerCosts {
    /// Header handler: request validation + descriptor setup.
    /// Paper: 120 instructions, IPC 0.57 ⇒ 211 ns (Table I), matching the
    /// "DFS handler that validates client requests takes 200 cycles" of
    /// Fig 7 plus bookkeeping.
    pub hh_instrs: u64,
    pub hh_ipc: f64,
    /// Payload handler, plain write (k = 1): 55 instructions @ 0.60.
    pub ph_instrs: u64,
    pub ph_ipc: f64,
    /// Payload handler, ring forward: 105 instructions @ 0.54 (Table I).
    pub ph_ring_instrs: u64,
    pub ph_ring_ipc: f64,
    /// Payload handler, PBT forward: 130 instructions (Table I). The
    /// *duration* (2106 ns) is not charged: it emerges from egress stalls.
    pub ph_pbt_instrs: u64,
    pub ph_pbt_ipc: f64,
    /// Completion handler: 66 instructions @ 0.62 ⇒ 107 ns (Table I); the
    /// flush wait lengthens it naturally.
    pub ch_instrs: u64,
    pub ch_ipc: f64,
    /// Cleanup handler (not measured in the paper; small bookkeeping).
    pub cleanup_instrs: u64,
    /// EC payload handler: base + per-byte encode loop. Paper §VI-C: "5
    /// instructions per byte for RS(3,2) and 7 for RS(6,3)"; Table II's
    /// totals fit instrs = base + 2(m+1)·payload at IPC 0.7.
    pub ec_ph_base_instrs: u64,
    pub ec_ph_ipc: f64,
    /// XOR-aggregation payload handler at the parity node (per byte).
    /// Word-wise XOR accumulate; not separately reported by the paper.
    pub ec_agg_instrs_per_byte: f64,
}

impl Default for HandlerCosts {
    fn default() -> Self {
        HandlerCosts {
            hh_instrs: 120,
            hh_ipc: 0.57,
            ph_instrs: 55,
            ph_ipc: 0.60,
            ph_ring_instrs: 105,
            ph_ring_ipc: 0.54,
            ph_pbt_instrs: 130,
            ph_pbt_ipc: 0.60,
            ch_instrs: 66,
            ch_ipc: 0.62,
            cleanup_instrs: 80,
            ec_ph_base_instrs: 120,
            ec_ph_ipc: 0.7,
            ec_agg_instrs_per_byte: 1.0,
        }
    }
}

impl HandlerCosts {
    /// Instructions of the EC encode payload handler for a payload of
    /// `bytes` under RS(k, m): 2(m+1) instructions per byte (§VI-C).
    pub fn ec_ph_instrs(&self, m: u8, bytes: usize) -> u64 {
        self.ec_ph_base_instrs + 2 * (m as u64 + 1) * bytes as u64
    }
}

/// Latency model for metadata traffic (client ↔ control node).
///
/// The paper excludes control-plane interactions from the measured write
/// latency, so these are not calibrated against it; the round-trip is
/// sized like a small two-sided RPC on the same 400 Gbit/s fabric
/// (propagation + rpc dispatch + reply), in the same few-µs regime
/// SwitchFS/AsyncFS report for conventional metadata servers.
#[derive(Clone, Debug)]
pub struct MetaCosts {
    /// Local client-cache probe (hash lookup + version check).
    pub cache_probe: Dur,
    /// Client → control node RPC round trip (miss or mutation).
    pub control_rtt: Dur,
    /// Extra service time a namespace mutation spends under the tree
    /// lock (create/rename/unlink vs. a read-only lookup). With async
    /// metadata acks this is *shard occupancy* — it serializes ops on
    /// the owning shard but no longer sits on the client's critical
    /// path (the ack returns after the op-log append).
    pub mutate_service: Dur,
    /// Appending the mutation to the owning shard's op log — the only
    /// persistence cost left on the ack path (AsyncFS-style async
    /// update: log-and-ack, apply/fan-out off the critical path).
    pub oplog_append: Dur,
    /// Shard service time for a read-side resolve (extent-map walk);
    /// like `mutate_service` it occupies the shard, not the ack path.
    pub resolve_service: Dur,
}

impl Default for MetaCosts {
    fn default() -> MetaCosts {
        MetaCosts {
            cache_probe: Dur::from_ns(120),
            control_rtt: Dur::from_ns(2_400),
            mutate_service: Dur::from_ns(850),
            oplog_append: Dur::from_ns(300),
            resolve_service: Dur::from_ns(250),
        }
    }
}

/// Full simulation cost model.
#[derive(Clone, Debug)]
pub struct CostModel {
    pub fabric: FabricConfig,
    pub nic: NicConfig,
    pub pspin: PsPinConfig,
    pub handlers: HandlerCosts,
    pub ec_engine: EcEngineConfig,
    /// Metadata operation latencies.
    pub meta: MetaCosts,
    /// Per-request DFS-wide NIC state reserved at context install
    /// (§III-B: 2 MiB, leaving 6 MiB of descriptor memory).
    pub pspin_state_bytes: u64,
    /// Write descriptor size (§III-B: 77 B).
    pub descriptor_bytes: u32,
}

impl CostModel {
    /// The paper's configuration.
    pub fn paper() -> CostModel {
        CostModel {
            fabric: FabricConfig::default(),
            nic: NicConfig {
                dma: DmaConfig::default(),
                cpu: CpuCosts::default(),
                enforce_mr: false,
            },
            pspin: PsPinConfig::default(),
            handlers: HandlerCosts::default(),
            ec_engine: EcEngineConfig::default(),
            meta: MetaCosts::default(),
            pspin_state_bytes: 2 << 20,
            descriptor_bytes: nadfs_wire::sizes::WRITE_DESCRIPTOR,
        }
    }

    /// Same model on a different line rate (Fig 15 runs at 100 Gbit/s to
    /// compare against INEC's published numbers).
    pub fn with_network_gbit(mut self, gbit: u64) -> CostModel {
        self.fabric.link_bw = Bandwidth::from_gbit_per_sec(gbit);
        self
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_published_handler_times() {
        let h = HandlerCosts::default();
        // Table I checkpoints (duration = instrs / IPC at 1 GHz).
        assert_eq!((h.hh_instrs as f64 / h.hh_ipc).round() as u64, 211);
        assert_eq!((h.ph_instrs as f64 / h.ph_ipc).round() as u64, 92);
        assert_eq!(
            (h.ph_ring_instrs as f64 / h.ph_ring_ipc).round() as u64,
            194
        );
        assert_eq!((h.ch_instrs as f64 / h.ch_ipc).round() as u64, 106);
    }

    #[test]
    fn ec_instruction_model_matches_table_ii() {
        let h = HandlerCosts::default();
        // Full payload packet: 1978 B. RS(3,2): 2*(2+1) = 6 instrs/byte.
        let rs32 = h.ec_ph_instrs(2, 1978);
        assert_eq!(rs32, 120 + 6 * 1978); // 11_988 ≈ Table II's 11_672
        assert!((rs32 as f64 - 11_672.0).abs() / 11_672.0 < 0.05);
        let rs63 = h.ec_ph_instrs(3, 1978);
        assert_eq!(rs63, 120 + 8 * 1978); // 15_944 ≈ Table II's 16_028
        assert!((rs63 as f64 - 16_028.0).abs() / 16_028.0 < 0.05);
    }

    #[test]
    fn network_override() {
        let m = CostModel::paper().with_network_gbit(100);
        assert_eq!(m.fabric.link_bw.gbit_per_sec(), 100.0);
    }
}
