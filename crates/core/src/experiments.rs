//! Experiment runners: the measurement procedures behind every figure.
//!
//! Each function builds a fresh deterministic cluster, drives the workload
//! the paper describes, and extracts the series the figures plot.

use nadfs_pspin::HandlerKind;
use nadfs_simnet::Time;
use nadfs_wire::{BcastStrategy, RsScheme, Status};

use crate::client::{Job, WriteProtocol};
use crate::cluster::{ClusterSpec, SimCluster, StorageMode};
use crate::config::CostModel;
use crate::control::FilePolicy;

/// Storage mode a protocol requires.
pub fn mode_for(protocol: WriteProtocol) -> StorageMode {
    match protocol {
        WriteProtocol::Spin | WriteProtocol::SpinReplicated | WriteProtocol::SpinTriec { .. } => {
            StorageMode::Spin
        }
        WriteProtocol::InecTriec => StorageMode::FirmwareEc,
        _ => StorageMode::Plain,
    }
}

/// Storage nodes a policy requires.
pub fn nodes_for(policy: &FilePolicy) -> usize {
    match policy {
        FilePolicy::Plain => 1,
        FilePolicy::Replicated { k, .. } => *k as usize,
        FilePolicy::ErasureCoded { scheme } => (scheme.k + scheme.m) as usize,
    }
}

/// Measure the latency of a single write (median of `reps` back-to-back
/// writes, window 1 — §IV: "time spanning from issuing the write request
/// to receiving the respective write response").
pub fn write_latency_us(
    protocol: WriteProtocol,
    policy: FilePolicy,
    size: u32,
    cost: &CostModel,
    reps: usize,
) -> f64 {
    let spec = ClusterSpec::new(1, nodes_for(&policy), mode_for(protocol)).with_cost(cost.clone());
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, policy);
    for i in 0..reps {
        c.submit(
            0,
            Job::Write {
                file: file.id,
                size,
                protocol,
                seed: i as u64,
            },
        );
    }
    c.start();
    let done = c.run_until_writes(reps, 30_000);
    assert_eq!(done, reps, "{protocol:?} @{size}B: writes incomplete");
    let mut lat: Vec<f64> = c
        .results
        .borrow()
        .writes
        .iter()
        .map(|r| {
            assert_eq!(r.status, Status::Ok, "{protocol:?}");
            (r.end - r.start).as_us()
        })
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    lat[lat.len() / 2]
}

/// Chunk sizes tried when the paper says "optimal chunk size" (§V-B).
pub const CHUNK_CANDIDATES: [u32; 6] =
    [8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10];

/// Latency with the best chunk size for chunked protocols; pass-through
/// otherwise. Returns (latency_us, chunk_used).
pub fn write_latency_best_chunk(
    protocol: WriteProtocol,
    policy: FilePolicy,
    size: u32,
    cost: &CostModel,
) -> (f64, u32) {
    let chunked = |chunk: u32| match protocol {
        WriteProtocol::HyperLoop { .. } => WriteProtocol::HyperLoop { chunk },
        WriteProtocol::CpuBcast { .. } => WriteProtocol::CpuBcast { chunk },
        p => p,
    };
    match protocol {
        WriteProtocol::HyperLoop { .. } | WriteProtocol::CpuBcast { .. } => {
            let mut best = (f64::INFINITY, 0u32);
            for &chunk in CHUNK_CANDIDATES
                .iter()
                .filter(|&&ch| ch <= size.max(8 << 10))
            {
                let l = write_latency_us(chunked(chunk), policy.clone(), size, cost, 3);
                if l < best.0 {
                    best = (l, chunk);
                }
            }
            best
        }
        p => (write_latency_us(p, policy, size, cost, 3), 0),
    }
}

/// Sustained goodput of the primary storage node (Fig 9 right): one client
/// keeps `window` writes outstanding; goodput is payload delivered over the
/// span between the first start and the last completion.
pub fn storage_goodput_gbit(
    protocol: WriteProtocol,
    policy: FilePolicy,
    size: u32,
    cost: &CostModel,
    n_writes: usize,
    window: usize,
) -> f64 {
    let spec = ClusterSpec::new(1, nodes_for(&policy), mode_for(protocol))
        .with_cost(cost.clone())
        .with_window(window);
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, policy);
    for i in 0..n_writes {
        c.submit(
            0,
            Job::Write {
                file: file.id,
                size,
                protocol,
                seed: i as u64,
            },
        );
    }
    c.start();
    let done = c.run_until_writes(n_writes, 60_000);
    assert_eq!(done, n_writes, "{protocol:?} goodput run incomplete");
    let results = c.results.borrow();
    let start = results
        .writes
        .iter()
        .map(|r| r.start)
        .min()
        .expect("nonempty");
    let end = results
        .writes
        .iter()
        .map(|r| r.end)
        .max()
        .expect("nonempty");
    let bytes: u64 = results.writes.iter().map(|r| r.size as u64).sum();
    nadfs_simnet::achieved_gbit_per_sec(bytes, end - start)
}

/// Replication-policy point for Figs 9/10: latency for a given strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplStrategy {
    CpuRing,
    CpuPbt,
    RdmaFlat,
    HyperLoop,
    SpinRing,
    SpinPbt,
}

impl ReplStrategy {
    pub const ALL: [ReplStrategy; 6] = [
        ReplStrategy::HyperLoop,
        ReplStrategy::CpuRing,
        ReplStrategy::CpuPbt,
        ReplStrategy::RdmaFlat,
        ReplStrategy::SpinRing,
        ReplStrategy::SpinPbt,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ReplStrategy::CpuRing => "CPU-Ring",
            ReplStrategy::CpuPbt => "CPU-PBT",
            ReplStrategy::RdmaFlat => "RDMA-Flat",
            ReplStrategy::HyperLoop => "RDMA-HyperLoop",
            ReplStrategy::SpinRing => "sPIN-Ring",
            ReplStrategy::SpinPbt => "sPIN-PBT",
        }
    }

    pub fn policy(self, k: u8) -> FilePolicy {
        let strategy = match self {
            ReplStrategy::CpuPbt | ReplStrategy::SpinPbt => BcastStrategy::Pbt,
            _ => BcastStrategy::Ring,
        };
        FilePolicy::Replicated { k, strategy }
    }

    pub fn protocol(self) -> WriteProtocol {
        match self {
            ReplStrategy::CpuRing | ReplStrategy::CpuPbt => {
                WriteProtocol::CpuBcast { chunk: 64 << 10 }
            }
            ReplStrategy::RdmaFlat => WriteProtocol::RdmaFlat,
            ReplStrategy::HyperLoop => WriteProtocol::HyperLoop { chunk: 64 << 10 },
            ReplStrategy::SpinRing | ReplStrategy::SpinPbt => WriteProtocol::SpinReplicated,
        }
    }
}

/// Replication latency with per-point chunk optimization (Figs 9/10).
pub fn replication_latency_us(strategy: ReplStrategy, k: u8, size: u32, cost: &CostModel) -> f64 {
    write_latency_best_chunk(strategy.protocol(), strategy.policy(k), size, cost).0
}

/// Mean handler statistics gathered from the primary storage node while
/// serving writes (Table I/II, Fig 11/16): (duration ns, instructions, IPC)
/// per handler kind.
pub struct HandlerReport {
    pub hh: Option<(f64, f64, f64)>,
    pub ph: Option<(f64, f64, f64)>,
    pub ch: Option<(f64, f64, f64)>,
}

pub fn handler_report(
    protocol: WriteProtocol,
    policy: FilePolicy,
    size: u32,
    cost: &CostModel,
    n_writes: usize,
    window: usize,
) -> HandlerReport {
    let spec = ClusterSpec::new(1, nodes_for(&policy), mode_for(protocol))
        .with_cost(cost.clone())
        .with_window(window);
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, policy);
    for i in 0..n_writes {
        c.submit(
            0,
            Job::Write {
                file: file.id,
                size,
                protocol,
                seed: i as u64,
            },
        );
    }
    c.start();
    c.run_until_writes(n_writes, 60_000);
    let clock = cost.pspin.clock_ghz;
    // Primary storage node telemetry.
    let tel = c.pspin_telemetry[0]
        .as_ref()
        .expect("spin mode required for handler reports")
        .borrow();
    HandlerReport {
        hh: tel.summary(HandlerKind::Header, clock),
        ph: tel.summary(HandlerKind::Payload, clock),
        ch: tel.summary(HandlerKind::Completion, clock),
    }
}

/// Fig 7: per-stage pipeline latencies observed for one 2 KiB-packet write.
pub fn pipeline_breakdown_ns(cost: &CostModel) -> [(String, f64); 5] {
    let spec = ClusterSpec::new(1, 1, StorageMode::Spin).with_cost(cost.clone());
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, FilePolicy::Plain);
    c.submit(
        0,
        Job::Write {
            file: file.id,
            // One full-MTU packet's worth of payload.
            size: nadfs_wire::sizes::MTU
                - nadfs_wire::sizes::RDMA_HEADER
                - nadfs_wire::sizes::DFS_HEADER
                - nadfs_wire::sizes::WRH_FIXED,
            protocol: WriteProtocol::Spin,
            seed: 0,
        },
    );
    c.start();
    c.run_until_writes(1, 1_000);
    let tel = c.pspin_telemetry[0].as_ref().expect("pspin").borrow();
    let p = &tel.pipeline;
    [
        ("copy to packet buffer".into(), p.pktbuf_copy_ns.mean()),
        ("inter-cluster scheduling".into(), p.inter_sched_ns.mean()),
        ("copy to fast memory (L1)".into(), p.l1_copy_ns.mean()),
        ("intra-cluster scheduling".into(), p.intra_sched_ns.mean()),
        (
            "handler execution (HH)".into(),
            tel.summary(HandlerKind::Header, cost.pspin.clock_ghz)
                .map(|(d, ..)| d)
                .unwrap_or(f64::NAN),
        ),
    ]
}

/// EC encoding latency (Fig 15 left): client write latency of one
/// erasure-coded block with chunk size `chunk` under RS(k, m).
pub fn ec_encode_latency_us(spin: bool, scheme: RsScheme, chunk: u32, cost: &CostModel) -> f64 {
    let protocol = if spin {
        WriteProtocol::SpinTriec { interleave: true }
    } else {
        WriteProtocol::InecTriec
    };
    let policy = FilePolicy::ErasureCoded { scheme };
    let size = chunk * scheme.k as u32;
    write_latency_us(protocol, policy, size, cost, 3)
}

/// EC encoding throughput (Fig 15 right): window-based, INEC methodology —
/// bandwidth = generated data / elapsed time.
pub fn ec_encode_throughput_gbit(
    spin: bool,
    scheme: RsScheme,
    chunk: u32,
    cost: &CostModel,
    n_writes: usize,
    window: usize,
) -> f64 {
    let protocol = if spin {
        WriteProtocol::SpinTriec { interleave: true }
    } else {
        WriteProtocol::InecTriec
    };
    let policy = FilePolicy::ErasureCoded { scheme };
    let size = chunk * scheme.k as u32;
    storage_goodput_gbit(protocol, policy, size, cost, n_writes, window)
}

/// The latency from write start to the completion time as observed by the
/// cluster clock (diagnostic helper for tests).
pub fn span_us(start: Time, end: Time) -> f64 {
    (end - start).as_us()
}
