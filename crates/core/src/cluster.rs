//! Cluster assembly: wire clients, storage nodes, the fabric, and the
//! control plane into a runnable simulation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use nadfs_host::SharedMemory;
use nadfs_pspin::{ExecutionContext, Telemetry};
use nadfs_rdma::{AppTimer, EcEngine, Nic, NicApp, SharedNicStats};
use nadfs_simnet::{
    ComponentId, CreditConfig, Dur, Engine, Fabric, FabricStats, FlowStats, MetricsSnapshot,
    NodeId, ObsHub, SharedFlowStats, SharedObs, SharedTenantLedgers, SharedTrace, TenantId,
    TenantLedger, Time, Trace, TENANT_REPAIR,
};
use nadfs_wire::Frame;

use crate::client::{ClientApp, Job, ResultSink, SharedPlan, SharedResults, KICK};
use crate::config::CostModel;
use crate::control::{ControlPlane, SharedControl};
use crate::handlers::{DfsHandlers, DfsNicState};
use crate::storage::{SharedStorageStats, StorageApp};

/// How storage-node NICs are provisioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMode {
    /// Conventional RDMA NIC; policies (if any) run on the CPU.
    Plain,
    /// PsPIN installed with the DFS execution context (sPIN protocols).
    Spin,
    /// Conventional NIC with the INEC-style firmware EC engine.
    FirmwareEc,
}

/// Cluster blueprint.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    pub n_clients: usize,
    pub n_storage: usize,
    pub mode: StorageMode,
    pub cost: CostModel,
    /// Outstanding requests each client keeps in flight.
    pub client_window: usize,
    /// NIC accumulator pool entries for EC aggregation (§VI-B-3).
    pub accumulator_pool: usize,
    /// Build with live observability (op spans, metrics hub, trace ring)
    /// wired through every component. On by default: everything is
    /// bounded (span/trace rings) and costs one branch per op when idle.
    pub observability: bool,
    /// Enable DES-engine dispatch profiling (host wall-clock per handler;
    /// off by default because it perturbs wall-clock benchmarks).
    pub engine_profiling: bool,
    /// Flow control budgets + per-tenant QoS.
    pub qos: QosConfig,
    /// Metadata shards in the control plane (hash-partitioned namespace
    /// + extent maps; 1 = the unsharded seed behavior).
    pub meta_shards: usize,
}

/// Per-tenant QoS at the storage nodes: deficit-round-robin service of
/// RPC dispatch and DFS read streams, weighted by tenant. Disabled by
/// default (first-come service, the pre-QoS behavior); the credit-based
/// WR flow control on every NIC is always on and configured by `credit`.
#[derive(Clone, Debug)]
pub struct QosConfig {
    /// Turn on the per-tenant schedulers at storage nodes.
    pub enabled: bool,
    /// Per-peer WR budgets for every NIC's credit layer.
    pub credit: CreditConfig,
    /// Concurrent DFS read response streams per storage NIC.
    pub max_read_streams: usize,
    /// Concurrently serviced RPCs per storage node.
    pub rpc_concurrency: usize,
    /// DRR quantum in cost units (bytes) per visit at weight 1.
    pub quantum: u64,
    /// Weight for tenants without an explicit override.
    pub default_weight: u32,
    /// Weight for the background repair pseudo-tenant ([`TENANT_REPAIR`]);
    /// kept low so drains cannot starve foreground I/O.
    pub repair_weight: u32,
    /// Explicit per-tenant weight overrides.
    pub weights: Vec<(TenantId, u32)>,
}

impl Default for QosConfig {
    fn default() -> QosConfig {
        QosConfig {
            enabled: false,
            credit: CreditConfig::default(),
            max_read_streams: 8,
            rpc_concurrency: 8,
            quantum: 64 << 10,
            default_weight: 1,
            repair_weight: 1,
            weights: Vec::new(),
        }
    }
}

impl QosConfig {
    /// All tenant weights including the repair pseudo-tenant.
    fn all_weights(&self) -> Vec<(TenantId, u32)> {
        let mut w = self.weights.clone();
        w.push((TENANT_REPAIR, self.repair_weight));
        w
    }
}

/// Completed-span ring capacity for clusters built with observability.
const SPAN_CAP: usize = 4096;
/// Trace-ring capacity for clusters built with observability.
const TRACE_CAP: usize = 8192;

impl ClusterSpec {
    pub fn new(n_clients: usize, n_storage: usize, mode: StorageMode) -> ClusterSpec {
        ClusterSpec {
            n_clients,
            n_storage,
            mode,
            cost: CostModel::paper(),
            client_window: 1,
            accumulator_pool: 512,
            observability: true,
            engine_profiling: false,
            qos: QosConfig::default(),
            meta_shards: 1,
        }
    }

    pub fn with_cost(mut self, cost: CostModel) -> ClusterSpec {
        self.cost = cost;
        self
    }

    pub fn with_window(mut self, w: usize) -> ClusterSpec {
        self.client_window = w;
        self
    }

    pub fn with_accumulator_pool(mut self, n: usize) -> ClusterSpec {
        self.accumulator_pool = n;
        self
    }

    pub fn with_observability(mut self, on: bool) -> ClusterSpec {
        self.observability = on;
        self
    }

    pub fn with_engine_profiling(mut self) -> ClusterSpec {
        self.engine_profiling = true;
        self
    }

    pub fn with_qos(mut self, qos: QosConfig) -> ClusterSpec {
        self.qos = qos;
        self
    }

    pub fn with_meta_shards(mut self, n: usize) -> ClusterSpec {
        self.meta_shards = n;
        self
    }
}

/// A built, runnable cluster.
pub struct SimCluster {
    pub engine: Engine,
    pub control: SharedControl,
    pub results: SharedResults,
    pub spec: ClusterSpec,
    /// Fabric node ids: clients are `0..n_clients`, storage follows.
    pub client_nodes: Vec<NodeId>,
    pub storage_nodes: Vec<NodeId>,
    client_components: Vec<ComponentId>,
    pub plans: Vec<SharedPlan>,
    pub storage_mems: Vec<SharedMemory>,
    pub storage_stats: Vec<SharedStorageStats>,
    /// Per-client metadata caches (index-aligned with `client_nodes`).
    pub client_caches: Vec<Rc<RefCell<nadfs_meta::MetaCache>>>,
    /// Per-client read caches (index-aligned with `client_nodes`).
    pub read_caches: Vec<Rc<RefCell<crate::cache::ReadCache>>>,
    /// Per-client read-path counters (index-aligned with `client_nodes`).
    pub client_read_stats: Vec<crate::client::SharedClientReadStats>,
    /// Per-storage-NIC gather/offload counters (index-aligned with
    /// `storage_nodes`).
    pub nic_stats: Vec<SharedNicStats>,
    /// Flow-control counters for every NIC (clients then storage, in
    /// fabric-node order).
    pub flow_stats: Vec<SharedFlowStats>,
    /// Buffer-pool handles for every NIC (clients then storage, in
    /// fabric-node order) — long-horizon harnesses audit these for
    /// leak/boundedness at checkpoints.
    pub buf_pools: Vec<nadfs_simnet::SharedBufPool>,
    /// Per-tenant service ledgers of every QoS scheduling point (storage
    /// read streams + storage RPC service); empty when QoS is off.
    pub tenant_ledgers: Vec<SharedTenantLedgers>,
    /// Per-client tenant-id cells (index-aligned with `client_nodes`):
    /// `None` = the client's node id. Set via [`crate::fs::FsClient`] or
    /// directly to group clients into tenants after build.
    pub client_tenants: Vec<Rc<std::cell::Cell<Option<TenantId>>>>,
    pub pspin_telemetry: Vec<Option<Rc<RefCell<Telemetry>>>>,
    pub fabric_stats: Rc<RefCell<FabricStats>>,
    /// Shared observability hub (op spans + metrics); disabled when the
    /// spec opted out.
    pub obs: SharedObs,
    /// Shared trace ring (instant annotations from every component).
    pub trace: SharedTrace,
}

impl SimCluster {
    /// Build a cluster per `spec`. Client i's node id equals i, which is
    /// also the DFS client id carried in capabilities.
    pub fn build(spec: ClusterSpec) -> SimCluster {
        Self::build_with(spec, |_| {})
    }

    /// Build, with a hook to customize each client app before installation
    /// (e.g. forged capabilities or abandoned writes for failure tests).
    pub fn build_with<F: FnMut(&mut ClientApp)>(spec: ClusterSpec, mut tweak: F) -> SimCluster {
        let mut engine = Engine::new();
        if spec.engine_profiling {
            engine.enable_profiling();
        }
        let (obs, trace) = if spec.observability {
            (ObsHub::new(SPAN_CAP), Trace::new(TRACE_CAP))
        } else {
            (ObsHub::disabled(), Trace::disabled())
        };
        let fid = engine.reserve_id();
        let client_components: Vec<_> = (0..spec.n_clients).map(|_| engine.reserve_id()).collect();
        let storage_components: Vec<_> = (0..spec.n_storage).map(|_| engine.reserve_id()).collect();

        let mut fab: Fabric<Frame> = Fabric::new(spec.cost.fabric.clone(), fid);
        let client_ports: Vec<_> = client_components
            .iter()
            .map(|&c| fab.register_node(c, None))
            .collect();
        let storage_ports: Vec<_> = storage_components
            .iter()
            .map(|&c| {
                let ingress = match spec.mode {
                    StorageMode::Spin => Some(spec.cost.pspin.pktbuf_slots),
                    _ => None,
                };
                fab.register_node(c, ingress)
            })
            .collect();
        let fabric_stats = fab.stats();
        engine.install(fid, Box::new(fab));

        let client_nodes: Vec<NodeId> = client_ports.iter().map(|p| p.node).collect();
        let storage_nodes: Vec<NodeId> = storage_ports.iter().map(|p| p.node).collect();
        let control = ControlPlane::new_sharded(0xD15C, storage_nodes.clone(), spec.meta_shards);
        control.borrow_mut().set_meta_costs(spec.cost.meta.clone());
        let key = control.borrow().service_key();

        let results: SharedResults = Rc::new(RefCell::new(ResultSink::default()));
        let mut plans = Vec::new();
        let mut client_caches = Vec::new();
        let mut read_caches = Vec::new();
        let mut client_read_stats = Vec::new();
        let mut client_tenants = Vec::new();
        let mut flow_stats = Vec::new();
        let mut buf_pools = Vec::new();
        for (&comp, port) in client_components.iter().zip(client_ports) {
            let plan: SharedPlan = Rc::new(RefCell::new(VecDeque::new()));
            plans.push(plan.clone());
            let mut app =
                ClientApp::new(control.clone(), results.clone(), plan, spec.client_window);
            app.meta_costs = spec.cost.meta.clone();
            app.obs = obs.clone();
            app.trace = trace.clone();
            tweak(&mut app);
            client_caches.push(app.meta_cache.clone());
            read_caches.push(app.read_cache.clone());
            client_read_stats.push(app.read_stats.clone());
            client_tenants.push(app.tenant.clone());
            let mut nic = Nic::new(spec.cost.nic.clone(), port, comp, Box::new(app));
            nic.core.set_credit_config(spec.qos.credit);
            flow_stats.push(nic.core.flow_stats());
            buf_pools.push(nic.core.buf_pool());
            engine.install(comp, Box::new(nic));
        }

        let mut storage_mems = Vec::new();
        let mut storage_stats = Vec::new();
        let mut pspin_telemetry = Vec::new();
        let mut nic_stats = Vec::new();
        let mut tenant_ledgers = Vec::new();
        for (&comp, port) in storage_components.iter().zip(storage_ports) {
            let mut app = StorageApp::new(key, spec.cost.fabric.link_bw);
            app.obs = obs.clone();
            app.trace = trace.clone();
            storage_stats.push(app.stats.clone());
            if spec.qos.enabled {
                let q = crate::storage::StorageQos::new(
                    spec.qos.quantum,
                    spec.qos.default_weight,
                    &spec.qos.all_weights(),
                    spec.qos.rpc_concurrency,
                );
                tenant_ledgers.push(q.scheduler().ledgers_handle());
                app.qos = Some(q);
            }
            let mut nic = Nic::new(
                spec.cost.nic.clone(),
                port,
                comp,
                Box::new(app) as Box<dyn NicApp>,
            );
            nic.core.set_credit_config(spec.qos.credit);
            if spec.qos.enabled {
                nic.core.install_read_qos(
                    spec.qos.quantum,
                    spec.qos.default_weight,
                    &spec.qos.all_weights(),
                    spec.qos.max_read_streams,
                );
                let qos = nic.core.read_qos.as_ref().expect("just installed");
                tenant_ledgers.push(qos.scheduler().ledgers_handle());
            }
            flow_stats.push(nic.core.flow_stats());
            buf_pools.push(nic.core.buf_pool());
            // NIC-side read validation: every storage NIC authenticates
            // DFS-level read requests against the service key before a
            // byte leaves the node (one-sided reads never touch the CPU).
            nic.core.install_service_key(key);
            nic.core.obs = obs.clone();
            nic.core.trace = trace.clone();
            match spec.mode {
                StorageMode::Plain => {}
                StorageMode::Spin => {
                    // Handler state shares the NIC's buffer ring so
                    // accumulator/parity buffers recycle through the device.
                    let mut state = DfsNicState::with_buf_pool(
                        key,
                        spec.cost.handlers.clone(),
                        spec.accumulator_pool,
                        nic.core.buf_pool(),
                    );
                    state.set_obs(obs.clone(), trace.clone(), nic.core.node());
                    nic.core.install_pspin(
                        spec.cost.pspin.clone(),
                        ExecutionContext {
                            handlers: Box::new(DfsHandlers),
                            state: Box::new(state),
                            state_bytes: spec.cost.pspin_state_bytes,
                            descriptor_bytes: spec.cost.descriptor_bytes,
                        },
                    );
                }
                StorageMode::FirmwareEc => {
                    nic.core
                        .enable_firmware_ec(EcEngine::new(spec.cost.ec_engine.clone()));
                }
            }
            storage_mems.push(nic.core.memory());
            pspin_telemetry.push(nic.core.pspin().map(|d| d.telemetry()));
            nic_stats.push(nic.core.nic_stats());
            engine.install(comp, Box::new(nic));
        }

        // Placement decisions are counted on the nodes they land on.
        control
            .borrow_mut()
            .attach_storage_stats(storage_stats.clone());

        SimCluster {
            engine,
            control,
            results,
            spec,
            client_nodes,
            storage_nodes,
            client_components,
            plans,
            storage_mems,
            storage_stats,
            client_caches,
            read_caches,
            client_read_stats,
            nic_stats,
            flow_stats,
            buf_pools,
            tenant_ledgers,
            client_tenants,
            pspin_telemetry,
            fabric_stats,
            obs,
            trace,
        }
    }

    /// Group client `i` into tenant `t` for QoS scheduling (default:
    /// every client is its own tenant, id = node id).
    pub fn set_client_tenant(&self, i: usize, t: TenantId) {
        self.client_tenants[i].set(Some(t));
    }

    /// One coherent metrics snapshot: the op-span derived series already
    /// in the hub, plus every component's stats struct registered under
    /// stable names (`storage.<i>.*`, `client.<i>.*`, `repair.*`,
    /// `pspin.<i>.*`, `fabric.*`, `engine.*`). Stable schema
    /// [`nadfs_simnet::SNAPSHOT_SCHEMA`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut hub = self.obs.borrow_mut();
        let m = &mut hub.metrics;
        for (i, st) in self.storage_stats.iter().enumerate() {
            let s = st.borrow();
            let pre = format!("storage.{i}");
            m.counter_set(&format!("{pre}.rpc_writes"), s.rpc_writes);
            m.counter_set(&format!("{pre}.rpc_rdma_writes"), s.rpc_rdma_writes);
            m.counter_set(&format!("{pre}.rpc_reads"), s.rpc_reads);
            m.counter_set(&format!("{pre}.chunks_forwarded"), s.chunks_forwarded);
            m.counter_set(&format!("{pre}.auth_failures"), s.auth_failures);
            m.counter_set(
                &format!("{pre}.fallback_aggregations"),
                s.fallback_aggregations,
            );
            m.counter_set(&format!("{pre}.cleanup_events"), s.cleanup_events);
            m.counter_set(
                &format!("{pre}.stripe_chunks_placed"),
                s.stripe_chunks_placed,
            );
            m.counter_set(
                &format!("{pre}.repair_chunks_hosted"),
                s.repair_chunks_hosted,
            );
            m.gauge_set(&format!("{pre}.chunks_hosted"), s.chunks_hosted as f64);
            m.gauge_set(&format!("{pre}.bytes_hosted"), s.bytes_hosted as f64);
            m.counter_set(
                &format!("{pre}.stale_chunks_reclaimed"),
                s.stale_chunks_reclaimed,
            );
            m.counter_set(
                &format!("{pre}.stale_bytes_reclaimed"),
                s.stale_bytes_reclaimed,
            );
        }
        for (i, c) in self.client_caches.iter().enumerate() {
            let s = c.borrow().stats;
            let pre = format!("client.{i}.meta_cache");
            m.counter_set(&format!("{pre}.hits"), s.hits);
            m.counter_set(&format!("{pre}.misses"), s.misses);
            m.counter_set(&format!("{pre}.invalidations"), s.invalidations);
            m.counter_set(&format!("{pre}.writeback_absorbed"), s.writeback_absorbed);
            m.counter_set(&format!("{pre}.writeback_flushes"), s.writeback_flushes);
        }
        for (i, c) in self.read_caches.iter().enumerate() {
            let cache = c.borrow();
            let s = &cache.stats;
            let pre = format!("client.{i}.read_cache");
            m.counter_set(&format!("{pre}.hits"), s.hits);
            m.counter_set(&format!("{pre}.misses"), s.misses);
            m.counter_set(&format!("{pre}.hit_bytes"), s.hit_bytes);
            m.counter_set(&format!("{pre}.invalidations"), s.invalidations);
            m.counter_set(&format!("{pre}.stale_fills"), s.stale_fills);
            m.counter_set(&format!("{pre}.evictions"), s.evictions);
            m.counter_set(&format!("{pre}.inserted_bytes"), s.inserted_bytes);
            m.counter_set(&format!("{pre}.readahead_bytes"), s.readahead_bytes);
            m.counter_set(&format!("{pre}.write_fills"), s.write_fills);
            m.counter_set(&format!("{pre}.hints"), s.hints);
            m.counter_set(&format!("{pre}.hint_boosts"), s.hint_boosts);
        }
        for (i, c) in self.client_read_stats.iter().enumerate() {
            let s = *c.borrow();
            let pre = format!("client.{i}.read");
            m.counter_set(
                &format!("{pre}.reconstructed_stripes"),
                s.reconstructed_stripes,
            );
            m.counter_set(&format!("{pre}.offloaded_reads"), s.offloaded_reads);
            m.counter_set(
                &format!("{pre}.offloaded_degraded_stripes"),
                s.offloaded_degraded_stripes,
            );
            m.counter_set(
                &format!("{pre}.background_readaheads"),
                s.background_readaheads,
            );
        }
        for (i, c) in self.nic_stats.iter().enumerate() {
            let s = *c.borrow();
            let pre = format!("nic.{i}.gather");
            m.counter_set(&format!("{pre}.reads"), s.gather_reads);
            m.counter_set(&format!("{pre}.auth_failures"), s.gather_auth_failures);
            m.counter_set(&format!("{pre}.remote_fetches"), s.gather_remote_fetches);
            m.counter_set(&format!("{pre}.bytes_streamed"), s.gather_bytes_streamed);
            m.counter_set(
                &format!("{pre}.chunks_reconstructed"),
                s.chunks_reconstructed,
            );
        }
        for (i, t) in self.pspin_telemetry.iter().enumerate() {
            let Some(t) = t else { continue };
            let t = t.borrow();
            let pre = format!("pspin.{i}");
            m.counter_set(&format!("{pre}.pkts_processed"), t.pkts_processed);
            m.counter_set(&format!("{pre}.msgs_opened"), t.msgs_opened);
            m.counter_set(&format!("{pre}.msgs_completed"), t.msgs_completed);
            m.counter_set(&format!("{pre}.msgs_denied"), t.msgs_denied);
            m.counter_set(&format!("{pre}.msgs_cleaned"), t.msgs_cleaned);
            m.gauge_set(
                "pspin.descriptor_peak_bytes",
                t.descriptor_peak_bytes as f64,
            );
        }
        {
            let r = self.control.borrow().repair_queue.stats;
            m.counter_set("repair.enqueued", r.enqueued);
            m.counter_set("repair.promoted", r.promoted);
            m.counter_set("repair.committed", r.committed);
            m.counter_set("repair.requeued", r.requeued);
            m.counter_set("repair.shards_rehomed", r.shards_rehomed);
            m.counter_set("repair.dropped_on_recovery", r.dropped_on_recovery);
            m.counter_set("repair.shards_readopted", r.shards_readopted);
        }
        {
            // Metadata-shard counters: routing balance, queueing, and
            // the async-commit machinery (op-log depth, 2PC traffic).
            let control = self.control.borrow();
            let lens = control.shard_log_lens();
            for (i, s) in control.shard_stats().iter().enumerate() {
                let pre = format!("meta.shard.{i}");
                m.counter_set(&format!("{pre}.ops"), s.ops);
                m.counter_set(&format!("{pre}.mutations"), s.mutations);
                m.counter_set(&format!("{pre}.resolves"), s.resolves);
                m.counter_set(&format!("{pre}.queue_wait_ps"), s.queue_wait_ps);
                m.counter_set(&format!("{pre}.cross_shard_txns"), s.cross_shard_txns);
                m.counter_set(&format!("{pre}.compactions"), s.compactions);
                m.counter_set(&format!("{pre}.records_dropped"), s.records_dropped);
                m.gauge_set(&format!("{pre}.log_len"), lens[i] as f64);
            }
        }
        {
            // Credit-layer counters, aggregated across every NIC: the
            // interesting signals (stalls, queue depth churn, grant
            // traffic) are cluster-wide.
            let mut agg = FlowStats::default();
            for h in &self.flow_stats {
                let s = *h.borrow();
                for i in 0..4 {
                    agg.posted[i] += s.posted[i];
                    agg.completed[i] += s.completed[i];
                }
                agg.queued += s.queued;
                agg.released += s.released;
                agg.local_stalls += s.local_stalls;
                agg.remote_stalls += s.remote_stalls;
                agg.granted_piggyback += s.granted_piggyback;
                agg.granted_standalone += s.granted_standalone;
                agg.grants_received += s.grants_received;
            }
            for class in nadfs_simnet::WrClass::ALL {
                let i = class.index();
                m.counter_set(&format!("flow.posted.{}", class.as_str()), agg.posted[i]);
                m.counter_set(
                    &format!("flow.completed.{}", class.as_str()),
                    agg.completed[i],
                );
            }
            m.counter_set("flow.queued", agg.queued);
            m.counter_set("flow.released", agg.released);
            m.counter_set("flow.local_stalls", agg.local_stalls);
            m.counter_set("flow.remote_stalls", agg.remote_stalls);
            m.counter_set("flow.granted_piggyback", agg.granted_piggyback);
            m.counter_set("flow.granted_standalone", agg.granted_standalone);
            m.counter_set("flow.grants_received", agg.grants_received);
        }
        {
            // Per-tenant service ledgers, aggregated across scheduling
            // points (read-stream + RPC schedulers of every storage node).
            let mut by_tenant: std::collections::BTreeMap<TenantId, TenantLedger> =
                std::collections::BTreeMap::new();
            for h in &self.tenant_ledgers {
                for (&t, l) in h.borrow().iter() {
                    let e = by_tenant.entry(t).or_default();
                    e.enqueued += l.enqueued;
                    e.dispatched += l.dispatched;
                    e.cost_dispatched += l.cost_dispatched;
                    e.queued += l.queued;
                }
            }
            for (t, l) in by_tenant {
                let pre = if t == TENANT_REPAIR {
                    "tenant.repair".to_string()
                } else {
                    format!("tenant.{t}")
                };
                m.counter_set(&format!("{pre}.enqueued"), l.enqueued);
                m.counter_set(&format!("{pre}.dispatched"), l.dispatched);
                m.counter_set(&format!("{pre}.cost_dispatched"), l.cost_dispatched);
            }
        }
        m.counter_set(
            "fabric.switch_holds",
            self.fabric_stats.borrow().switch_holds,
        );
        m.counter_set("engine.events_dispatched", self.engine.events_dispatched());
        // DES dispatch profile: the measured baseline for the per-packet
        // boxing overhead item (ROADMAP) — dispatches and host-side busy
        // time per component kind.
        for p in self.engine.profiles_by_kind() {
            m.counter_set(&format!("engine.kind.{}.dispatches", p.name), p.dispatches);
            m.counter_set(
                &format!("engine.kind.{}.busy_host_ns", p.name),
                p.busy_host_ns,
            );
        }
        let spans = &hub.spans;
        let (open, done, dropped) = (spans.open_count(), spans.done_count(), spans.dropped());
        let m = &mut hub.metrics;
        m.gauge_set("spans.open", open as f64);
        m.gauge_set("spans.done", done as f64);
        m.gauge_set("spans.dropped", dropped as f64);
        hub.metrics.snapshot()
    }

    /// Export completed spans + the trace ring as Chrome trace-event JSON
    /// (loadable in Perfetto / `chrome://tracing`).
    pub fn export_chrome_trace(&self) -> String {
        let hub = self.obs.borrow();
        nadfs_simnet::telemetry::chrome_trace_json(hub.spans.done(), &self.trace.borrow())
    }

    /// Queue a job on client `i`'s plan.
    pub fn submit(&self, client: usize, job: Job) {
        self.plans[client].borrow_mut().push_back(job);
    }

    /// Kick every client's driver at `t = now`.
    pub fn start(&mut self) {
        for &comp in &self.client_components {
            self.engine
                .schedule(Dur::ZERO, comp, Box::new(AppTimer { tag: KICK }));
        }
    }

    /// Run until `count(results) >= n` or `deadline_ms` passes, stepping
    /// in bounded slices so the predicate is re-checked. Returns the
    /// final count.
    fn run_until_count(
        &mut self,
        n: usize,
        deadline_ms: u64,
        count: impl Fn(&ResultSink) -> usize,
    ) -> usize {
        let deadline = Time(Dur::from_ms(deadline_ms).ps());
        loop {
            if count(&self.results.borrow()) >= n {
                break;
            }
            if self.engine.now() >= deadline {
                break;
            }
            let target = (self.engine.now() + Dur::from_us(50)).min(deadline);
            if self.engine.run_until(target) {
                break; // queue drained
            }
        }
        let n_done = count(&self.results.borrow());
        n_done
    }

    /// Run until `n` write results exist or `deadline_ms` passes.
    /// Returns the number of results collected.
    pub fn run_until_writes(&mut self, n: usize, deadline_ms: u64) -> usize {
        self.run_until_count(n, deadline_ms, |r| r.writes.len())
    }

    /// Run until `n` metadata results exist or `deadline_ms` passes.
    /// Returns the number of results collected.
    pub fn run_until_metas(&mut self, n: usize, deadline_ms: u64) -> usize {
        self.run_until_count(n, deadline_ms, |r| r.metas.len())
    }

    /// Run until `n` file-level read completions exist or `deadline_ms`
    /// passes. Returns the number of completions collected.
    pub fn run_until_file_reads(&mut self, n: usize, deadline_ms: u64) -> usize {
        self.run_until_count(n, deadline_ms, |r| r.file_reads.len())
    }

    /// Run for a fixed amount of simulated time.
    pub fn run_ms(&mut self, ms: u64) {
        let t = self.engine.now() + Dur::from_ms(ms);
        self.engine.run_until(t);
    }

    /// Drive the engine in bounded slices until the oneshot `slot` fills
    /// or `deadline_ms` of simulated time passes. `None` means timeout,
    /// or a drained event queue with the slot still empty (the operation
    /// can never complete). The shared wait loop under `FsClient`'s
    /// typed operations and the repair driver.
    pub fn run_until_slot<T: Clone>(
        &mut self,
        slot: &Rc<RefCell<Option<T>>>,
        deadline_ms: u64,
    ) -> Option<T> {
        let deadline = self.engine.now() + Dur::from_ms(deadline_ms);
        loop {
            if let Some(v) = slot.borrow_mut().take() {
                return Some(v);
            }
            if self.engine.now() >= deadline {
                return None;
            }
            let target: Time = (self.engine.now() + Dur::from_us(50)).min(deadline);
            if self.engine.run_until(target) {
                return slot.borrow_mut().take();
            }
        }
    }

    /// Index of a storage node in `storage_*` vectors from its node id.
    pub fn storage_index(&self, node: NodeId) -> usize {
        self.storage_nodes
            .iter()
            .position(|&n| n == node)
            .expect("storage node id")
    }
}
