//! Client-side read cache + readahead, keyed by the extent-map
//! generation.
//!
//! Every `read_at` the cache absorbs skips the whole uncached pipeline: a
//! control-plane resolve, a capability header, the per-stripe fan-out of
//! one-sided reads, and — for degraded ranges — a full k-shard
//! reconstruction. This is the Lustre/AsyncFS-style client cache the
//! roadmap seeds, with invalidation made *precise* by the generation
//! counter PR 4 threaded through commits and repair re-homing
//! ([`nadfs_meta::ExtentMap::generation`]): every cached byte range is
//! tagged with the generation of the [`ReadPlan`] that fetched it, and a
//! [`MetaEvent::LayoutChanged`] callback for a newer generation drops
//! exactly the affected file — nothing else.
//!
//! Coherence invariants:
//!
//! * **Fill**: bytes enter the cache only from a completed read, tagged
//!   with the plan's generation. Fills older than the newest generation
//!   the cache has *heard about* (even if nothing was cached at the time)
//!   are discarded — an invalidation racing an in-flight fetch can never
//!   resurrect stale bytes.
//! * **Invalidate**: any commit, overwrite, or repair re-homing bumps the
//!   file's generation; the control plane fans the event to every
//!   registered cache over the same callback channel namespace mutations
//!   ride. Unlink/rename-replace publish `generation == u64::MAX`,
//!   dropping the file unconditionally.
//! * **EOF**: a short read proves where the committed EOF was at that
//!   generation, so repeat reads past EOF (and EOF-clamped tails) are
//!   served locally too. Size can only move with a commit, which bumps
//!   the generation, so a cached EOF is exactly as fresh as the data.
//!
//! Readahead is overfetch-based: the client driver asks
//! [`ReadCache::plan_readahead`] how far past a missing range to fetch.
//! Sequential streams (detected by `offset == previous end`) ramp the
//! window multiplicatively up to a cap; random access fetches exactly
//! what was asked. The overfetched bytes land in the cache, so a
//! streaming reader alternates one fan-out miss with a run of local hits.
//!
//! [`MetaEvent::LayoutChanged`]: nadfs_meta::MetaEvent
//! [`ReadPlan`]: nadfs_meta::ReadPlan

use std::collections::{BTreeMap, HashMap};

/// Tuning knobs for a client's [`ReadCache`].
#[derive(Clone, Copy, Debug)]
pub struct ReadCacheConfig {
    /// Cap on cached payload bytes per client: least-recently-used
    /// *other* files are evicted first, then the freshly-filled file's
    /// own coldest (lowest-offset) bytes are trimmed, so even a single
    /// long sequential scan stays bounded.
    pub capacity_bytes: usize,
    /// First readahead window granted to a detected sequential stream.
    pub readahead_init: u32,
    /// Ceiling the per-stream window ramps to (doubling per miss while
    /// the stream stays sequential).
    pub readahead_max: u32,
}

impl Default for ReadCacheConfig {
    fn default() -> ReadCacheConfig {
        ReadCacheConfig {
            capacity_bytes: 16 << 20,
            readahead_init: 64 << 10,
            readahead_max: 1 << 20,
        }
    }
}

/// Observable cache behavior (asserted by tests, reported by benches).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadCacheStats {
    /// Lookups served entirely from client memory.
    pub hits: u64,
    /// Lookups that had to go to the network.
    pub misses: u64,
    /// Bytes served from cache (EOF-clamped: what the caller got).
    pub hit_bytes: u64,
    /// Files dropped by generation callbacks (commit/overwrite/repair).
    pub invalidations: u64,
    /// Fills discarded because the file's generation moved while the
    /// fetch was in flight (the stale-resurrection guard).
    pub stale_fills: u64,
    /// Files evicted by the capacity cap.
    pub evictions: u64,
    /// Bytes inserted into the cache (fills, including readahead).
    pub inserted_bytes: u64,
    /// Bytes fetched beyond what callers asked for (readahead volume).
    pub readahead_bytes: u64,
    /// Fills populated straight from a locally written payload
    /// (write-through), making read-after-write a local hit.
    pub write_fills: u64,
    /// Control-plane prefetch advisories received.
    pub hints: u64,
    /// Readahead plans boosted by a prefetch advisory.
    pub hint_boosts: u64,
}

impl ReadCacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What a [`ReadCache::lookup`] hit serves.
#[derive(Clone, Debug)]
pub struct CachedRead {
    /// The bytes (possibly shorter than requested when the cached EOF
    /// clamps the range, exactly like a short `pread`).
    pub data: Vec<u8>,
    /// Generation of the extent map the bytes were fetched under.
    pub generation: u64,
}

/// Cached state of one file: disjoint byte spans plus the committed EOF
/// when a short read has proven it.
struct FileCache {
    generation: u64,
    /// Disjoint spans keyed by start offset. Overlapping fills merge;
    /// exactly-adjacent fills (the sequential-readahead shape) stay
    /// separate so a long stream never re-copies what it accumulated —
    /// lookups stitch across abutting spans.
    spans: BTreeMap<u64, Vec<u8>>,
    bytes: usize,
    /// Committed size, once a clamped read has revealed it. Valid for as
    /// long as the generation holds (size only moves with a commit, and
    /// every commit bumps the generation).
    eof: Option<u64>,
    /// LRU clock value of the last touch.
    touched: u64,
}

/// Per-file sequential-stream detector state.
#[derive(Clone, Copy, Debug, Default)]
struct StreamState {
    /// Offset one past the end of the last access.
    next_expected: u64,
    /// Current readahead window (0 until the stream looks sequential).
    window: u32,
    /// At least one access has been seen (so `next_expected` means
    /// something).
    primed: bool,
    /// Whether the most recent access continued the stream.
    last_sequential: bool,
}

/// The per-client read cache. One instance hangs off each
/// [`crate::client::ClientApp`] and is registered with the control plane
/// for generation callbacks at cluster build time.
pub struct ReadCache {
    pub config: ReadCacheConfig,
    pub stats: ReadCacheStats,
    files: HashMap<u64, FileCache>,
    /// Newest generation heard per file — survives invalidation (and even
    /// full eviction) so an in-flight fill from before the bump can never
    /// re-populate stale bytes.
    latest_gen: HashMap<u64, u64>,
    streams: HashMap<u64, StreamState>,
    /// Control-plane prefetch advisories: per file, the range some client
    /// (maybe this one) is about to scan. Consumed by the next
    /// [`ReadCache::plan_readahead`] for the file.
    hints: HashMap<u64, (u64, u32)>,
    clock: u64,
}

impl Default for ReadCache {
    fn default() -> ReadCache {
        ReadCache::new(ReadCacheConfig::default())
    }
}

impl ReadCache {
    pub fn new(config: ReadCacheConfig) -> ReadCache {
        ReadCache {
            config,
            stats: ReadCacheStats::default(),
            files: HashMap::new(),
            latest_gen: HashMap::new(),
            streams: HashMap::new(),
            hints: HashMap::new(),
            clock: 0,
        }
    }

    /// Cached payload bytes currently held.
    pub fn cached_bytes(&self) -> usize {
        self.files.values().map(|f| f.bytes).sum()
    }

    /// Number of files with cached data.
    pub fn cached_files(&self) -> usize {
        self.files.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Serve `[offset, offset + len)` of `file` from cache, or report a
    /// miss. A hit requires every byte up to the (possibly EOF-clamped)
    /// end to be covered by one cached span; reads entirely past a known
    /// EOF hit with zero bytes. Updates hit/miss stats and the
    /// sequential-stream tracker.
    pub fn lookup(&mut self, file: u64, offset: u64, len: u32) -> Option<CachedRead> {
        let now = self.tick();
        let result = self.try_serve(file, offset, len, now);
        match &result {
            Some(r) => {
                self.stats.hits += 1;
                self.stats.hit_bytes += r.data.len() as u64;
            }
            None => self.stats.misses += 1,
        }
        self.note_access(file, offset, len);
        result
    }

    fn try_serve(&mut self, file: u64, offset: u64, len: u32, now: u64) -> Option<CachedRead> {
        let f = self.files.get_mut(&file)?;
        // Clamp like resolve_read does: a known EOF shortens the request;
        // without one the full range must be covered.
        let want_end = offset.saturating_add(len as u64);
        let end = match f.eof {
            Some(eof) => want_end.min(eof.max(offset)),
            None => want_end,
        };
        let served = (end - offset) as usize;
        if served == 0 {
            // Entirely past the committed EOF: an empty short read,
            // answerable with no data at all.
            f.touched = now;
            return Some(CachedRead {
                data: Vec::new(),
                generation: f.generation,
            });
        }
        // Stitch across spans: adjacent fills are stored separately (so
        // sequential streams never pay a re-coalescing copy), so a hit
        // may cross several exactly-abutting spans.
        let (&start, span) = f.spans.range(..=offset).next_back()?;
        let span_end = start + span.len() as u64;
        if span_end <= offset {
            return None;
        }
        let mut data = Vec::with_capacity(served);
        let lo = (offset - start) as usize;
        let take = (span_end.min(end) - offset) as usize;
        data.extend_from_slice(&span[lo..lo + take]);
        let mut pos = offset + take as u64;
        for (&s, v) in f.spans.range(span_end..) {
            if pos >= end {
                break;
            }
            if s != pos {
                return None; // gap inside the requested range
            }
            let take = ((end - pos) as usize).min(v.len());
            data.extend_from_slice(&v[..take]);
            pos += take as u64;
        }
        if pos < end {
            return None;
        }
        f.touched = now;
        Some(CachedRead {
            data,
            generation: f.generation,
        })
    }

    /// Record an access for sequential-stream detection (both hits and
    /// misses advance the stream).
    fn note_access(&mut self, file: u64, offset: u64, len: u32) {
        let s = self.streams.entry(file).or_default();
        let sequential = s.primed && offset == s.next_expected;
        if !sequential {
            s.window = 0; // the stream broke (or just started)
        }
        s.last_sequential = sequential;
        s.primed = true;
        s.next_expected = offset.saturating_add(len as u64);
    }

    /// How many bytes past `offset + len` the driver should overfetch for
    /// this miss. Zero for random access; a multiplicatively ramping
    /// window for sequential streams. Call *after* [`Self::lookup`]
    /// missed (lookup advances the stream tracker this consults).
    pub fn plan_readahead(&mut self, file: u64, offset: u64, len: u32) -> u32 {
        let init = self.config.readahead_init;
        let max = self.config.readahead_max;
        if init == 0 {
            return 0;
        }
        let (last_sequential, window) = {
            let s = self.streams.entry(file).or_default();
            (s.last_sequential, s.window)
        };
        let mut w = if !last_sequential {
            0
        } else if window == 0 {
            init.min(max)
        } else {
            window.saturating_mul(2).min(max)
        };
        // A control-plane prefetch advisory can grant (or widen) a window
        // even before the local stream detector warms up — e.g. when
        // another client's scan of the same file taught the control plane
        // the access pattern. One-shot: consumed by the first plan.
        if let Some(&(h_off, h_len)) = self.hints.get(&file) {
            let tail = offset.saturating_add(len as u64);
            let h_end = h_off.saturating_add(h_len as u64);
            if h_off <= tail && h_end > tail {
                let boost = ((h_end - tail) as u32).min(max);
                if boost > w {
                    w = boost;
                    self.stats.hint_boosts += 1;
                }
                self.hints.remove(&file);
            }
        }
        if w > 0 {
            self.streams.entry(file).or_default().window = w;
        }
        w
    }

    /// Control-plane prefetch advisory: some client is sequentially
    /// scanning `file` and is about to need `[offset, offset + len)`.
    pub fn note_hint(&mut self, file: u64, offset: u64, len: u32) {
        self.stats.hints += 1;
        self.hints.insert(file, (offset, len));
    }

    /// Write-through population: the payload of a locally acknowledged
    /// write enters the cache under the post-commit generation, so
    /// read-after-write is a local hit without a network round trip.
    pub fn fill_from_write(&mut self, file: u64, generation: u64, offset: u64, data: &[u8]) {
        self.stats.write_fills += 1;
        self.fill(file, generation, offset, data, data.len() as u32);
    }

    /// Fill the cache with bytes fetched under `generation`.
    /// `requested_len` is what the fetch asked for; when `data` came back
    /// shorter, the clamp proves the committed EOF at `offset +
    /// data.len()`. Stale fills (older than the newest generation heard
    /// for the file) are discarded.
    pub fn fill(
        &mut self,
        file: u64,
        generation: u64,
        offset: u64,
        data: &[u8],
        requested_len: u32,
    ) {
        let latest = self.latest_gen.get(&file).copied().unwrap_or(0);
        if generation < latest {
            self.stats.stale_fills += 1;
            return;
        }
        self.latest_gen.insert(file, generation);
        let now = self.tick();
        let f = self.files.entry(file).or_insert_with(|| FileCache {
            generation,
            spans: BTreeMap::new(),
            bytes: 0,
            eof: None,
            touched: now,
        });
        if f.generation < generation {
            // A newer fill supersedes everything cached at the old
            // generation (the invalidation event may still be in flight).
            f.spans.clear();
            f.bytes = 0;
            f.eof = None;
            f.generation = generation;
        } else if f.generation > generation {
            self.stats.stale_fills += 1;
            return;
        }
        f.touched = now;
        if (data.len() as u32) < requested_len {
            // The fetch was EOF-clamped. With data this pins the
            // committed size exactly; an empty fetch only proves
            // `size <= offset`. Either way the candidate is an upper
            // bound, so min-merging tightens toward the true size and a
            // past-EOF probe can never *loosen* a previously learned
            // (smaller, exact) EOF.
            let cand = offset + data.len() as u64;
            f.eof = Some(f.eof.map_or(cand, |e| e.min(cand)));
        }
        if !data.is_empty() {
            Self::insert_span(f, offset, data);
            self.stats.inserted_bytes += data.len() as u64;
        }
        self.enforce_capacity(file);
    }

    /// Insert `[offset, offset + data.len())`, merging any *overlapping*
    /// spans (new bytes win overlaps — at equal generation the bytes are
    /// identical anyway). Exactly-adjacent spans are left separate:
    /// sequential readahead fills abut their predecessor, and merging
    /// would re-copy the whole accumulated stream on every fill. Lookups
    /// stitch across adjacent spans instead.
    fn insert_span(f: &mut FileCache, offset: u64, data: &[u8]) {
        let end = offset + data.len() as u64;
        // Gather every span that overlaps the new range.
        let mut absorb: Vec<u64> = Vec::new();
        if let Some((&s, v)) = f.spans.range(..=offset).next_back() {
            if s + v.len() as u64 > offset {
                absorb.push(s);
            }
        }
        for (&s, _) in f.spans.range(offset..end) {
            if !absorb.contains(&s) {
                absorb.push(s);
            }
        }
        if absorb.is_empty() {
            f.bytes += data.len();
            f.spans.insert(offset, data.to_vec());
            return;
        }
        let mut new_start = offset;
        let mut new_end = end;
        for &s in &absorb {
            let v = &f.spans[&s];
            new_start = new_start.min(s);
            new_end = new_end.max(s + v.len() as u64);
        }
        let mut merged = vec![0u8; (new_end - new_start) as usize];
        for &s in &absorb {
            let v = f.spans.remove(&s).expect("absorbed span");
            f.bytes -= v.len();
            let lo = (s - new_start) as usize;
            merged[lo..lo + v.len()].copy_from_slice(&v);
        }
        // New data last: it wins any overlap.
        let lo = (offset - new_start) as usize;
        merged[lo..lo + data.len()].copy_from_slice(data);
        f.bytes += merged.len();
        f.spans.insert(new_start, merged);
    }

    /// Evict least-recently-touched *other* files until under the cap;
    /// if the just-filled file alone busts it, shed its coldest bytes —
    /// lowest offsets first, the bytes a forward stream left behind.
    /// (Sequential fills coalesce into ONE span, so head-trimming that
    /// span is what keeps a long scan's footprint bounded.)
    fn enforce_capacity(&mut self, just_filled: u64) {
        let cap = self.config.capacity_bytes;
        loop {
            let total = self.cached_bytes();
            if total <= cap {
                return;
            }
            let victim = self
                .files
                .iter()
                .filter(|(&id, _)| id != just_filled)
                .min_by_key(|(_, f)| f.touched)
                .map(|(&id, _)| id);
            if let Some(id) = victim {
                self.files.remove(&id);
                self.stats.evictions += 1;
                continue;
            }
            let excess = total - cap;
            let Some(f) = self.files.get_mut(&just_filled) else {
                return;
            };
            let Some((&s, _)) = f.spans.iter().next() else {
                return;
            };
            let v = f.spans.remove(&s).expect("span");
            f.bytes -= v.len();
            if v.len() > excess {
                // Trim exactly the head; the hot tail stays cached.
                let tail = v[excess..].to_vec();
                f.bytes += tail.len();
                f.spans.insert(s + excess as u64, tail);
            }
            // Each pass sheds at least one byte, so this terminates.
        }
    }

    /// Generation callback from the control plane: `file`'s extent map
    /// moved to `generation`. Drops cached data older than it;
    /// `u64::MAX` means the file's data is gone (unlink/rename-replace).
    pub fn note_generation(&mut self, file: u64, generation: u64) {
        if generation == u64::MAX {
            if self.files.remove(&file).is_some() {
                self.stats.invalidations += 1;
            }
            // Tombstone, not removal: a fill from a read that was in
            // flight at unlink time must still be rejected (inode ids
            // are never reused, so the floor can stay forever).
            self.latest_gen.insert(file, u64::MAX);
            self.streams.remove(&file);
            self.hints.remove(&file);
            return;
        }
        let latest = self.latest_gen.entry(file).or_insert(0);
        if generation > *latest {
            *latest = generation;
        }
        if let Some(f) = self.files.get(&file) {
            if f.generation < generation {
                self.files.remove(&file);
                self.stats.invalidations += 1;
            }
        }
    }

    /// Drop every cached byte (stats survive). Generation floors survive
    /// too: a flush must not weaken the stale-fill guard. Not counted as
    /// invalidations — that stat means generation-callback coherence
    /// traffic, and manual drops (measurements, tests) are not that.
    pub fn clear(&mut self) {
        self.files.clear();
        self.streams.clear();
        self.hints.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize, tag: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8) ^ tag).collect()
    }

    #[test]
    fn miss_then_fill_then_hit_roundtrips() {
        let mut c = ReadCache::default();
        assert!(c.lookup(1, 0, 100).is_none());
        let d = bytes(200, 7);
        c.fill(1, 3, 0, &d, 200);
        let r = c.lookup(1, 50, 100).expect("hit");
        assert_eq!(r.data, &d[50..150]);
        assert_eq!(r.generation, 3);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.hit_bytes, 100);
    }

    #[test]
    fn partial_coverage_is_a_miss() {
        let mut c = ReadCache::default();
        c.fill(1, 1, 100, &bytes(100, 1), 100);
        assert!(c.lookup(1, 150, 100).is_none(), "tail uncovered");
        assert!(c.lookup(1, 0, 50).is_none(), "head uncovered");
        assert!(c.lookup(1, 120, 50).is_some(), "interior covered");
    }

    #[test]
    fn adjacent_spans_stitch_and_overlapping_spans_merge() {
        let mut c = ReadCache::default();
        c.fill(1, 1, 0, &bytes(100, 2), 100);
        c.fill(1, 1, 100, &bytes(100, 3), 100); // adjacent: no re-copy
        assert_eq!(c.files[&1].spans.len(), 2, "adjacent fills stay separate");
        let r = c.lookup(1, 0, 200).expect("stitched hit");
        assert_eq!(&r.data[..100], &bytes(100, 2)[..]);
        assert_eq!(&r.data[100..], &bytes(100, 3)[..]);
        let r = c.lookup(1, 50, 100).expect("hit across the seam");
        assert_eq!(&r.data[..50], &bytes(100, 2)[50..]);
        assert_eq!(&r.data[50..], &bytes(100, 3)[..50]);
        c.fill(1, 1, 50, &bytes(100, 4), 100); // overlapping: new wins
        let r = c.lookup(1, 0, 200).expect("hit");
        assert_eq!(&r.data[50..150], &bytes(100, 4)[..]);
        assert_eq!(c.cached_files(), 1);
        assert_eq!(c.files[&1].spans.len(), 1, "overlap merged everything");
    }

    #[test]
    fn eof_from_short_fill_serves_clamped_and_empty_reads() {
        let mut c = ReadCache::default();
        // Asked for 300, got 250: EOF proven at 250.
        c.fill(1, 2, 0, &bytes(250, 5), 300);
        let r = c.lookup(1, 200, 100).expect("clamped hit");
        assert_eq!(r.data.len(), 50, "short read at the cached EOF");
        let past = c.lookup(1, 250, 100).expect("past-EOF hit");
        assert!(past.data.is_empty());
        let way_past = c.lookup(1, u64::MAX, 100).expect("u64::MAX hit");
        assert!(way_past.data.is_empty(), "no overflow, no phantom bytes");
    }

    #[test]
    fn newer_generation_invalidates_exactly_that_file() {
        let mut c = ReadCache::default();
        c.fill(1, 1, 0, &bytes(100, 1), 100);
        c.fill(2, 1, 0, &bytes(100, 2), 100);
        c.note_generation(1, 2);
        assert!(c.lookup(1, 0, 100).is_none(), "file 1 dropped");
        assert!(c.lookup(2, 0, 100).is_some(), "file 2 untouched");
        assert_eq!(c.stats.invalidations, 1);
        // Same-generation events are no-ops.
        c.note_generation(2, 1);
        assert!(c.lookup(2, 0, 100).is_some());
    }

    #[test]
    fn stale_fill_after_invalidation_is_discarded() {
        let mut c = ReadCache::default();
        // The invalidation arrives while the (gen-1) fetch is in flight —
        // even with nothing cached yet, the late fill must be dropped.
        c.note_generation(7, 5);
        c.fill(7, 4, 0, &bytes(100, 9), 100);
        assert!(c.lookup(7, 0, 100).is_none(), "stale bytes never land");
        assert_eq!(c.stats.stale_fills, 1);
        // The current-generation fill lands fine.
        c.fill(7, 5, 0, &bytes(100, 9), 100);
        assert!(c.lookup(7, 0, 100).is_some());
    }

    #[test]
    fn newer_fill_supersedes_older_cached_generation() {
        let mut c = ReadCache::default();
        c.fill(1, 1, 0, &bytes(100, 1), 100);
        // Overwrite committed (gen 2) and a fresh read filled before the
        // callback got processed: the old span must not linger.
        c.fill(1, 2, 200, &bytes(50, 2), 50);
        assert!(c.lookup(1, 0, 100).is_none(), "gen-1 span dropped");
        assert_eq!(c.lookup(1, 200, 50).expect("hit").generation, 2);
    }

    #[test]
    fn unlink_drops_unconditionally_and_tombstones_late_fills() {
        let mut c = ReadCache::default();
        c.fill(1, 9, 0, &bytes(10, 1), 10);
        c.note_generation(1, u64::MAX);
        assert!(c.lookup(1, 0, 10).is_none());
        assert_eq!(c.stats.invalidations, 1);
        // A fetch that was in flight at unlink time lands late: its fill
        // must be rejected, or reads of the dead file would serve from
        // cache while the uncached path rejects them.
        c.fill(1, 9, 0, &bytes(10, 1), 10);
        assert!(c.lookup(1, 0, 10).is_none(), "late fill tombstoned");
        assert_eq!(c.stats.stale_fills, 1);
    }

    #[test]
    fn sequential_stream_ramps_readahead_and_random_gets_none() {
        let mut c = ReadCache::new(ReadCacheConfig {
            capacity_bytes: 1 << 20,
            readahead_init: 100,
            readahead_max: 400,
        });
        // Random access: no window.
        assert!(c.lookup(1, 500, 50).is_none());
        assert_eq!(c.plan_readahead(1, 500, 50), 0);
        assert!(c.lookup(1, 90, 50).is_none());
        assert_eq!(c.plan_readahead(1, 90, 50), 0, "stream broke");
        // Sequential: 140 follows 90+50.
        assert!(c.lookup(1, 140, 50).is_none());
        assert_eq!(c.plan_readahead(1, 140, 50), 100, "window granted");
        assert!(c.lookup(1, 190, 50).is_none());
        assert_eq!(c.plan_readahead(1, 190, 50), 200, "doubled");
        assert!(c.lookup(1, 240, 50).is_none());
        assert_eq!(c.plan_readahead(1, 240, 50), 400, "capped");
        assert!(c.lookup(1, 290, 50).is_none());
        assert_eq!(c.plan_readahead(1, 290, 50), 400, "stays capped");
        // A seek resets the ramp.
        assert!(c.lookup(1, 5_000, 50).is_none());
        assert_eq!(c.plan_readahead(1, 5_000, 50), 0);
    }

    #[test]
    fn capacity_evicts_lru_files() {
        let mut c = ReadCache::new(ReadCacheConfig {
            capacity_bytes: 250,
            readahead_init: 0,
            readahead_max: 0,
        });
        c.fill(1, 1, 0, &bytes(100, 1), 100);
        c.fill(2, 1, 0, &bytes(100, 2), 100);
        let _ = c.lookup(1, 0, 10); // touch 1: file 2 is now LRU
        c.fill(3, 1, 0, &bytes(100, 3), 100);
        assert!(c.cached_bytes() <= 250);
        assert!(c.lookup(2, 0, 100).is_none(), "LRU file evicted");
        assert!(c.lookup(3, 0, 100).is_some(), "fresh fill kept");
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn capacity_bounds_a_single_file_stream() {
        // A lone streaming file must still respect the cap: cold spans
        // (the bytes the stream left behind) are shed head-first.
        let mut c = ReadCache::new(ReadCacheConfig {
            capacity_bytes: 1000,
            readahead_init: 0,
            readahead_max: 0,
        });
        for i in 0..10u64 {
            c.fill(1, 1, i * 500, &bytes(500, i as u8), 500);
        }
        assert!(
            c.cached_bytes() <= 1000,
            "cap violated: {} bytes cached",
            c.cached_bytes()
        );
        // The hot tail (the most recent fill) survives; the cold head
        // was trimmed.
        assert!(c.lookup(1, 4_500, 500).is_some(), "hot tail kept");
        assert!(c.lookup(1, 0, 500).is_none(), "cold head trimmed");
    }

    #[test]
    fn past_eof_probe_does_not_loosen_a_learned_eof() {
        let mut c = ReadCache::default();
        // Committed size 4096: asked for 8192, got 4096 → exact EOF.
        c.fill(1, 2, 0, &bytes(4096, 3), 8192);
        assert_eq!(c.lookup(1, 0, 8192).expect("clamped hit").data.len(), 4096);
        // A far past-EOF probe returns empty; its upper bound (the probe
        // offset) must NOT overwrite the exact EOF...
        c.fill(1, 2, 1_000_000, &[], 100);
        let r = c.lookup(1, 0, 8192).expect("still a clamped hit");
        assert_eq!(r.data.len(), 4096, "EOF stayed exact");
        // ...and tighter bounds still apply in the other order.
        let mut c = ReadCache::default();
        c.fill(2, 1, 1_000_000, &[], 100); // bound: size <= 1_000_000
        c.fill(2, 1, 0, &bytes(4096, 3), 8192); // exact: 4096
        assert_eq!(c.lookup(2, 0, 8192).expect("hit").data.len(), 4096);
        assert!(c.lookup(2, 5_000, 10).expect("past EOF").data.is_empty());
    }

    #[test]
    fn prefetch_hint_boosts_readahead_once() {
        let mut c = ReadCache::new(ReadCacheConfig {
            capacity_bytes: 1 << 20,
            readahead_init: 100,
            readahead_max: 4000,
        });
        c.note_hint(1, 0, 2000);
        assert!(c.lookup(1, 0, 50).is_none());
        // First access is not locally sequential yet, but the advisory
        // grants the window covering the rest of the hinted range.
        assert_eq!(c.plan_readahead(1, 0, 50), 1950);
        assert_eq!(c.stats.hint_boosts, 1);
        assert_eq!(c.stats.hints, 1);
        // One-shot: a later non-sequential access gets no window.
        assert!(c.lookup(1, 50_000, 50).is_none());
        assert_eq!(c.plan_readahead(1, 50_000, 50), 0);
    }

    #[test]
    fn write_fill_serves_read_after_write() {
        let mut c = ReadCache::default();
        c.fill_from_write(1, 3, 0, &bytes(100, 6));
        let r = c.lookup(1, 0, 100).expect("read-after-write hit");
        assert_eq!(r.data, bytes(100, 6));
        assert_eq!(r.generation, 3);
        assert_eq!(c.stats.write_fills, 1);
        // A write fill proves no EOF: reading past it still misses.
        assert!(c.lookup(1, 0, 200).is_none());
    }

    #[test]
    fn hit_rate_reports() {
        let mut c = ReadCache::default();
        assert_eq!(c.stats.hit_rate(), 0.0);
        c.fill(1, 1, 0, &bytes(100, 1), 100);
        let _ = c.lookup(1, 0, 50);
        let _ = c.lookup(1, 500, 50);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-9);
    }
}
