//! # nadfs-core
//!
//! The network-accelerated distributed file system: control plane
//! (management + hierarchical metadata services, backed by `nadfs-meta`),
//! client drivers for every write protocol the paper evaluates (plus the
//! metadata operations, answered through a client-side cache), storage-node
//! software for the CPU baselines, and the sPIN handler set implementing
//! the offloaded policies (authentication §IV, replication §V, streaming
//! erasure coding §VI).

pub mod analysis;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod config;
pub mod control;
pub mod experiments;
pub mod fs;
pub mod handlers;
pub mod repair;
pub mod storage;
pub mod workloads;

pub use cache::{CachedRead, ReadCache, ReadCacheConfig, ReadCacheStats};
pub use client::{
    ClientApp, ClientReadStats, Job, MetaOp, MetaOpKind, MetaResult, ReadCompletion, ReadProtocol,
    ReadResult, ReadSlot, RepairOutcome, RepairResult, RepairSlot, ResultSink,
    SharedClientReadStats, WriteProtocol, WriteResult, WriteSlot,
};
pub use cluster::{ClusterSpec, QosConfig, SimCluster, StorageMode};
pub use config::{CostModel, HandlerCosts, MetaCosts};
pub use control::{
    ControlPlane, CrashPoint, FileMeta, FilePolicy, MetaShard, RepairPlan, RepairQueue,
    RepairStats, RepairTask, ShardRouter, ShardStats, StripeTarget, TxRecovery, WritePlacement,
};
pub use experiments::{
    ec_encode_latency_us, ec_encode_throughput_gbit, handler_report, pipeline_breakdown_ns,
    replication_latency_us, storage_goodput_gbit, write_latency_best_chunk, write_latency_us,
    HandlerReport, ReplStrategy,
};
pub use fs::{default_read_protocol, default_write_protocol, FileHandle, FsClient, FsError};
pub use handlers::{DfsCounters, DfsHandlers, DfsNicState};
pub use repair::{RepairDriver, RepairReport};
// The metadata subsystem's vocabulary, re-exported for callers.
pub use nadfs_meta::{
    CacheStats, ChunkCopy, ExtentMap, ExtentRecord, InodeAttr, InodeKind, LayoutSpec, MetaCache,
    MetaError, MetaOpStats, ReadPiece, ReadPlan, StripedLayout,
};
pub use storage::{StorageApp, StorageStats};
pub use workloads::{MetaWorkload, ReadPattern, SizeDist, Workload};
