//! Smoke tests: every write protocol completes and stores correct bytes.

use nadfs_core::{ClusterSpec, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol};
use nadfs_gfec::ReedSolomon;
use nadfs_wire::{BcastStrategy, RsScheme, Status};

fn one_write(
    mode: StorageMode,
    policy: FilePolicy,
    protocol: WriteProtocol,
    size: u32,
    n_storage: usize,
) -> (SimCluster, nadfs_core::WriteResult) {
    let spec = ClusterSpec::new(1, n_storage, mode);
    let mut c = SimCluster::build(spec);
    let file = c.control.borrow_mut().create_file(0, policy);
    c.submit(
        0,
        Job::Write {
            file: file.id,
            size,
            protocol,
            seed: 42,
        },
    );
    c.start();
    let done = c.run_until_writes(1, 100);
    assert_eq!(done, 1, "{protocol:?} write did not complete");
    let r = c.results.borrow().writes[0].clone();
    assert_eq!(r.status, Status::Ok, "{protocol:?}");
    (c, r)
}

fn expected_payload(seed: u64, len: u32) -> Vec<u8> {
    // Mirrors ClientApp::payload.
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut v = Vec::with_capacity(len as usize);
    while v.len() < len as usize {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        v.extend_from_slice(&z.to_le_bytes());
    }
    v.truncate(len as usize);
    v
}

#[test]
fn raw_write_stores_bytes() {
    let (c, r) = one_write(
        StorageMode::Plain,
        FilePolicy::Plain,
        WriteProtocol::Raw,
        100_000,
        1,
    );
    let idx = c.storage_index(r.placement.primary.node as usize);
    assert_eq!(
        c.storage_mems[idx]
            .borrow()
            .read(r.placement.primary.addr, 100_000),
        expected_payload(42, 100_000)
    );
}

#[test]
fn spin_write_stores_bytes_with_nic_validation() {
    let (c, r) = one_write(
        StorageMode::Spin,
        FilePolicy::Plain,
        WriteProtocol::Spin,
        100_000,
        1,
    );
    let idx = c.storage_index(r.placement.primary.node as usize);
    assert_eq!(
        c.storage_mems[idx]
            .borrow()
            .read(r.placement.primary.addr, 100_000),
        expected_payload(42, 100_000)
    );
    let tel = c.pspin_telemetry[idx].as_ref().expect("pspin");
    assert_eq!(tel.borrow().msgs_completed, 1);
}

#[test]
fn rpc_write_stores_bytes() {
    let (c, r) = one_write(
        StorageMode::Plain,
        FilePolicy::Plain,
        WriteProtocol::Rpc,
        64_000,
        1,
    );
    let idx = c.storage_index(r.placement.primary.node as usize);
    assert_eq!(
        c.storage_mems[idx]
            .borrow()
            .read(r.placement.primary.addr, 64_000),
        expected_payload(42, 64_000)
    );
}

#[test]
fn rpc_rdma_write_stores_bytes() {
    let (c, r) = one_write(
        StorageMode::Plain,
        FilePolicy::Plain,
        WriteProtocol::RpcRdma,
        64_000,
        1,
    );
    let idx = c.storage_index(r.placement.primary.node as usize);
    assert_eq!(
        c.storage_mems[idx]
            .borrow()
            .read(r.placement.primary.addr, 64_000),
        expected_payload(42, 64_000)
    );
}

fn check_replicas(c: &SimCluster, r: &nadfs_core::WriteResult, size: u32) {
    let expect = expected_payload(42, size);
    for coord in &r.placement.replicas {
        let idx = c.storage_index(coord.node as usize);
        assert_eq!(
            c.storage_mems[idx].borrow().read(coord.addr, size as usize),
            expect,
            "replica on node {}",
            coord.node
        );
    }
}

#[test]
fn rdma_flat_replicates() {
    let policy = FilePolicy::Replicated {
        k: 3,
        strategy: BcastStrategy::Ring,
    };
    let (c, r) = one_write(
        StorageMode::Plain,
        policy,
        WriteProtocol::RdmaFlat,
        50_000,
        3,
    );
    assert_eq!(r.placement.replicas.len(), 3);
    check_replicas(&c, &r, 50_000);
}

#[test]
fn hyperloop_replicates() {
    let policy = FilePolicy::Replicated {
        k: 3,
        strategy: BcastStrategy::Ring,
    };
    let (c, r) = one_write(
        StorageMode::Plain,
        policy,
        WriteProtocol::HyperLoop { chunk: 16 * 1024 },
        50_000,
        3,
    );
    check_replicas(&c, &r, 50_000);
}

#[test]
fn cpu_ring_replicates() {
    let policy = FilePolicy::Replicated {
        k: 3,
        strategy: BcastStrategy::Ring,
    };
    let (c, r) = one_write(
        StorageMode::Plain,
        policy,
        WriteProtocol::CpuBcast { chunk: 16 * 1024 },
        50_000,
        3,
    );
    check_replicas(&c, &r, 50_000);
}

#[test]
fn cpu_pbt_replicates() {
    let policy = FilePolicy::Replicated {
        k: 4,
        strategy: BcastStrategy::Pbt,
    };
    let (c, r) = one_write(
        StorageMode::Plain,
        policy,
        WriteProtocol::CpuBcast { chunk: 16 * 1024 },
        50_000,
        4,
    );
    check_replicas(&c, &r, 50_000);
}

#[test]
fn spin_ring_replicates() {
    let policy = FilePolicy::Replicated {
        k: 3,
        strategy: BcastStrategy::Ring,
    };
    let (c, r) = one_write(
        StorageMode::Spin,
        policy,
        WriteProtocol::SpinReplicated,
        50_000,
        3,
    );
    check_replicas(&c, &r, 50_000);
}

#[test]
fn spin_pbt_replicates() {
    let policy = FilePolicy::Replicated {
        k: 4,
        strategy: BcastStrategy::Pbt,
    };
    let (c, r) = one_write(
        StorageMode::Spin,
        policy,
        WriteProtocol::SpinReplicated,
        50_000,
        4,
    );
    check_replicas(&c, &r, 50_000);
}

fn check_ec(c: &SimCluster, r: &nadfs_core::WriteResult, size: u32, k: usize, m: usize) {
    let expect = expected_payload(42, size);
    let chunk_len = r.placement.chunk_len as usize;
    let mut chunks = Vec::new();
    for (j, coord) in r.placement.data_chunks.iter().enumerate() {
        let idx = c.storage_index(coord.node as usize);
        let stored = c.storage_mems[idx].borrow().read(coord.addr, chunk_len);
        // Data chunks are the original bytes (systematic code).
        let start = (j * chunk_len).min(expect.len());
        let end = ((j + 1) * chunk_len).min(expect.len());
        let mut want = expect[start..end].to_vec();
        want.resize(chunk_len, 0);
        assert_eq!(stored, want, "data chunk {j}");
        chunks.push(stored);
    }
    let rs = ReedSolomon::new(k, m).expect("params");
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    let parities = rs.encode(&refs).expect("encode");
    for (p, coord) in r.placement.parities.iter().enumerate() {
        let idx = c.storage_index(coord.node as usize);
        let stored = c.storage_mems[idx].borrow().read(coord.addr, chunk_len);
        assert_eq!(stored, parities[p], "parity {p}");
    }
}

#[test]
fn spin_triec_builds_correct_parities() {
    let policy = FilePolicy::ErasureCoded {
        scheme: RsScheme::new(3, 2),
    };
    let (c, r) = one_write(
        StorageMode::Spin,
        policy,
        WriteProtocol::SpinTriec { interleave: true },
        90_000,
        5,
    );
    check_ec(&c, &r, 90_000, 3, 2);
}

#[test]
fn inec_triec_builds_correct_parities() {
    let policy = FilePolicy::ErasureCoded {
        scheme: RsScheme::new(3, 2),
    };
    let (c, r) = one_write(
        StorageMode::FirmwareEc,
        policy,
        WriteProtocol::InecTriec,
        90_000,
        5,
    );
    check_ec(&c, &r, 90_000, 3, 2);
}

#[test]
fn forged_capability_is_rejected_by_nic() {
    let spec = ClusterSpec::new(1, 1, StorageMode::Spin);
    let mut c = SimCluster::build_with(spec, |app| {
        app.forge_capabilities = true;
    });
    let file = c.control.borrow_mut().create_file(0, FilePolicy::Plain);
    c.submit(
        0,
        Job::Write {
            file: file.id,
            size: 10_000,
            protocol: WriteProtocol::Spin,
            seed: 1,
        },
    );
    c.start();
    let done = c.run_until_writes(1, 100);
    assert_eq!(done, 1);
    let r = c.results.borrow().writes[0].clone();
    assert_eq!(r.status, Status::AuthFailed);
    // Nothing may have been committed.
    let idx = c.storage_index(r.placement.primary.node as usize);
    assert_eq!(
        c.storage_mems[idx]
            .borrow()
            .read(r.placement.primary.addr, 16),
        vec![0u8; 16]
    );
}
