//! Simulated time, durations, and bandwidth.
//!
//! Time is kept in integer **picoseconds** so that all the rates used by the
//! paper are exact: at 400 Gbit/s a byte serializes in exactly 20 ps, so a
//! 2048 B MTU frame takes 40 960 ps = 40.96 ns with no rounding drift.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute simulation timestamp in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);
    /// Largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    #[inline]
    pub fn ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }
    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    #[inline]
    pub const fn from_ps(ps: u64) -> Dur {
        Dur(ps)
    }
    #[inline]
    pub const fn from_ns(ns: u64) -> Dur {
        Dur(ns * 1_000)
    }
    #[inline]
    pub const fn from_us(us: u64) -> Dur {
        Dur(us * 1_000_000)
    }
    #[inline]
    pub const fn from_ms(ms: u64) -> Dur {
        Dur(ms * 1_000_000_000)
    }
    /// Build from a (possibly fractional) nanosecond count, rounding to ps.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Dur {
        Dur((ns * 1e3).round() as u64)
    }
    #[inline]
    pub fn ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}
impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}
impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}
impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}
impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}
impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}

/// A transmission or processing rate.
///
/// Stored as bits per second; transmission times are computed with 128-bit
/// intermediates so they are exact for all realistic rates and sizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    #[inline]
    pub const fn from_gbit_per_sec(gbit: u64) -> Bandwidth {
        Bandwidth {
            bits_per_sec: gbit * 1_000_000_000,
        }
    }
    /// Decimal gigabytes per second (the unit the paper's figure labels use).
    #[inline]
    pub const fn from_gbyte_per_sec(gb: u64) -> Bandwidth {
        Bandwidth {
            bits_per_sec: gb * 8_000_000_000,
        }
    }
    #[inline]
    pub const fn from_bits_per_sec(bps: u64) -> Bandwidth {
        Bandwidth { bits_per_sec: bps }
    }
    #[inline]
    pub fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }
    #[inline]
    pub fn gbit_per_sec(self) -> f64 {
        self.bits_per_sec as f64 / 1e9
    }
    #[inline]
    pub fn gbyte_per_sec(self) -> f64 {
        self.bits_per_sec as f64 / 8e9
    }

    /// Time to transmit `bytes` at this rate (rounded up to a picosecond).
    #[inline]
    pub fn tx_time(self, bytes: u64) -> Dur {
        debug_assert!(self.bits_per_sec > 0);
        let bits = bytes as u128 * 8;
        let ps = (bits * 1_000_000_000_000u128).div_ceil(self.bits_per_sec as u128);
        Dur(ps as u64)
    }

    /// Bytes transferable in `d` (rounded down).
    #[inline]
    pub fn bytes_in(self, d: Dur) -> u64 {
        let bits = d.0 as u128 * self.bits_per_sec as u128 / 1_000_000_000_000u128;
        (bits / 8) as u64
    }
}

/// Compute an achieved rate from a byte count and elapsed time.
pub fn achieved_gbit_per_sec(bytes: u64, elapsed: Dur) -> f64 {
    if elapsed == Dur::ZERO {
        return f64::INFINITY;
    }
    (bytes as f64 * 8.0) / elapsed.as_secs() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtu_frame_at_400g_serializes_in_40960_ps() {
        let bw = Bandwidth::from_gbit_per_sec(400);
        assert_eq!(bw.tx_time(2048), Dur(40_960));
    }

    #[test]
    fn one_byte_at_400g_is_20_ps() {
        let bw = Bandwidth::from_gbit_per_sec(400);
        assert_eq!(bw.tx_time(1), Dur(20));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 3 bits/s: 1 byte = 8 bits -> 8/3 s, must round up.
        let bw = Bandwidth::from_bits_per_sec(3);
        assert_eq!(bw.tx_time(1).0, 8_000_000_000_000u64.div_ceil(3));
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let bw = Bandwidth::from_gbit_per_sec(100);
        let d = bw.tx_time(1 << 20);
        assert_eq!(bw.bytes_in(d), 1 << 20);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Dur::from_ns(5) + Dur::from_us(1);
        assert_eq!(t.ps(), 1_005_000);
        assert_eq!((t - Time(5_000)).ps(), 1_000_000);
        assert_eq!(t.since(Time::MAX), Dur::ZERO);
    }

    #[test]
    fn gbyte_units_are_decimal() {
        let bw = Bandwidth::from_gbyte_per_sec(50);
        assert_eq!(bw.bits_per_sec(), 400_000_000_000);
        assert!((bw.gbyte_per_sec() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn achieved_rate_roundtrip() {
        // 50 GB/s for 1 MiB should be ~419.43 Gbit/s... check the math:
        // 1 MiB = 1048576 B at 400 Gbit/s takes 1048576*20ps = 20.97152us.
        let bw = Bandwidth::from_gbit_per_sec(400);
        let d = bw.tx_time(1 << 20);
        let g = achieved_gbit_per_sec(1 << 20, d);
        assert!((g - 400.0).abs() < 1e-6, "{g}");
    }

    #[test]
    fn dur_display_in_ns() {
        assert_eq!(format!("{}", Dur::from_ns(42)), "42.000ns");
    }
}
