//! The discrete-event engine: a time-ordered event queue dispatching boxed
//! events to registered [`Component`]s.
//!
//! Determinism: events are ordered by `(time, sequence)` where the sequence
//! number is assigned at scheduling time, so same-timestamp events run in
//! FIFO order and every run with the same inputs is bit-identical.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{Dur, Time};

/// Index of a component registered with the [`Engine`].
pub type ComponentId = usize;

/// A simulated hardware or software entity that reacts to events.
pub trait Component {
    /// Handle one event addressed to this component.
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>);
    /// Human-readable name used in traces and panics.
    fn name(&self) -> String {
        "component".to_owned()
    }
}

struct Scheduled {
    at: Time,
    seq: u64,
    target: ComponentId,
    ev: Box<dyn Any>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The part of the engine visible to components while they handle an event.
pub struct Ctx<'a> {
    sched: &'a mut Sched,
    /// The component currently executing.
    pub self_id: ComponentId,
}

impl Ctx<'_> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.sched.now
    }

    /// Schedule `ev` for `target` after `delay`.
    pub fn schedule(&mut self, delay: Dur, target: ComponentId, ev: Box<dyn Any>) {
        self.sched.push(self.sched.now + delay, target, ev);
    }

    /// Schedule `ev` for `target` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: Time, target: ComponentId, ev: Box<dyn Any>) {
        let at = at.max(self.sched.now);
        self.sched.push(at, target, ev);
    }

    /// Schedule an event to this component itself.
    pub fn schedule_self(&mut self, delay: Dur, ev: Box<dyn Any>) {
        self.schedule(delay, self.self_id, ev);
    }

    /// Number of events dispatched so far (diagnostic).
    pub fn events_dispatched(&self) -> u64 {
        self.sched.dispatched
    }
}

struct Sched {
    now: Time,
    seq: u64,
    dispatched: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
}

impl Sched {
    fn push(&mut self, at: Time, target: ComponentId, ev: Box<dyn Any>) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            target,
            ev,
        }));
    }
}

/// Per-component dispatch profile (see [`Engine::enable_profiling`]).
///
/// `busy_host_ns` is *host* wall-clock time spent inside `handle` — sim
/// time never advances during a handler, so host time is the only
/// meaningful measure of dispatch overhead (it is the measured baseline
/// for the per-packet `Box<dyn Any>` boxing cost). Profiling never
/// affects simulated behavior; results vary with host load like any
/// wall-clock measurement.
#[derive(Clone, Debug, Default)]
pub struct ComponentProfile {
    pub name: String,
    pub dispatches: u64,
    pub busy_host_ns: u64,
}

/// The simulation engine: owns all components and the event queue.
pub struct Engine {
    sched: Sched,
    components: Vec<Option<Box<dyn Component>>>,
    profiling: bool,
    profiles: Vec<ComponentProfile>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    pub fn new() -> Engine {
        Engine {
            sched: Sched {
                now: Time::ZERO,
                seq: 0,
                dispatched: 0,
                queue: BinaryHeap::new(),
            },
            components: Vec::new(),
            profiling: false,
            profiles: Vec::new(),
        }
    }

    /// Turn on per-component dispatch profiling (off by default: it adds
    /// two host-clock reads per event, which perturbs wall-clock benches).
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
    }

    pub fn profiling_enabled(&self) -> bool {
        self.profiling
    }

    /// Per-component profiles gathered so far (empty unless profiling).
    /// Indexed by [`ComponentId`]; components that never handled an event
    /// have zero dispatches and an empty name.
    pub fn profiles(&self) -> &[ComponentProfile] {
        &self.profiles
    }

    /// Profiles aggregated by component *kind* — the name with any
    /// trailing `-<digits>` instance suffix stripped, so `nic-0..nic-7`
    /// fold into one `nic` row. Sorted by kind.
    pub fn profiles_by_kind(&self) -> Vec<ComponentProfile> {
        let mut by_kind: std::collections::BTreeMap<String, ComponentProfile> =
            std::collections::BTreeMap::new();
        for p in &self.profiles {
            if p.dispatches == 0 {
                continue;
            }
            let kind = match p.name.rfind('-') {
                Some(i) if p.name[i + 1..].chars().all(|c| c.is_ascii_digit()) => &p.name[..i],
                _ => p.name.as_str(),
            };
            let e = by_kind.entry(kind.to_owned()).or_default();
            e.name = kind.to_owned();
            e.dispatches += p.dispatches;
            e.busy_host_ns += p.busy_host_ns;
        }
        by_kind.into_values().collect()
    }

    /// Register a component; its id is stable for the life of the engine.
    pub fn add_component(&mut self, c: Box<dyn Component>) -> ComponentId {
        self.components.push(Some(c));
        self.components.len() - 1
    }

    /// Reserve an id before the component exists (for wiring cycles).
    /// Must be filled with [`Engine::install`] before any event reaches it.
    pub fn reserve_id(&mut self) -> ComponentId {
        self.components.push(None);
        self.components.len() - 1
    }

    /// Install a component into a reserved slot.
    pub fn install(&mut self, id: ComponentId, c: Box<dyn Component>) {
        assert!(self.components[id].is_none(), "slot {id} already installed");
        self.components[id] = Some(c);
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.sched.now
    }

    /// Total events dispatched.
    pub fn events_dispatched(&self) -> u64 {
        self.sched.dispatched
    }

    /// Schedule an event from outside any component (e.g. test or driver).
    pub fn schedule(&mut self, delay: Dur, target: ComponentId, ev: Box<dyn Any>) {
        self.sched.push(self.sched.now + delay, target, ev);
    }

    /// Dispatch a single event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(s)) = self.sched.queue.pop() else {
            return false;
        };
        debug_assert!(s.at >= self.sched.now, "time went backwards");
        self.sched.now = s.at;
        self.sched.dispatched += 1;
        let mut comp = self.components[s.target]
            .take()
            .unwrap_or_else(|| panic!("event for missing component {}", s.target));
        let t0 = self.profiling.then(std::time::Instant::now);
        {
            let mut ctx = Ctx {
                sched: &mut self.sched,
                self_id: s.target,
            };
            comp.handle(&mut ctx, s.ev);
        }
        if let Some(t0) = t0 {
            if self.profiles.len() <= s.target {
                self.profiles
                    .resize(s.target + 1, ComponentProfile::default());
            }
            let p = &mut self.profiles[s.target];
            if p.name.is_empty() {
                p.name = comp.name();
            }
            p.dispatches += 1;
            p.busy_host_ns += t0.elapsed().as_nanos() as u64;
        }
        self.components[s.target] = Some(comp);
        true
    }

    /// Run until the event queue drains.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or simulated time exceeds `deadline`.
    /// Returns true if the queue drained.
    pub fn run_until(&mut self, deadline: Time) -> bool {
        loop {
            let Some(Reverse(head)) = self.sched.queue.peek() else {
                return true;
            };
            if head.at > deadline {
                self.sched.now = deadline;
                return false;
            }
            self.step();
        }
    }

    /// Run while `pred` (evaluated between events) returns false.
    /// Returns true if the predicate became true, false if the queue drained.
    pub fn run_while<F: FnMut() -> bool>(&mut self, mut done: F) -> bool {
        loop {
            if done() {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }

    /// Immutable access to a component (for test inspection).
    pub fn component(&self, id: ComponentId) -> &dyn Component {
        self.components[id]
            .as_deref()
            .expect("component missing (mid-dispatch?)")
    }

    /// Mutable access to a component between events.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut dyn Component {
        self.components[id]
            .as_deref_mut()
            .expect("component missing (mid-dispatch?)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Tick(u32);
    struct Probe {
        log: Rc<RefCell<Vec<(u64, u32)>>>,
        echo_to: Option<ComponentId>,
    }
    impl Component for Probe {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
            let t = ev.downcast::<Tick>().expect("unexpected event type");
            self.log.borrow_mut().push((ctx.now().ps(), t.0));
            if let Some(peer) = self.echo_to {
                if t.0 < 3 {
                    ctx.schedule(Dur::from_ns(10), peer, Box::new(Tick(t.0 + 1)));
                }
            }
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(vec![]));
        let a = e.add_component(Box::new(Probe {
            log: log.clone(),
            echo_to: None,
        }));
        e.schedule(Dur::from_ns(30), a, Box::new(Tick(3)));
        e.schedule(Dur::from_ns(10), a, Box::new(Tick(1)));
        e.schedule(Dur::from_ns(20), a, Box::new(Tick(2)));
        e.run_to_completion();
        assert_eq!(*log.borrow(), vec![(10_000, 1), (20_000, 2), (30_000, 3)]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(vec![]));
        let a = e.add_component(Box::new(Probe {
            log: log.clone(),
            echo_to: None,
        }));
        for i in 0..100 {
            e.schedule(Dur::from_ns(5), a, Box::new(Tick(i)));
        }
        e.run_to_completion();
        let order: Vec<u32> = log.borrow().iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ping_pong_between_components() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(vec![]));
        let a = e.reserve_id();
        let b = e.add_component(Box::new(Probe {
            log: log.clone(),
            echo_to: Some(a),
        }));
        e.install(
            a,
            Box::new(Probe {
                log: log.clone(),
                echo_to: Some(b),
            }),
        );
        e.schedule(Dur::ZERO, a, Box::new(Tick(0)));
        e.run_to_completion();
        assert_eq!(log.borrow().len(), 4);
        assert_eq!(e.now().ps(), 30_000);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(vec![]));
        let a = e.add_component(Box::new(Probe {
            log: log.clone(),
            echo_to: None,
        }));
        e.schedule(Dur::from_us(1), a, Box::new(Tick(1)));
        e.schedule(Dur::from_us(3), a, Box::new(Tick(2)));
        let drained = e.run_until(Time(2_000_000));
        assert!(!drained);
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(e.now(), Time(2_000_000));
        assert!(e.run_until(Time::MAX));
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn run_while_predicate() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(vec![]));
        let a = e.add_component(Box::new(Probe {
            log: log.clone(),
            echo_to: None,
        }));
        for i in 0..10 {
            e.schedule(Dur::from_ns(i as u64), a, Box::new(Tick(i)));
        }
        let l2 = log.clone();
        let hit = e.run_while(move || l2.borrow().len() >= 5);
        assert!(hit);
        assert_eq!(log.borrow().len(), 5);
    }

    #[test]
    fn profiling_counts_dispatches_and_aggregates_by_kind() {
        let mut e = Engine::new();
        assert!(!e.profiling_enabled());
        e.enable_profiling();
        let log = Rc::new(RefCell::new(vec![]));
        struct Named(Probe, &'static str);
        impl Component for Named {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
                self.0.handle(ctx, ev);
            }
            fn name(&self) -> String {
                self.1.to_owned()
            }
        }
        let a = e.add_component(Box::new(Named(
            Probe {
                log: log.clone(),
                echo_to: None,
            },
            "nic-0",
        )));
        let b = e.add_component(Box::new(Named(
            Probe {
                log: log.clone(),
                echo_to: None,
            },
            "nic-1",
        )));
        for i in 0..3 {
            e.schedule(Dur::from_ns(i), a, Box::new(Tick(i as u32)));
        }
        e.schedule(Dur::from_ns(9), b, Box::new(Tick(9)));
        e.run_to_completion();
        assert_eq!(e.profiles()[a].dispatches, 3);
        assert_eq!(e.profiles()[a].name, "nic-0");
        assert_eq!(e.profiles()[b].dispatches, 1);
        let kinds = e.profiles_by_kind();
        assert_eq!(kinds.len(), 1);
        assert_eq!(kinds[0].name, "nic");
        assert_eq!(kinds[0].dispatches, 4);
    }

    #[test]
    #[should_panic(expected = "missing component")]
    fn event_to_reserved_but_uninstalled_slot_panics() {
        let mut e = Engine::new();
        let a = e.reserve_id();
        e.schedule(Dur::ZERO, a, Box::new(Tick(0)));
        e.run_to_completion();
    }
}
