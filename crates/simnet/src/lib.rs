//! # nadfs-simnet
//!
//! Deterministic discrete-event simulation engine and packet-network model.
//!
//! This crate replaces the paper's use of the Structural Simulation Toolkit
//! (SST): it provides a picosecond-resolution event engine
//! ([`engine::Engine`]), a star-topology lossless network
//! ([`fabric::Fabric`]) with serializing ports and credit-based flow
//! control ([`gate::Gate`]), and measurement utilities ([`stats`]).
//!
//! Everything is single-threaded and deterministic: identical inputs produce
//! bit-identical event orders, which the reproduction relies on.

pub mod engine;
pub mod fabric;
pub mod flow;
pub mod gate;
pub mod packet;
pub mod pool;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use engine::{Component, ComponentId, ComponentProfile, Ctx, Engine};
pub use fabric::{Fabric, FabricConfig, FabricStats, NodePort, Submit};
pub use flow::{
    CreditConfig, CreditGrant, FlowController, FlowStats, SharedFlowStats, SharedTenantLedgers,
    TenantId, TenantLedger, TenantScheduler, WrClass, TENANT_REPAIR,
};
pub use gate::{Gate, GateWake, SharedGate};
pub use packet::{Arrive, NetPacket, NodeId, Payload};
pub use pool::{BufPool, PoolStats, SharedBufPool, DEFAULT_MAX_RETAINED_BYTES};
pub use telemetry::{
    HistSummary, Log2Hist, MetricsHub, MetricsSnapshot, ObsHub, OpKind, OpSpan, SharedObs,
    SpanBook, SpanId, SNAPSHOT_SCHEMA,
};
pub use time::{achieved_gbit_per_sec, Bandwidth, Dur, Time};
pub use trace::{SharedTrace, Trace, TraceEntry};
