//! Credit gates: bounded-capacity admission control shared between a
//! producer and a consumer component.
//!
//! A [`Gate`] models a finite buffer. Producers call [`Gate::try_take`]
//! before injecting work; when it fails they register themselves as waiters
//! and retry when woken. Consumers call [`Gate::release`] as they drain,
//! which schedules a [`GateWake`] event to every registered waiter.
//!
//! This is the mechanism behind all lossless-network backpressure in the
//! simulator (PFC-like pause, PsPIN packet-buffer admission, NIC egress
//! queues): senders never drop, they stall.

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::{ComponentId, Ctx};
use crate::time::Dur;

/// Event delivered to a waiter when gate credits become available.
/// The token is the value the waiter registered with, so one component can
/// wait on several gates and tell the wake-ups apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateWake {
    pub token: u64,
}

#[derive(Debug)]
pub struct Gate {
    credits: usize,
    capacity: usize,
    waiters: Vec<(ComponentId, u64)>,
    /// Diagnostics: how many times a take failed (stall events).
    pub stalls: u64,
}

/// Shared handle to a gate. The simulator is single-threaded; `Rc<RefCell>`
/// keeps sharing explicit and cheap.
pub type SharedGate = Rc<RefCell<Gate>>;

impl Gate {
    pub fn new(capacity: usize) -> SharedGate {
        Rc::new(RefCell::new(Gate {
            credits: capacity,
            capacity,
            waiters: Vec::new(),
            stalls: 0,
        }))
    }

    /// Take one credit. Returns false (and counts a stall) if exhausted.
    pub fn try_take(&mut self) -> bool {
        if self.credits > 0 {
            self.credits -= 1;
            true
        } else {
            self.stalls += 1;
            false
        }
    }

    /// Number of credits currently available.
    pub fn available(&self) -> usize {
        self.credits
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy (capacity minus available credits).
    pub fn in_use(&self) -> usize {
        self.capacity - self.credits
    }

    /// Register to be woken (via [`GateWake`]) when a credit is released.
    pub fn register_waiter(&mut self, who: ComponentId, token: u64) {
        if !self.waiters.iter().any(|&(c, t)| c == who && t == token) {
            self.waiters.push((who, token));
        }
    }

    /// Return one credit and wake all waiters.
    ///
    /// Waking everyone is a deliberate simplification: waiters re-attempt
    /// `try_take` and re-register on failure, so fairness is FIFO-by-event
    /// order, which is deterministic.
    pub fn release(&mut self, ctx: &mut Ctx<'_>) {
        assert!(
            self.credits < self.capacity,
            "gate over-released: credits {} capacity {}",
            self.credits,
            self.capacity
        );
        self.credits += 1;
        for (who, token) in self.waiters.drain(..) {
            ctx.schedule(Dur::ZERO, who, Box::new(GateWake { token }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Component, Engine};
    use std::any::Any;

    /// A consumer that releases one credit per `Drain` event it receives.
    struct Drainer {
        gate: SharedGate,
    }
    struct Drain;
    impl Component for Drainer {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
            if ev.downcast::<Drain>().is_ok() {
                self.gate.borrow_mut().release(ctx);
            }
        }
    }

    /// A producer that takes credits as fast as it can, logging takes.
    struct Producer {
        gate: SharedGate,
        taken: Rc<RefCell<Vec<u64>>>,
        want: usize,
    }
    struct Go;
    impl Component for Producer {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
            let _wake_or_go: &dyn Any = &*ev; // either Go or GateWake
            while self.want > 0 {
                let ok = self.gate.borrow_mut().try_take();
                if ok {
                    self.want -= 1;
                    self.taken.borrow_mut().push(ctx.now().ps());
                } else {
                    self.gate.borrow_mut().register_waiter(ctx.self_id, 0);
                    break;
                }
            }
        }
    }

    #[test]
    fn take_until_empty_then_wake_on_release() {
        let mut e = Engine::new();
        let gate = Gate::new(2);
        let taken = Rc::new(RefCell::new(vec![]));
        let p = e.add_component(Box::new(Producer {
            gate: gate.clone(),
            taken: taken.clone(),
            want: 4,
        }));
        let d = e.add_component(Box::new(Drainer { gate: gate.clone() }));
        e.schedule(Dur::ZERO, p, Box::new(Go));
        e.schedule(Dur::from_ns(100), d, Box::new(Drain));
        e.schedule(Dur::from_ns(200), d, Box::new(Drain));
        e.run_to_completion();
        let t = taken.borrow();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], 0);
        assert_eq!(t[1], 0);
        assert_eq!(t[2], 100_000);
        assert_eq!(t[3], 200_000);
        // Stalled once initially and once after the first wake (only one
        // credit was available then, but two takes were attempted).
        assert_eq!(gate.borrow().stalls, 2);
        assert_eq!(gate.borrow().available(), 0);
    }

    #[test]
    #[should_panic(expected = "over-released")]
    fn over_release_panics() {
        let mut e = Engine::new();
        let gate = Gate::new(1);
        let d = e.add_component(Box::new(Drainer { gate: gate.clone() }));
        e.schedule(Dur::ZERO, d, Box::new(Drain));
        e.run_to_completion();
    }

    #[test]
    fn occupancy_accounting() {
        let gate = Gate::new(3);
        assert!(gate.borrow_mut().try_take());
        assert!(gate.borrow_mut().try_take());
        assert_eq!(gate.borrow().in_use(), 2);
        assert_eq!(gate.borrow().available(), 1);
        assert_eq!(gate.borrow().capacity(), 3);
    }
}
