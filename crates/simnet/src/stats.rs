//! Measurement helpers: samplers with percentiles, counters, and
//! time-weighted utilization tracking.

use std::cell::RefCell;

use crate::time::{Dur, Time};

/// Collects scalar samples and answers summary queries.
///
/// Percentile queries sort lazily into an interior cache that recording
/// invalidates, so a multi-percentile summary sorts once instead of
/// cloning and re-sorting the sample vector per query.
#[derive(Clone, Debug, Default)]
pub struct Sampler {
    samples: Vec<f64>,
    sorted: RefCell<Option<Vec<f64>>>,
}

impl Sampler {
    pub fn new() -> Sampler {
        Sampler::default()
    }

    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted.borrow_mut().take();
    }

    pub fn record_dur_ns(&mut self, d: Dur) {
        self.record(d.as_ns());
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile by nearest-rank (q in [0, 100]). The first query after a
    /// record sorts into the cache; subsequent queries are O(1).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut cache = self.sorted.borrow_mut();
        let v = cache.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            v
        });
        let rank = ((q / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[rank.min(v.len() - 1)]
    }

    /// Multi-percentile summary in one pass: at most one sort, then an
    /// indexed lookup per requested quantile.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<f64> {
        qs.iter().map(|&q| self.percentile(q)).collect()
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted.borrow_mut().take();
    }
}

/// Tracks the fraction of time a resource was busy.
#[derive(Clone, Debug, Default)]
pub struct Utilization {
    busy: Dur,
    busy_since: Option<Time>,
}

impl Utilization {
    pub fn set_busy(&mut self, now: Time) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    pub fn set_idle(&mut self, now: Time) {
        if let Some(s) = self.busy_since.take() {
            self.busy += now.since(s);
        }
    }

    /// Busy time accumulated so far (closing any open interval at `now`).
    pub fn busy_time(&self, now: Time) -> Dur {
        match self.busy_since {
            Some(s) => self.busy + now.since(s),
            None => self.busy,
        }
    }

    pub fn fraction(&self, now: Time, since: Time) -> f64 {
        let total = now.since(since);
        if total == Dur::ZERO {
            return 0.0;
        }
        self.busy_time(now).as_ns() / total.as_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_summary() {
        let mut s = Sampler::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
    }

    #[test]
    fn sampler_empty_is_nan() {
        let s = Sampler::new();
        assert!(s.mean().is_nan());
        assert!(s.percentile(50.0).is_nan());
        assert!(s.is_empty());
    }

    #[test]
    fn percentile_cache_invalidated_by_record() {
        let mut s = Sampler::new();
        s.record(10.0);
        assert_eq!(s.percentile(50.0), 10.0); // fills the sorted cache
        s.record(1.0); // must invalidate it
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentiles(&[0.0, 50.0, 100.0]), vec![1.0, 10.0, 10.0]);
        s.clear();
        assert!(s.percentile(50.0).is_nan());
    }

    #[test]
    fn utilization_accumulates_intervals() {
        let mut u = Utilization::default();
        u.set_busy(Time(100));
        u.set_idle(Time(300));
        u.set_busy(Time(500));
        u.set_idle(Time(600));
        assert_eq!(u.busy_time(Time(600)), Dur(300));
        assert!((u.fraction(Time(600), Time(100)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn utilization_open_interval_counts() {
        let mut u = Utilization::default();
        u.set_busy(Time(0));
        assert_eq!(u.busy_time(Time(250)), Dur(250));
        // Double set_busy is idempotent.
        u.set_busy(Time(100));
        assert_eq!(u.busy_time(Time(250)), Dur(250));
    }
}
