//! First-class observability: operation spans with sim-time phase marks,
//! a central metrics registry, and Chrome trace-event export.
//!
//! The pieces compose through [`ObsHub`], one shared (single-threaded
//! `Rc<RefCell<...>>`) hub that every component gets a handle to:
//!
//! - [`span::SpanBook`] — per-op spans minted at client op start, phase
//!   marks recorded as the op crosses the control plane, NIC handlers, and
//!   storage completion. Phase durations telescope exactly to end-to-end
//!   latency.
//! - [`metrics::MetricsHub`] — named counters/gauges/log2-histograms with
//!   a stable [`metrics::MetricsSnapshot`] schema. Closing a span
//!   automatically feeds the `op.<kind>.*` histograms.
//! - [`chrome`] — spans plus the [`crate::trace::Trace`] ring rendered as
//!   Perfetto-loadable trace-event JSON on the simulated clock.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod span;

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::Time;
pub use chrome::chrome_trace_json;
pub use metrics::{HistSummary, Log2Hist, MetricsHub, MetricsSnapshot, SNAPSHOT_SCHEMA};
pub use span::{phase, OpKind, OpSpan, SpanBook, SpanId};

/// The shared observability hub: span book + metrics registry.
pub struct ObsHub {
    pub spans: SpanBook,
    pub metrics: MetricsHub,
}

/// Cheap single-threaded handle to the hub.
pub type SharedObs = Rc<RefCell<ObsHub>>;

impl ObsHub {
    /// An enabled hub retaining the most recent `span_cap` completed spans.
    pub fn new(span_cap: usize) -> SharedObs {
        Rc::new(RefCell::new(ObsHub {
            spans: SpanBook::new(span_cap),
            metrics: MetricsHub::new(),
        }))
    }

    /// A disabled hub: spans are no-ops, metrics still usable.
    pub fn disabled() -> SharedObs {
        Rc::new(RefCell::new(ObsHub {
            spans: SpanBook::disabled(),
            metrics: MetricsHub::new(),
        }))
    }

    /// Close a span and fold its latencies into the metrics registry:
    /// `op.<kind>.e2e_ns` plus one `op.<kind>.phase.<phase>_ns` histogram
    /// per phase mark, and `op.<kind>.{completed,rejected}` counters
    /// (`op.read.cache_hits` when the span carries a cache-hit mark).
    pub fn end_span(&mut self, id: SpanId, at: Time, ok: bool) {
        let Some(sp) = self.spans.end(id, at, ok) else {
            return;
        };
        let kind = sp.kind.as_str();
        let e2e_ns = sp.e2e().as_ns() as u64;
        // Truncate cumulative offsets, not per-phase durations: diffs of
        // truncated offsets telescope, so the ns phase durations sum
        // exactly to the ns e2e (the last mark is the terminal one at
        // span end).
        let mut prev_ns = 0u64;
        let phases: Vec<(&'static str, u64)> = sp
            .marks
            .iter()
            .map(|&(name, at)| {
                let off_ns = at.since(sp.start).as_ns() as u64;
                let d = off_ns - prev_ns;
                prev_ns = off_ns;
                (name, d)
            })
            .collect();
        let cache_hit = sp.has_mark(phase::CACHE_HIT);
        self.metrics
            .hist_record(&format!("op.{kind}.e2e_ns"), e2e_ns);
        for (name, ns) in phases {
            self.metrics
                .hist_record(&format!("op.{kind}.phase.{name}_ns"), ns);
        }
        self.metrics.counter_add(
            &format!("op.{kind}.{}", if ok { "completed" } else { "rejected" }),
            1,
        );
        if cache_hit {
            self.metrics
                .counter_add(&format!("op.{kind}.cache_hits"), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_span_feeds_metrics() {
        let hub = ObsHub::new(16);
        let mut h = hub.borrow_mut();
        let id = h.spans.begin(OpKind::Read, "client-0", "read f1", Time(0));
        h.spans.mark(id, phase::CACHE_HIT, Time(500_000));
        h.end_span(id, Time(1_000_000), true);
        assert_eq!(h.metrics.counter("op.read.completed"), 1);
        assert_eq!(h.metrics.counter("op.read.cache_hits"), 1);
        let e2e = h.metrics.hist("op.read.e2e_ns").expect("hist");
        assert_eq!(e2e.count(), 1);
        assert_eq!(e2e.min(), 1_000); // 1 µs
        assert!(h.metrics.hist("op.read.phase.cache-hit_ns").is_some());
        assert!(h.metrics.hist("op.read.phase.completed_ns").is_some());
    }

    #[test]
    fn rejected_span_counts_rejected() {
        let hub = ObsHub::new(16);
        let mut h = hub.borrow_mut();
        let id = h
            .spans
            .begin(OpKind::Write, "client-0", "write f1", Time(0));
        h.end_span(id, Time(10), false);
        assert_eq!(h.metrics.counter("op.write.rejected"), 1);
        assert_eq!(h.metrics.counter("op.write.completed"), 0);
    }
}
