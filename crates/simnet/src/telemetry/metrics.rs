//! The central metrics registry: named counters, gauges, and fixed-bucket
//! log2 histograms, snapshotted into a stable serialized schema.
//!
//! Unlike [`crate::stats::Sampler`], the histogram here never stores raw
//! samples: recording is O(1) into one of 64 power-of-two buckets, and
//! percentile queries walk the bucket array. That makes it safe to leave
//! metrics on in hot paths and to snapshot at any time.

use std::collections::BTreeMap;

use super::json;

/// Version tag embedded in every serialized snapshot. Bump only with a
/// deliberate schema change; the stability test pins the field layout.
pub const SNAPSHOT_SCHEMA: &str = "nadfs-metrics-v1";

/// Fixed-bucket base-2 histogram of non-negative integer samples
/// (typically nanoseconds or bytes). Bucket `b` holds values in
/// `[2^b, 2^(b+1))`, with bucket 0 also holding 0.
#[derive(Clone, Debug)]
pub struct Log2Hist {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Hist {
    pub fn new() -> Log2Hist {
        Log2Hist::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Approximate percentile (`q` in [0, 100]): nearest-rank over the
    /// bucket cumulative counts, answering with the bucket's upper bound
    /// clamped into the observed `[min, max]` range. Resolution is a
    /// factor of two — the histogram trades exactness for O(1) recording.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * (self.count - 1) as f64).round() as u64;
        if rank == 0 {
            return self.min;
        }
        if rank >= self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                let upper = if b >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: u64::try_from(self.sum).unwrap_or(u64::MAX),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
        }
    }
}

/// The serialized face of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// The central registry. Names are dotted paths
/// (`storage.3.rpc_writes`, `op.read.e2e_ns`); `BTreeMap` keeps snapshot
/// output deterministic.
#[derive(Debug, Default)]
pub struct MetricsHub {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Log2Hist>,
}

impl MetricsHub {
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.ensure_counter(name) += v;
    }

    /// Overwrite a counter with an absolute value (for snapshot-time
    /// registration of externally-maintained totals).
    pub fn counter_set(&mut self, name: &str, v: u64) {
        *self.ensure_counter(name) = v;
    }

    fn ensure_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_owned(), 0);
        }
        self.counters.get_mut(name).expect("just ensured")
    }

    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    pub fn hist_record(&mut self, name: &str, v: u64) {
        if !self.hists.contains_key(name) {
            self.hists.insert(name.to_owned(), Log2Hist::new());
        }
        self.hists.get_mut(name).expect("just ensured").record(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn hist(&self, name: &str) -> Option<&Log2Hist> {
        self.hists.get(name)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            schema: SNAPSHOT_SCHEMA,
            counters: self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A point-in-time, name-sorted view of every registered metric, with a
/// stable JSON serialization (`nadfs-metrics-v1`):
///
/// ```json
/// {
///   "schema": "nadfs-metrics-v1",
///   "counters": {"name": 1},
///   "gauges": {"name": 0.5},
///   "histograms": {"name": {"count":1,"sum":9,"min":9,"max":9,
///                            "mean":9,"p50":9,"p90":9,"p99":9}}
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub schema: &'static str,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Serialize with the stable `nadfs-metrics-v1` schema. Indented with
    /// `indent` spaces per level so it embeds cleanly in bench JSON.
    pub fn to_json_indented(&self, base_indent: usize) -> String {
        let pad = " ".repeat(base_indent);
        let pad1 = " ".repeat(base_indent + 2);
        let pad2 = " ".repeat(base_indent + 4);
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "{pad1}\"schema\": {},\n",
            json::str_lit(self.schema)
        ));
        s.push_str(&format!("{pad1}\"counters\": {{"));
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n{pad2}{}: {v}", json::str_lit(k)));
        }
        if !self.counters.is_empty() {
            s.push_str(&format!("\n{pad1}"));
        }
        s.push_str("},\n");
        s.push_str(&format!("{pad1}\"gauges\": {{"));
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n{pad2}{}: {}",
                json::str_lit(k),
                json::fmt_f64(*v)
            ));
        }
        if !self.gauges.is_empty() {
            s.push_str(&format!("\n{pad1}"));
        }
        s.push_str("},\n");
        s.push_str(&format!("{pad1}\"histograms\": {{"));
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n{pad2}{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json::str_lit(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                json::fmt_f64(h.mean),
                h.p50,
                h.p90,
                h.p99
            ));
        }
        if !self.hists.is_empty() {
            s.push_str(&format!("\n{pad1}"));
        }
        s.push_str("}\n");
        s.push_str(&format!("{pad}}}"));
        s
    }

    pub fn to_json(&self) -> String {
        self.to_json_indented(0)
    }

    /// Phase-local view: what changed between `earlier` and `self`.
    ///
    /// Counters subtract (saturating — a counter absent from `earlier`
    /// keeps its full value); histogram `count`/`sum` subtract while
    /// `min`/`max`/percentiles stay those of the later snapshot (bucket
    /// contents are not serialized, so order statistics of the window
    /// cannot be reconstructed — `mean` IS recomputed from the deltas);
    /// gauges are point-in-time and keep the later value. Entries with a
    /// zero counter delta or zero histogram-count delta are omitted, so
    /// the result reads as "what this phase did".
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, v)| {
                let d = v.saturating_sub(earlier.counter(k).unwrap_or(0));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .filter_map(|(k, h)| {
                let prev = earlier.hist(k).copied().unwrap_or_default();
                let count = h.count.saturating_sub(prev.count);
                if count == 0 {
                    return None;
                }
                let sum = h.sum.saturating_sub(prev.sum);
                Some((
                    k.clone(),
                    HistSummary {
                        count,
                        sum,
                        mean: sum as f64 / count as f64,
                        ..*h
                    },
                ))
            })
            .collect();
        MetricsSnapshot {
            schema: self.schema,
            counters,
            gauges: self.gauges.clone(),
            hists,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::json::{self, Json};

    #[test]
    fn log2_hist_buckets_and_stats() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1110);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.percentile(0.0), 0); // clamped to min
        assert_eq!(h.percentile(100.0), 1000); // clamped to max
                                               // p50 lands in the [2,4) bucket → upper bound 3.
        assert_eq!(h.percentile(50.0), 3);
    }

    #[test]
    fn empty_hist_is_zeroed() {
        let h = Log2Hist::new();
        let s = h.summary();
        assert_eq!(s, HistSummary::default());
    }

    #[test]
    fn hub_snapshot_is_sorted_and_queryable() {
        let mut m = MetricsHub::new();
        m.counter_add("z.last", 2);
        m.counter_add("a.first", 1);
        m.counter_add("a.first", 1);
        m.gauge_set("util", 0.75);
        m.hist_record("lat_ns", 128);
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counter("a.first"), Some(2));
        assert_eq!(snap.counter("z.last"), Some(2));
        assert_eq!(snap.gauge("util"), Some(0.75));
        assert_eq!(snap.hist("lat_ns").expect("hist").count, 1);
        assert_eq!(snap.hist("lat_ns").expect("hist").min, 128);
    }

    #[test]
    fn delta_is_phase_local() {
        let mut m = MetricsHub::new();
        m.counter_add("reads", 3);
        m.counter_add("steady", 5);
        m.hist_record("lat", 100);
        m.gauge_set("util", 0.25);
        let before = m.snapshot();
        m.counter_add("reads", 4);
        m.counter_add("fresh", 1);
        m.hist_record("lat", 300);
        m.hist_record("lat", 500);
        m.gauge_set("util", 0.75);
        let d = m.snapshot().delta(&before);
        // Unchanged counters are omitted; changed ones report the window.
        assert_eq!(d.counter("reads"), Some(4));
        assert_eq!(d.counter("fresh"), Some(1));
        assert_eq!(d.counter("steady"), None);
        // Histogram count/sum/mean are window-local.
        let h = d.hist("lat").expect("lat delta");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 800);
        assert!((h.mean - 400.0).abs() < 1e-9);
        // Gauges are point-in-time: later value wins.
        assert_eq!(d.gauge("util"), Some(0.75));
        // Delta against itself is empty.
        let snap = m.snapshot();
        let zero = snap.delta(&snap);
        assert!(zero.counters.is_empty());
        assert!(zero.hists.is_empty());
    }

    #[test]
    fn snapshot_json_parses_and_round_trips() {
        let mut m = MetricsHub::new();
        m.counter_add("c\"tricky", 7);
        m.gauge_set("g", 1.25);
        m.hist_record("h", 9);
        let doc = m.snapshot().to_json();
        let v = json::parse(&doc).expect("snapshot JSON parses");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some(SNAPSHOT_SCHEMA)
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("c\"tricky"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("h"))
                .and_then(|h| h.get("p50"))
                .and_then(Json::as_f64),
            Some(9.0)
        );
    }
}
