//! Hand-rolled JSON support: escaping/formatting helpers for the writers
//! and a small recursive-descent parser used by tests and the CI smoke
//! check. The workspace deliberately vendors no serde, so the observability
//! layer carries its own minimal, dependency-free JSON plumbing.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escape `s` as a JSON string literal and return it.
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str_lit(&mut out, s);
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values collapse to 0 (they only arise from empty summaries).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            members.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one (possibly multi-byte) character.
                    let s = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf8".to_owned())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert_eq!(
            v.get("a")
                .and_then(Json::as_array)
                .and_then(|a| a[2].as_f64()),
            Some(-300.0)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let lit = str_lit(nasty);
        let v = parse(&lit).expect("escaped literal parses");
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn fmt_f64_is_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        for v in [0.0, 1.5, -2.25, 1e20, 123456789.0] {
            let s = fmt_f64(v);
            assert_eq!(parse(&s).expect("number parses").as_f64(), Some(v));
        }
    }
}
